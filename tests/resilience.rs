//! Failure injection across the stack: lossy WAN links, malformed and
//! invalid requests, failing jobs with backoff, and unknown-name NACKs.

use lidc::ndn::net::connect;
use lidc::prelude::*;

fn blast(tag: u64) -> ComputeRequest {
    ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", "SRR2931415")
        .with_param("ref", "HUMAN")
        .with_param("tag", tag.to_string())
}

/// A lossy WAN between the client's edge forwarder and the cluster: the
/// consumer retransmission machinery must push every request through.
#[test]
fn workflow_survives_five_percent_wan_loss() {
    let mut sim = Sim::new(101);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
    let access = sim.spawn(
        "access-router",
        Forwarder::new("access-router", ForwarderConfig::default()),
    );
    let props = LinkProps {
        loss: 0.05,
        ..LinkProps::with_latency(SimDuration::from_millis(20))
    };
    let (to_cluster, _) = connect(&mut sim, access, cluster.gateway_fwd, &alloc, props);
    cluster.register_on(&mut sim, access, to_cluster, 0);
    let client = ScienceClient::deploy(
        ClientConfig {
            retries: 5,
            max_status_failures: 10,
            ..Default::default()
        },
        &mut sim,
        access,
        &alloc,
        "user",
    );
    for tag in 0..3 {
        sim.send(client, Submit(blast(tag)));
    }
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert_eq!(runs.iter().filter(|r| r.is_success()).count(), 3);
    assert!(
        sim.metrics_ref().counter("ndn.link_loss_drops") > 0,
        "the loss model actually dropped packets"
    );
}

/// Validation failures are reported to the client with the failing check,
/// and no Kubernetes job is created.
#[test]
fn validation_rejections_name_the_check() {
    let cases: [(&str, ComputeRequest); 3] = [
        (
            "srr-syntax",
            ComputeRequest::new("BLAST", 2, 4)
                .with_param("srr", "bogus!")
                .with_param("ref", "HUMAN"),
        ),
        (
            "srr-present",
            ComputeRequest::new("BLAST", 2, 4).with_param("ref", "HUMAN"),
        ),
        (
            "input-present",
            ComputeRequest::new("COMPRESS", 1, 2),
        ),
    ];
    for (i, (check, req)) in cases.into_iter().enumerate() {
        let mut sim = Sim::new(200 + i as u64);
        let alloc = FaceIdAlloc::new();
        let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
        let client = ScienceClient::deploy(
            ClientConfig::default(),
            &mut sim,
            cluster.gateway_fwd,
            &alloc,
            "user",
        );
        sim.send(client, Submit(req));
        sim.run();
        let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
        let err = run.error.as_deref().expect("rejected");
        assert!(err.contains(check), "case {check}: got {err}");
        assert_eq!(cluster.gateway_stats(&sim).jobs_created, 0);
        assert_eq!(cluster.gateway_stats(&sim).validation_failures, 1);
    }
}

/// Requests for resources no node can ever satisfy are NACKed at admission
/// instead of hanging in the queue forever.
#[test]
fn infeasible_resources_rejected_at_admission() {
    let mut sim = Sim::new(300);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "user",
    );
    // 100 cores passes request validation (1..=128) but exceeds every
    // 16-core node — it must be NACKed at admission, not queued forever.
    sim.send(client, Submit(blast(0).with_param("tag", "big")));
    let huge = ComputeRequest::new("BLAST", 100, 4)
        .with_param("srr", "SRR2931415")
        .with_param("ref", "HUMAN");
    sim.send(client, Submit(huge));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert!(runs[0].is_success());
    let err = runs[1].error.as_deref().expect("infeasible rejected");
    assert!(err.contains("infeasible") || err.contains("unschedulable"), "{err}");
}

/// A pod that keeps crashing exhausts the job's backoff limit; the client
/// observes the Failed status with the pod's message.
#[test]
fn failing_pod_exhausts_backoff_and_reports() {
    let mut sim = Sim::new(400);
    let k8s = Cluster::spawn(&mut sim, ClusterConfig::named("t"));
    k8s.add_node(&mut sim, Node::new("n0", Resources::new(8, 32)));
    let spec = PodSpec::single(ContainerSpec {
        name: "crashy".into(),
        image: "crashy:latest".into(),
        requests: Resources::new(1, 1),
        workload: WorkloadSpec::Fail {
            after: SimDuration::from_secs(10),
            message: "segfault in aligner".into(),
        },
    });
    let now = sim.now();
    let key = k8s
        .api
        .write()
        .create_job(Job::new(ObjectMeta::named("crashy"), spec, 2), now)
        .unwrap();
    sim.send(k8s.actor, Nudge);
    sim.run();
    let job = k8s.job(&key).unwrap();
    assert_eq!(job.status.condition, JobCondition::Failed);
    assert_eq!(job.status.failures, 3, "initial attempt + 2 backoff retries");
    assert!(job.status.message.contains("segfault"));
}

/// Interests under the compute prefix that do not parse are NACKed with a
/// malformed-parameter diagnostic, not dropped.
#[test]
fn malformed_compute_interest_is_nacked() {
    use lidc::ndn::forwarder::AppRx;
    use lidc::ndn::net::attach_app;
    use lidc::simcore::engine::{Actor, Ctx, Msg};

    struct Probe {
        consumer: Option<Consumer>,
        outcome: Option<String>,
    }
    struct Go;
    impl Actor for Probe {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let msg = match msg.downcast::<Go>() {
                Ok(_) => {
                    let name = compute_prefix().child_str("mem=&&&cpu=zzz");
                    let interest = Interest::new(name).must_be_fresh(true);
                    self.consumer.as_mut().unwrap().express(ctx, interest, 0);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<AppRx>() {
                Ok(rx) => {
                    if let Some(ev) = self.consumer.as_mut().unwrap().on_app_rx(&rx) {
                        match ev {
                            ConsumerEvent::Data(d) if d.content_type == ContentType::Nack => {
                                self.outcome =
                                    Some(String::from_utf8_lossy(&d.content).into_owned());
                            }
                            other => self.outcome = Some(format!("unexpected: {other:?}")),
                        }
                    }
                    return;
                }
                Err(m) => m,
            };
            if let Ok(t) = msg.downcast::<RetxTimer>() {
                let _ = self.consumer.as_mut().unwrap().on_timer(ctx, &t);
            }
        }
    }

    let mut sim = Sim::new(500);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
    let probe = sim.spawn("probe", Probe { consumer: None, outcome: None });
    let face = attach_app(&mut sim, cluster.gateway_fwd, probe, &alloc);
    sim.actor_mut::<Probe>(probe).unwrap().consumer =
        Some(Consumer::new(cluster.gateway_fwd, face));
    sim.send(probe, Go);
    sim.run();
    let outcome = sim.actor::<Probe>(probe).unwrap().outcome.clone().expect("answered");
    assert!(outcome.contains("malformed"), "{outcome}");
}

/// Names outside every registered prefix draw a network-level no-route
/// NACK rather than silence.
#[test]
fn unroutable_name_gets_no_route_nack() {
    let mut sim = Sim::new(600);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![ClusterSpec::new("solo", SimDuration::from_millis(5))],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();

    struct Probe {
        consumer: Option<Consumer>,
        nacked: bool,
    }
    struct Go;
    impl lidc::simcore::engine::Actor for Probe {
        fn on_message(&mut self, msg: lidc::simcore::engine::Msg, ctx: &mut lidc::simcore::engine::Ctx<'_>) {
            let msg = match msg.downcast::<Go>() {
                Ok(_) => {
                    let interest = Interest::new(Name::parse("/not/lidc/at/all").unwrap());
                    self.consumer.as_mut().unwrap().express(ctx, interest, 0);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<lidc::ndn::forwarder::AppRx>() {
                Ok(rx) => {
                    if let Some(ConsumerEvent::Nack(reason, _)) =
                        self.consumer.as_mut().unwrap().on_app_rx(&rx)
                    {
                        assert_eq!(reason, NackReason::NoRoute);
                        self.nacked = true;
                    }
                    return;
                }
                Err(m) => m,
            };
            if let Ok(t) = msg.downcast::<RetxTimer>() {
                let _ = self.consumer.as_mut().unwrap().on_timer(ctx, &t);
            }
        }
    }
    let probe = sim.spawn("probe", Probe { consumer: None, nacked: false });
    let face = lidc::ndn::net::attach_app(&mut sim, overlay.router, probe, &alloc);
    sim.actor_mut::<Probe>(probe).unwrap().consumer = Some(Consumer::new(overlay.router, face));
    sim.send(probe, Go);
    sim.run();
    assert!(sim.actor::<Probe>(probe).unwrap().nacked);
}
