//! LIDC vs the comparators (`lidc-baseline`): the centralized controller
//! and the manually-configured workflow, under identical conditions.

use lidc::baseline::central::{CentralController, CentralPolicy};
use lidc::baseline::client::{CentralClient, SubmitCentral};
use lidc::baseline::manual::ManualWorkflow;
use lidc::prelude::*;

fn blast(tag: u64) -> ComputeRequest {
    ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", "SRR2931415")
        .with_param("ref", "HUMAN")
        .with_param("tag", tag.to_string())
}

/// Both control planes place the same workload successfully when nothing
/// fails — the difference is architectural, not functional.
#[test]
fn central_and_lidc_equivalent_when_healthy() {
    // LIDC.
    let mut sim = Sim::new(1);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::RoundRobin,
        clusters: vec![
            ClusterSpec::new("a", SimDuration::from_millis(10)),
            ClusterSpec::new("b", SimDuration::from_millis(20)),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(ClientConfig::default(), &mut sim, overlay.router, &alloc, "u");
    for tag in 0..4 {
        sim.send(client, Submit(blast(tag)));
    }
    sim.run();
    assert_eq!(sim.actor::<ScienceClient>(client).unwrap().successes(), 4);

    // Centralized.
    let mut sim = Sim::new(2);
    let alloc = FaceIdAlloc::new();
    let router = sim.spawn("router", Forwarder::new("router", ForwarderConfig::default()));
    let controller = CentralController::new(CentralPolicy::RoundRobin).deploy(&mut sim, router, &alloc);
    for name in ["a", "b"] {
        let c = Cluster::spawn(&mut sim, ClusterConfig::named(name));
        c.add_node(&mut sim, Node::new(format!("{name}-n0"), Resources::new(16, 64)));
        CentralController::add_member(&mut sim, controller, name, c);
    }
    let cclient = CentralClient::deploy(ClientConfig::default(), &mut sim, router, &alloc, "u");
    for tag in 0..4 {
        sim.send(cclient, SubmitCentral(blast(tag)));
    }
    sim.run();
    assert_eq!(sim.actor::<CentralClient>(cclient).unwrap().successes(), 4);
}

/// The single point of failure: kill the controller, nothing places — kill
/// an entire LIDC cluster, everything still places.
#[test]
fn controller_death_vs_cluster_death() {
    // Central: controller dies, all clusters healthy, zero placements.
    let mut sim = Sim::new(3);
    let alloc = FaceIdAlloc::new();
    let router = sim.spawn("router", Forwarder::new("router", ForwarderConfig::default()));
    let controller = CentralController::new(CentralPolicy::RoundRobin).deploy(&mut sim, router, &alloc);
    for name in ["a", "b", "c"] {
        let c = Cluster::spawn(&mut sim, ClusterConfig::named(name));
        c.add_node(&mut sim, Node::new(format!("{name}-n0"), Resources::new(16, 64)));
        CentralController::add_member(&mut sim, controller, name, c);
    }
    let cclient = CentralClient::deploy(ClientConfig::default(), &mut sim, router, &alloc, "u");
    sim.kill(controller);
    for tag in 0..3 {
        sim.send(cclient, SubmitCentral(blast(tag)));
    }
    sim.run();
    assert_eq!(sim.actor::<CentralClient>(cclient).unwrap().successes(), 0);

    // LIDC: one of three clusters dies, the others absorb everything.
    let mut sim = Sim::new(4);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::RoundRobin,
        clusters: vec![
            ClusterSpec::new("a", SimDuration::from_millis(10)),
            ClusterSpec::new("b", SimDuration::from_millis(20)),
            ClusterSpec::new("c", SimDuration::from_millis(30)),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(ClientConfig::default(), &mut sim, overlay.router, &alloc, "u");
    overlay.fail_cluster(&mut sim, "a");
    for tag in 0..3 {
        sim.send(client, Submit(blast(tag)));
    }
    sim.run();
    assert_eq!(sim.actor::<ScienceClient>(client).unwrap().successes(), 3);
}

/// Manual configuration requires a human for exactly the events LIDC
/// absorbs silently.
#[test]
fn manual_workflow_needs_operator_for_failover() {
    let mut sim = Sim::new(5);
    let alloc = FaceIdAlloc::new();
    let a = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("a"));
    let b = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("b"));
    let mut wf = ManualWorkflow::configure(&mut sim, &a, &alloc, ClientConfig::default(), "wf")
        .with_reconfig_delay(SimDuration::from_mins(30));

    // Cluster a dies; the manual workflow's submissions fail outright.
    sim.kill(a.gateway_fwd);
    wf.submit(&mut sim, blast(0));
    sim.run();
    assert_eq!(wf.successes(&sim), 0);

    // After the operator re-tailors to b (and pays 30 min), work flows.
    let before = sim.now();
    wf.reconfigure(&mut sim, &b);
    wf.submit(&mut sim, blast(1));
    sim.run();
    assert_eq!(wf.successes(&sim), 1);
    let runs = wf.runs(&sim);
    let retried = runs.last().unwrap();
    assert_eq!(retried.cluster.as_deref(), Some("b"));
    assert!(retried.submitted_at.since(before) >= SimDuration::from_mins(30));
}

/// The controller's global view *is* an advantage while it is alive:
/// GlobalLeastLoaded beats round-robin on a skewed overlay. The comparison
/// is honest — centralization buys placement quality at the cost of the
/// single point of failure measured above.
#[test]
fn central_global_view_places_on_idle_member() {
    let mut sim = Sim::new(6);
    let alloc = FaceIdAlloc::new();
    let router = sim.spawn("router", Forwarder::new("router", ForwarderConfig::default()));
    let controller =
        CentralController::new(CentralPolicy::GlobalLeastLoaded).deploy(&mut sim, router, &alloc);
    let busy = Cluster::spawn(&mut sim, ClusterConfig::named("busy"));
    busy.add_node(&mut sim, Node::new("busy-n0", Resources::new(4, 16)));
    let idle = Cluster::spawn(&mut sim, ClusterConfig::named("idle"));
    idle.add_node(&mut sim, Node::new("idle-n0", Resources::new(16, 64)));
    CentralController::add_member(&mut sim, controller, "busy", busy.clone());
    CentralController::add_member(&mut sim, controller, "idle", idle);
    // Saturate "busy" before the probe job arrives.
    let hog = PodSpec::single(ContainerSpec {
        name: "hog".into(),
        image: "hog:latest".into(),
        requests: Resources::new(4, 16),
        workload: WorkloadSpec::Run {
            duration: SimDuration::from_hours(100),
            output: None,
        },
    });
    let now = sim.now();
    busy.api
        .write()
        .create_job(Job::new(ObjectMeta::named("hog"), hog, 1), now)
        .unwrap();
    sim.send(busy.actor, Nudge);
    sim.run_for(SimDuration::from_secs(5));

    let cclient = CentralClient::deploy(ClientConfig::default(), &mut sim, router, &alloc, "u");
    sim.send(cclient, SubmitCentral(blast(0)));
    sim.run();
    let runs = sim.actor::<CentralClient>(cclient).unwrap().runs();
    assert!(runs[0].is_success());
    assert_eq!(runs[0].cluster.as_deref(), Some("idle"));
}
