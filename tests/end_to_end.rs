//! Facade-level end-to-end tests: the workflows a downstream user of the
//! `lidc` crate would run, exercised through `lidc::prelude` only.

use lidc::prelude::*;

fn blast(cpu: u64, mem: u64, srr: &str) -> ComputeRequest {
    ComputeRequest::new("BLAST", cpu, mem)
        .with_param("srr", srr)
        .with_param("ref", "HUMAN")
}

fn single_cluster(seed: u64, name: &str) -> (Sim, LidcCluster, ActorId) {
    let mut sim = Sim::new(seed);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named(name));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "user",
    );
    (sim, cluster, client)
}

#[test]
fn table1_all_four_rows_through_the_facade() {
    let rows: [(&str, u64, u64, &str, u64); 4] = [
        ("SRR2931415", 2, 4, "8h9m50s", 941_000_000),
        ("SRR2931415", 4, 4, "8h7m10s", 941_000_000),
        ("SRR5139395", 2, 4, "24h16m12s", 2_710_000_000),
        ("SRR5139395", 2, 6, "24h2m47s", 2_710_000_000),
    ];
    for (i, &(srr, cpu, mem, expect_rt, expect_bytes)) in rows.iter().enumerate() {
        let (mut sim, cluster, client) = single_cluster(1000 + i as u64, "edge");
        sim.send(client, Submit(blast(cpu, mem, srr)));
        sim.run();
        let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
        assert!(run.is_success(), "row {i}: {:?}", run.error);
        assert_eq!(run.result_size, expect_bytes, "row {i} output size");
        let api = cluster.k8s.api.read();
        let job = api.jobs.values().next().unwrap();
        assert_eq!(job.run_time().unwrap().to_string(), expect_rt, "row {i} run time");
    }
}

#[test]
fn result_object_lands_in_lake_and_is_fetchable() {
    let (mut sim, cluster, client) = single_cluster(2, "edge");
    sim.send(client, Submit(blast(2, 4, "SRR2931415")));
    sim.run();
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    let result = run.result_name.clone().expect("result name");
    // The object exists in the PVC-backed repo under the results namespace.
    assert!(result
        .to_uri()
        .starts_with("/ndn/k8s/data/results/edge/"));
    let content = cluster.repo.get(&result).expect("published object");
    assert_eq!(content.len(), run.result_size);
    // And the client really fetched it over NDN.
    assert!(run.fetched_at.is_some());
}

#[test]
fn generic_app_runs_via_unknown_app_policy() {
    let (mut sim, _cluster, client) = single_cluster(3, "edge");
    let req = ComputeRequest::new("FOLD", 4, 8).with_param("size", "500000000");
    sim.send(client, Submit(req));
    sim.run();
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success(), "{:?}", run.error);
    assert!(run.result_name.as_ref().unwrap().to_uri().contains("fold"));
}

#[test]
fn http_and_ndn_naming_reach_identical_outcomes() {
    // §II: the framework is not tied to NDN naming.
    let url = "https://lidc.example/compute?mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN";
    let from_url = ComputeRequest::from_http_url(url).unwrap();
    assert_eq!(from_url, blast(2, 4, "SRR2931415"));

    let (mut sim, _cluster, client) = single_cluster(4, "edge");
    sim.send(client, Submit(from_url));
    sim.run();
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success());
}

#[test]
fn kubernetes_event_log_tells_the_fig5_story_in_order() {
    let (mut sim, cluster, client) = single_cluster(5, "edge");
    sim.send(client, Submit(blast(2, 4, "SRR2931415")));
    sim.run();
    let api = cluster.k8s.api.read();
    let kinds: Vec<&str> = api.events.iter().map(|e| e.kind.as_str()).collect();
    let pos = |k: &str| kinds.iter().position(|x| *x == k).unwrap_or_else(|| panic!("missing {k}"));
    assert!(pos("JobCreated") < pos("PodScheduled"));
    assert!(pos("PodScheduled") < pos("PodStarted"));
    assert!(pos("PodStarted") < pos("PodSucceeded"));
    assert!(pos("PodSucceeded") < pos("JobCompleted"));
    assert!(pos("JobCompleted") < pos("ResultPublished"));
}

#[test]
fn catalog_published_and_loadable_through_facade() {
    let (sim, cluster, _client) = single_cluster(6, "edge");
    let catalog = Catalog::load(cluster.repo.as_ref(), &data_prefix()).expect("catalog");
    // Human reference + 2 paper runs + 99 rice + 36 kidney.
    assert_eq!(catalog.entries.len(), 138);
    assert!(catalog.total_bytes() > 200_000_000_000);
    let human = data_prefix().child_str("ref").child_str("HUMAN");
    assert!(catalog.find(&human).is_some());
    drop(sim);
}

#[test]
fn two_tenants_share_one_cluster_without_interference() {
    let mut sim = Sim::new(7);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("shared"));
    let alice = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "alice",
    );
    let bob = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "bob",
    );
    sim.send(alice, Submit(blast(2, 4, "SRR2931415").with_param("tag", "a")));
    sim.send(bob, Submit(blast(2, 4, "SRR5139395").with_param("tag", "b")));
    sim.run();
    let a = &sim.actor::<ScienceClient>(alice).unwrap().runs()[0];
    let b = &sim.actor::<ScienceClient>(bob).unwrap().runs()[0];
    assert!(a.is_success() && b.is_success());
    assert_ne!(a.job_id, b.job_id, "distinct jobs");
    assert_ne!(a.result_name, b.result_name, "distinct results");
    assert_eq!(cluster.gateway_stats(&sim).jobs_created, 2);
}
