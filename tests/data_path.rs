//! The data-retrieval path at object scale: windowed segmented fetches
//! through the full network stack (client edge → WAN → gateway NFD →
//! data-lake NFD → file server), with Content-Store effects measured.

use lidc::datalake::segment::DEFAULT_SEGMENT_SIZE;
use lidc::ndn::forwarder::AppRx;
use lidc::ndn::net::attach_app;
use lidc::prelude::*;
use lidc::simcore::engine::{Actor, ActorId, Ctx, Msg};

/// An actor driving a [`SegmentFetch`] state machine over real forwarders.
struct SegmentClient {
    consumer: Option<Consumer>,
    fetch: Option<SegmentFetch>,
    done: Option<bytes::Bytes>,
    finished_at: Option<SimTime>,
}

struct StartFetch(Name, usize);

impl SegmentClient {
    fn express_all(&mut self, interests: Vec<Interest>, ctx: &mut Ctx<'_>) {
        for interest in interests {
            self.consumer
                .as_mut()
                .expect("attached")
                .express(ctx, interest, 3);
        }
    }
}

impl Actor for SegmentClient {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<StartFetch>() {
            Ok(s) => {
                let mut fetch = SegmentFetch::new(s.0, s.1);
                let first = fetch.start();
                self.fetch = Some(fetch);
                self.express_all(first, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                let event = self.consumer.as_mut().expect("attached").on_app_rx(&rx);
                if let Some(ConsumerEvent::Data(data)) = event {
                    if let Some(fetch) = self.fetch.as_mut() {
                        match fetch.on_data(&data) {
                            FetchProgress::Done(bytes) => {
                                self.done = Some(bytes);
                                self.finished_at = Some(ctx.now());
                            }
                            FetchProgress::Continue(next) => self.express_all(next, ctx),
                        }
                    }
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(t) = msg.downcast::<RetxTimer>() {
            let _ = self.consumer.as_mut().expect("attached").on_timer(ctx, &t);
        }
    }
}

fn deploy_segment_client(
    sim: &mut Sim,
    fwd: ActorId,
    alloc: &FaceIdAlloc,
    label: &str,
) -> ActorId {
    let client = sim.spawn(label, SegmentClient {
        consumer: None,
        fetch: None,
        done: None,
        finished_at: None,
    });
    let face = attach_app(sim, fwd, client, alloc);
    sim.actor_mut::<SegmentClient>(client).unwrap().consumer = Some(Consumer::new(fwd, face));
    client
}

/// Publish a custom multi-segment object and pull it through the overlay.
#[test]
fn windowed_segment_fetch_reassembles_multi_megabyte_object() {
    let mut sim = Sim::new(21);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![ClusterSpec::new("lake", SimDuration::from_millis(12))],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();

    // A 5.5 MiB object: six segments at the default 1 MiB size.
    let name = data_prefix().child_str("bulk").child_str("reads-chunk-7");
    let payload: Vec<u8> = (0..5_767_168u32)
        .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
        .collect();
    overlay.clusters[0]
        .repo
        .put(&name, Content::bytes(bytes::Bytes::from(payload.clone())));

    let client = deploy_segment_client(&mut sim, overlay.router, &alloc, "segclient");
    sim.send(client, StartFetch(name.clone(), 4));
    sim.run();

    let got = sim
        .actor::<SegmentClient>(client)
        .unwrap()
        .done
        .clone()
        .expect("fetch completed");
    assert_eq!(got.len(), payload.len());
    assert_eq!(got.as_ref(), payload.as_slice(), "byte-exact reassembly");
    assert_eq!(
        lidc::datalake::segment::segment_count(payload.len() as u64, DEFAULT_SEGMENT_SIZE),
        6
    );
}

/// A second client fetching the same object is fed from the WAN router's
/// Content Store — the file server serves each segment exactly once.
#[test]
fn second_segment_fetch_served_from_network_cache() {
    let mut sim = Sim::new(22);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![ClusterSpec::new("lake", SimDuration::from_millis(40))],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let name = data_prefix().child_str("bulk").child_str("shared-object");
    overlay.clusters[0]
        .repo
        .put(&name, Content::synthetic(3 * DEFAULT_SEGMENT_SIZE as u64, 0x5EED));

    let c1 = deploy_segment_client(&mut sim, overlay.router, &alloc, "c1");
    sim.send(c1, StartFetch(name.clone(), 2));
    sim.run();
    let t1 = sim.actor::<SegmentClient>(c1).unwrap().finished_at.unwrap();
    let served_after_first = sim
        .actor::<FileServer>(overlay.clusters[0].fileserver)
        .unwrap()
        .served_segments;
    assert_eq!(served_after_first, 3, "one pass over the segments");

    let start2 = sim.now();
    let c2 = deploy_segment_client(&mut sim, overlay.router, &alloc, "c2");
    sim.send(c2, StartFetch(name.clone(), 2));
    sim.run();
    let c2state = sim.actor::<SegmentClient>(c2).unwrap();
    assert!(c2state.done.is_some());
    let t2 = c2state.finished_at.unwrap();
    let served_after_second = sim
        .actor::<FileServer>(overlay.clusters[0].fileserver)
        .unwrap()
        .served_segments;
    assert_eq!(
        served_after_second, 3,
        "second client fully served by the router CS"
    );
    // And it was faster: no WAN round trips.
    assert!(
        t2.since(start2) < t1.since(SimTime::ZERO),
        "cached fetch quicker: {} vs {}",
        t2.since(start2),
        t1.since(SimTime::ZERO)
    );
}

/// Segment fetching across the overlay still works when the object only
/// exists on the far cluster (anycast /ndn/k8s/data with per-object
/// placement is out of scope; this pins a results-namespace object, which
/// is routed by cluster name).
#[test]
fn results_namespace_routes_to_owning_cluster() {
    let mut sim = Sim::new(23);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("near", SimDuration::from_millis(5)),
            ClusterSpec::new("far", SimDuration::from_millis(60)),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    // A result object that lives only on "far" (as if computed there).
    let name = data_prefix()
        .child_str("results")
        .child_str("far")
        .child_str("some-output");
    overlay
        .cluster("far")
        .unwrap()
        .repo
        .put(&name, Content::synthetic(1024, 1));

    let client = deploy_segment_client(&mut sim, overlay.router, &alloc, "c");
    sim.send(client, StartFetch(name, 2));
    sim.run();
    let got = sim.actor::<SegmentClient>(client).unwrap().done.clone();
    assert_eq!(got.map(|b| b.len()), Some(1024));
}
