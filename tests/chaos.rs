//! Chaos scenarios: the location-independence claim under adversity.
//!
//! Every scenario drives faults through [`FaultController`] — the seeded,
//! deterministic fault layer — never by ad-hoc test pokes, so the same
//! schedule replays bit-identically across runs and thread counts:
//!
//! 1. a WAN link cut strands an in-flight Interest → the forwarder
//!    retransmits it over the alternate face (no timeout, no client retry);
//! 2. the producer cluster crashes → the router's Content Store keeps
//!    serving the previously fetched result;
//! 3. a worker node dies mid-job → Kubernetes evicts and reschedules, the
//!    client still sees the job complete;
//! 4. LIDC vs the centralized baseline under the *same* fault schedule →
//!    LIDC completes at least as many jobs;
//! 5. the whole chaos run is deterministic: same seed + schedule at 1 and
//!    4 worker threads (and 4-way sharded forwarders) → identical
//!    outcomes, metrics, and fault timelines;
//! 6. generated random schedules (all fault families, including byzantine
//!    producers and region outages) replay bit-identically;
//! 7. duplicate submissions share one Interest and all terminate;
//! 8. a byzantine producer mangles every reply from one cluster → LIDC
//!    still completes everything, and no poisoned Data ever enters any
//!    Content Store (see docs/INTEGRITY.md);
//! 9. a correlated region outage takes down two clusters at once, then
//!    heals → LIDC completes everything via the surviving region.

use lidc::baseline::chaos::{
    assert_metrics_registered, comparison_table, run_baseline_chaos, run_lidc_chaos,
    ChaosConfig,
};
use lidc::ndn::net::attach_app;
use lidc::prelude::*;
use lidc::simcore::engine::{Actor, Ctx, Msg};
use lidc::simcore::faults::ChaosProfile;

/// A short generic job (~5 s through the shared cost model).
fn chaos_req(tag: u64) -> ComputeRequest {
    ComputeRequest::new("CHAOS", 2, 4).with_param("tag", tag.to_string())
}

/// Scenario 1: the nearest cluster's WAN face is cut 5 ms after a submit
/// goes out — while the Interest is still in flight. The forwarder's
/// face-down sweep must retransmit the stranded PIT entry over the
/// alternate face; the job lands on the surviving cluster with no
/// client-side resubmission at all.
#[test]
fn link_cut_retransmits_in_flight_interest_over_alternate_face() {
    let mut sim = Sim::new(42);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("near", SimDuration::from_millis(10)),
            ClusterSpec::new("far", SimDuration::from_millis(40)),
        ],
        load_datasets: false,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client =
        ScienceClient::deploy(ClientConfig::default(), &mut sim, overlay.router, &alloc, "u");
    let router = overlay.router;
    let face = overlay.face_of("near").expect("near face");
    let schedule = FaultSchedule::new().with(FaultEvent::permanent(
        SimDuration::from_millis(5),
        FaultKind::ClusterOutage {
            cluster: "near".into(),
        },
    ));
    FaultController::deploy(
        &mut sim,
        schedule,
        Box::new(move |kind, action, ctx| {
            if matches!(kind, FaultKind::ClusterOutage { .. }) {
                ctx.send(router, SetFaceUp {
                    face,
                    up: action == FaultAction::Heal,
                });
            }
        }),
    );
    sim.send(client, Submit(chaos_req(0)));
    sim.run();
    assert_metrics_registered(&sim);

    let runs = sim.actor::<ScienceClient>(client).expect("client").runs();
    assert!(runs[0].is_success(), "job survived the cut: {:?}", runs[0].error);
    assert_eq!(
        runs[0].cluster.as_deref(),
        Some("far"),
        "the alternate cluster answered"
    );
    assert_eq!(runs[0].resubmits, 0, "rerouted in the network, not by the client");
    assert!(
        sim.metrics_ref().counter("ndn.face_down_rerouted") >= 1,
        "the PIT sweep retransmitted over the alternate face"
    );
}

/// Raw-Interest probe used by the Content-Store scenario.
struct Probe {
    consumer: Option<Consumer>,
    target: Name,
    got: Option<String>,
}
struct Go;
impl Actor for Probe {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<Go>() {
            Ok(_) => {
                let interest = Interest::new(self.target.clone())
                    .with_lifetime(SimDuration::from_secs(4));
                self.consumer.as_mut().expect("attached").express(ctx, interest, 0);
                return;
            }
            Err(m) => m,
        };
        if let Ok(rx) = msg.downcast::<AppRx>() {
            if let Some(ConsumerEvent::Data(d)) =
                self.consumer.as_mut().expect("attached").on_app_rx(&rx)
            {
                if d.content_type != ContentType::Nack {
                    self.got = Some(d.name.to_uri());
                }
            }
        }
    }
}

/// Scenario 2: after a client fetched a result through the access router,
/// the producing cluster is cut off entirely. A second consumer asking for
/// the same name must be answered from the router's Content Store — data
/// outlives its producer, which is the point of naming data instead of
/// hosts.
#[test]
fn content_store_serves_result_after_producer_crash() {
    let mut sim = Sim::new(7);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![ClusterSpec::new("edge", SimDuration::from_millis(10))],
        load_datasets: false,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client =
        ScienceClient::deploy(ClientConfig::default(), &mut sim, overlay.router, &alloc, "alice");
    sim.send(client, Submit(chaos_req(0)));
    sim.run();
    assert_metrics_registered(&sim);
    let run = &sim.actor::<ScienceClient>(client).expect("client").runs()[0];
    assert!(run.is_success() && run.fetched_at.is_some(), "warm-up fetch done");
    let result = run.result_name.clone().expect("result name");

    // The producer cluster dies: its WAN link goes down at both ends.
    let router = overlay.router;
    let rf = overlay.face_of("edge").expect("router face");
    let gw = overlay.clusters[0].gateway_fwd;
    let gf = overlay.cluster_face_of("edge").expect("cluster face");
    let schedule = FaultSchedule::new().with(FaultEvent::permanent(
        SimDuration::from_millis(1),
        FaultKind::LinkDown { link: "edge".into() },
    ));
    FaultController::deploy(
        &mut sim,
        schedule,
        Box::new(move |kind, action, ctx| {
            if matches!(kind, FaultKind::LinkDown { .. }) {
                let up = action == FaultAction::Heal;
                ctx.send(router, SetFaceUp { face: rf, up });
                ctx.send(gw, SetFaceUp { face: gf, up });
            }
        }),
    );

    let probe = sim.spawn("probe", Probe {
        consumer: None,
        target: result.clone(),
        got: None,
    });
    let pface = attach_app(&mut sim, router, probe, &alloc);
    sim.actor_mut::<Probe>(probe).expect("probe").consumer =
        Some(Consumer::new(router, pface));
    let hits_before = sim.metrics_ref().counter("ndn.cs_hits");
    sim.send_after(SimDuration::from_millis(10), probe, Go);
    sim.run();
    assert_metrics_registered(&sim);

    assert_eq!(
        sim.actor::<Probe>(probe).expect("probe").got.as_deref(),
        Some(result.to_uri().as_str()),
        "the Content Store answered for the dead producer"
    );
    assert!(sim.metrics_ref().counter("ndn.cs_hits") > hits_before);
}

/// Scenario 3: a worker node crashes mid-job. Kubernetes evicts the lost
/// pod, reschedules on the survivor, and the client — who knows nothing of
/// nodes — still sees the job complete.
#[test]
fn node_crash_mid_job_reschedules_and_completes() {
    let mut sim = Sim::new(11);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("solo", SimDuration::from_millis(5)).with_nodes(2, 16, 64),
        ],
        load_datasets: false,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client =
        ScienceClient::deploy(ClientConfig::default(), &mut sim, overlay.router, &alloc, "u");
    // A ~100 s job so the crash lands mid-run.
    let req = ComputeRequest::new("CHAOS", 2, 4).with_param("size", "20000000000");
    sim.send(client, Submit(req));
    sim.run_for(SimDuration::from_secs(10));

    // Find where the pod landed, then schedule a crash of exactly that
    // node (transient: it heals 30 s later, after the reschedule).
    let node = {
        let api = overlay.clusters[0].k8s.api.read();
        let pod = api
            .pods
            .values()
            .find(|p| p.status.phase == PodPhase::Running)
            .expect("pod running by t+10s");
        pod.status.node.clone().expect("bound")
    };
    let k8s_actor = overlay.clusters[0].k8s.actor;
    let schedule = FaultSchedule::new().with(FaultEvent::transient(
        SimDuration::from_secs(5),
        SimDuration::from_secs(30),
        FaultKind::NodeCrash {
            cluster: "solo".into(),
            node: node.clone(),
        },
    ));
    FaultController::deploy(
        &mut sim,
        schedule,
        Box::new(move |kind, action, ctx| {
            if let FaultKind::NodeCrash { node, .. } = kind {
                ctx.send(k8s_actor, SetNodeReady {
                    node: node.clone(),
                    ready: action == FaultAction::Heal,
                });
            }
        }),
    );
    sim.run();
    assert_metrics_registered(&sim);

    let runs = sim.actor::<ScienceClient>(client).expect("client").runs();
    assert!(runs[0].is_success(), "job completed despite the crash: {:?}", runs[0].error);
    let api = overlay.clusters[0].k8s.api.read();
    assert!(
        api.events.iter().any(|e| e.kind == "PodEvicted"),
        "the lost pod was evicted"
    );
    assert!(
        api.pods
            .values()
            .any(|p| p.status.phase == PodPhase::Succeeded
                && p.status.node.as_deref() != Some(node.as_str())),
        "the replacement ran on the survivor"
    );
    assert_eq!(sim.metrics_ref().counter("fault.injected"), 1);
    assert_eq!(sim.metrics_ref().counter("fault.healed"), 1);
    assert_eq!(sim.metrics_ref().counter("fault.node_crash"), 2);
}

/// Scenario 4: the comparison the paper's argument rests on. Same seed,
/// same job stream, same fault schedule (a permanent cluster outage plus
/// two transient node crashes): the baseline's round-robin controller
/// keeps parking placements on the dead member, LIDC routes around it.
#[test]
fn lidc_beats_baseline_under_identical_fault_schedule() {
    let cfg = ChaosConfig::standard(9001);
    let lidc = run_lidc_chaos(&cfg);
    let baseline = run_baseline_chaos(&cfg);
    println!("{}", comparison_table(&[&lidc, &baseline]).to_markdown());

    assert_eq!(lidc.fault_timeline, baseline.fault_timeline, "same schedule applied");
    assert_eq!(lidc.submitted, cfg.jobs);
    assert_eq!(baseline.submitted, cfg.jobs);
    assert_eq!(
        lidc.completed, lidc.submitted,
        "LIDC completed everything despite the outage"
    );
    assert!(
        baseline.completed < baseline.submitted,
        "the centralized controller parked work on the dead cluster"
    );
    assert!(lidc.completed >= baseline.completed);
    assert!(lidc.completion_rate() > baseline.completion_rate());
}

/// Scenario 5: chaos is deterministic. The same seed + schedule must
/// produce byte-identical outcomes (counts, p99, wasted work, fault
/// timeline) at 1 and 4 worker threads, with 1- and 4-way-sharded
/// forwarder tables, under the horizon scheduler, and across repeat runs.
#[test]
fn chaos_outcome_identical_across_threads_shards_horizon_and_reruns() {
    let serial = ChaosConfig::standard(777);
    let mut wide = serial.clone();
    wide.threads = 4;
    wide.shards = 4;
    let mut hz = serial.clone();
    hz.horizon_mode = true;
    let mut hz_wide = wide.clone();
    hz_wide.horizon_mode = true;

    let lidc_serial = run_lidc_chaos(&serial);
    let lidc_wide = run_lidc_chaos(&wide);
    let lidc_again = run_lidc_chaos(&serial);
    assert_eq!(
        lidc_serial.fingerprint(),
        lidc_wide.fingerprint(),
        "LIDC chaos outcome depends on thread/shard count"
    );
    assert_eq!(lidc_serial.fingerprint(), lidc_again.fingerprint());
    assert_eq!(
        lidc_serial.fingerprint(),
        run_lidc_chaos(&hz).fingerprint(),
        "LIDC chaos outcome depends on the engine mode (horizon, serial)"
    );
    assert_eq!(
        lidc_serial.fingerprint(),
        run_lidc_chaos(&hz_wide).fingerprint(),
        "LIDC chaos outcome depends on the engine mode (horizon, 4 threads)"
    );

    let base_serial = run_baseline_chaos(&serial);
    let base_wide = run_baseline_chaos(&wide);
    assert_eq!(
        base_serial.fingerprint(),
        base_wide.fingerprint(),
        "baseline chaos outcome depends on thread/shard count"
    );
    assert_eq!(
        base_serial.fingerprint(),
        run_baseline_chaos(&hz).fingerprint(),
        "baseline chaos outcome depends on the engine mode"
    );
}

/// Scenario 6: *generated* random schedules, not just the hand-written
/// one. Each seed draws a fresh fault mix through
/// [`FaultSchedule::generate`] from a dedicated RNG stream; the run must
/// still be bit-identical across 1/4 worker threads × 1/4-way-sharded
/// forwarders. This is what lets CI throw a different storm at every
/// scenario without ever producing an unreproducible failure: any red run
/// replays exactly from its seed.
#[test]
fn generated_schedules_are_deterministic_across_threads_and_shards() {
    for seed in [0xC0FFEE_u64, 31_337] {
        let profile = ChaosProfile {
            horizon: SimDuration::from_secs(120),
            clusters: vec!["west".into(), "east".into(), "south".into()],
            links: vec!["west".into(), "east".into(), "south".into()],
            nodes_per_cluster: 2,
            outages: 1,
            node_crashes: 2,
            link_degrades: 2,
            byzantine: 1,
            region_outages: 1,
            regions: vec![("coastal".into(), vec!["west".into(), "east".into()])],
            mean_duration: SimDuration::from_secs(30),
        };
        let schedule =
            FaultSchedule::generate(&mut DetRng::new(seed).derive_str("faults"), &profile);
        assert_eq!(schedule.events().len(), 7, "every draw produced an event");
        assert!(
            schedule.events().iter().any(|e| matches!(
                &e.kind,
                FaultKind::NodeCrash { node, .. } if node.contains("-node-")
            )),
            "generated crashes target real node names"
        );
        assert!(
            schedule
                .events()
                .iter()
                .any(|e| matches!(&e.kind, FaultKind::ByzantineProducer { .. })),
            "the generator draws byzantine producers"
        );
        assert!(
            schedule.events().iter().any(|e| matches!(
                &e.kind,
                FaultKind::RegionOutage { members, .. } if members.len() == 2
            )),
            "the generator draws region outages with their declared members"
        );

        let mut cfg = ChaosConfig::standard(seed);
        cfg.jobs = 6;
        cfg.schedule = schedule;
        cfg.horizon = SimDuration::from_mins(30);

        let mut fingerprints = Vec::new();
        for (threads, shards, horizon_mode) in
            [(1, 1, false), (1, 4, false), (4, 1, false), (4, 4, false), (1, 1, true), (4, 4, true)]
        {
            let mut c = cfg.clone();
            c.threads = threads;
            c.shards = shards;
            c.horizon_mode = horizon_mode;
            fingerprints.push((threads, shards, horizon_mode, run_lidc_chaos(&c).fingerprint()));
        }
        let (_, _, _, reference) = &fingerprints[0];
        for (threads, shards, horizon_mode, fp) in &fingerprints {
            assert_eq!(
                fp, reference,
                "seed {seed:#x}: outcome at {threads} threads / {shards} shards \
                 (horizon: {horizon_mode}) diverged"
            );
        }
    }
}

/// Scenario 7: two submissions of the *same* request — the duplicate
/// workload the gateway's result cache exists for — race through an
/// outage window. Found by the PR-9 `panic-path` sweep over the client's
/// record-index plumbing: the in-flight maps were keyed by Interest name,
/// so the second record overwrote the first, and the overwritten run hung
/// forever — no ack, no timeout (its retransmit timer had been staled by
/// the second express), no resubmission, no error. Every run must reach a
/// terminal state, and with the shared name both must ride the same ack.
#[test]
fn duplicate_submissions_share_a_name_and_all_terminate() {
    let mut sim = Sim::new(23);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![ClusterSpec::new("solo", SimDuration::from_millis(5))],
        load_datasets: false,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let config = ClientConfig {
        resubmit_attempts: 10,
        backoff_base: SimDuration::from_secs(1),
        backoff_cap: SimDuration::from_secs(4),
        ..Default::default()
    };
    let client = ScienceClient::deploy(config, &mut sim, overlay.router, &alloc, "u");
    let router = overlay.router;
    let face = overlay.face_of("solo").expect("solo face");
    // The cluster is unreachable for the first ten seconds: both identical
    // submissions are NACKed and resubmitted through the same shared name
    // until the heal, when one ack must resolve both records.
    let schedule = FaultSchedule::new().with(FaultEvent::transient(
        SimDuration::from_millis(1),
        SimDuration::from_secs(10),
        FaultKind::ClusterOutage {
            cluster: "solo".into(),
        },
    ));
    FaultController::deploy(
        &mut sim,
        schedule,
        Box::new(move |kind, action, ctx| {
            if matches!(kind, FaultKind::ClusterOutage { .. }) {
                ctx.send(router, SetFaceUp {
                    face,
                    up: action == FaultAction::Heal,
                });
            }
        }),
    );
    let req = chaos_req(7); // deliberately the same request twice
    sim.send(client, Submit(req.clone()));
    sim.send(client, Submit(req));
    sim.run();
    assert_metrics_registered(&sim);

    let runs = sim.actor::<ScienceClient>(client).expect("client").runs();
    assert_eq!(runs.len(), 2);
    for (i, run) in runs.iter().enumerate() {
        assert!(
            run.completed_at.is_some() || run.error.is_some(),
            "run {i} reached a terminal state (was silently stranded): {run:?}"
        );
    }
    assert!(
        runs.iter().all(|r| r.is_success()),
        "both runs completed after the heal: {runs:?}"
    );
    assert!(
        runs.iter().all(|r| r.job_id.is_some()),
        "both records were acked (pre-fix the overwritten one never was)"
    );
}

/// Run the LIDC world across the full engine matrix — 1/4 worker threads ×
/// 1/4-way-sharded forwarders × legacy/horizon scheduler — and demand
/// bit-identical fingerprints. Returns the reference outcome.
fn lidc_across_engine_matrix(cfg: &ChaosConfig) -> lidc::baseline::chaos::ChaosOutcome {
    let mut reference = None;
    for (threads, shards, horizon_mode) in
        [(1, 1, false), (1, 4, false), (4, 1, false), (4, 4, false), (1, 1, true), (4, 4, true)]
    {
        let mut c = cfg.clone();
        c.threads = threads;
        c.shards = shards;
        c.horizon_mode = horizon_mode;
        let outcome = run_lidc_chaos(&c);
        match &reference {
            None => reference = Some(outcome),
            Some(r) => assert_eq!(
                outcome.fingerprint(),
                r.fingerprint(),
                "outcome at {threads} threads / {shards} shards (horizon: {horizon_mode}) diverged"
            ),
        }
    }
    reference.expect("matrix ran")
}

/// Scenario 8: a byzantine producer. From t=15s on, `east`'s gateway
/// answers **every** Interest with unsigned garbage under the original
/// name. The first-hop verification gate must reject each forgery before
/// it can satisfy a PIT entry or enter a Content Store, the clients'
/// resubmission path must steer the whole job stream to the honest
/// clusters, and the run must stay bit-identical across the engine matrix.
/// (`run_lidc_chaos` additionally scans every forwarder's CS shard for
/// unverifiable Data after the run.)
#[test]
fn byzantine_producer_is_contained_and_lidc_still_completes() {
    let cfg = ChaosConfig::byzantine(4242);
    let lidc = lidc_across_engine_matrix(&cfg);
    let baseline = run_baseline_chaos(&cfg);
    println!("{}", comparison_table(&[&lidc, &baseline]).to_markdown());

    assert_eq!(lidc.submitted, cfg.jobs);
    assert_eq!(
        lidc.completed, lidc.submitted,
        "LIDC completed everything despite the byzantine cluster: {lidc:?}"
    );
    assert!(
        lidc.verify_failed > 0,
        "the forgeries were seen and refused: {lidc:?}"
    );
    assert!(
        lidc.cs_poison_rejected > 0,
        "at least one forgery was caught at the cache-admission gate: {lidc:?}"
    );
    assert!(
        lidc.resubmissions > 0,
        "recovery went through the client resubmission path"
    );
    // The byzantine fault is a no-op in the baseline world (its producer
    // is the trusted controller), so this comparison is about LIDC paying
    // the verification cost and *still* matching the undisturbed baseline.
    assert!(lidc.completed >= baseline.completed);
}

/// Scenario 9: a correlated region outage. One `RegionOutage` firing cuts
/// `west` **and** `east` together at t=30s (both WAN links in the LIDC
/// world, both node pools in the baseline world) and one heal restores
/// them together at t=90s. LIDC must ride out the outage on the surviving
/// `south` and complete the entire job stream, bit-identically across the
/// engine matrix.
#[test]
fn region_outage_takes_down_the_region_together_and_heals() {
    let cfg = ChaosConfig::region_outage(31_415);
    let lidc = lidc_across_engine_matrix(&cfg);
    let baseline = run_baseline_chaos(&cfg);
    println!("{}", comparison_table(&[&lidc, &baseline]).to_markdown());

    assert_eq!(lidc.submitted, cfg.jobs);
    assert_eq!(
        lidc.completed, lidc.submitted,
        "LIDC completed everything despite losing the coastal region: {lidc:?}"
    );
    assert_eq!(
        lidc.faults_injected, 1,
        "one firing takes down the whole declared member set"
    );
    assert!(
        lidc.fault_timeline.contains("region-outage(coastal: west+east)"),
        "the timeline names the region and its members: {}",
        lidc.fault_timeline
    );
    assert_eq!(lidc.fault_timeline, baseline.fault_timeline, "same schedule applied");
    assert!(lidc.completed >= baseline.completed);
}
