//! Multi-cluster overlay integration tests: placement policies, membership
//! churn, failover, and scale — the paper's §I/§VII claims end to end.

use lidc::prelude::*;

fn blast(tag: u64) -> ComputeRequest {
    ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", "SRR2931415")
        .with_param("ref", "HUMAN")
        .with_param("tag", tag.to_string())
}

fn overlay(seed: u64, placement: PlacementPolicy, specs: Vec<ClusterSpec>) -> (Sim, Overlay, ActorId) {
    let mut sim = Sim::new(seed);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement,
        clusters: specs,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "user",
    );
    (sim, overlay, client)
}

fn three_sites() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::new("near", SimDuration::from_millis(5)),
        ClusterSpec::new("mid", SimDuration::from_millis(25)),
        ClusterSpec::new("far", SimDuration::from_millis(70)),
    ]
}

#[test]
fn nearest_policy_always_picks_lowest_latency() {
    let (mut sim, _o, client) = overlay(1, PlacementPolicy::Nearest, three_sites());
    for tag in 0..5 {
        sim.send(client, Submit(blast(tag)));
    }
    sim.run();
    for run in sim.actor::<ScienceClient>(client).unwrap().runs() {
        assert!(run.is_success());
        assert_eq!(run.cluster.as_deref(), Some("near"));
    }
}

#[test]
fn least_loaded_overflows_to_other_sites_under_burst() {
    // One 16-core site fills up after ~8 two-core jobs; a burst of 18 must
    // spill to the other members.
    let (mut sim, o, client) = overlay(2, PlacementPolicy::LeastLoaded, three_sites());
    for tag in 0..18 {
        sim.send_after(SimDuration::from_secs(10) * tag, client, Submit(blast(tag)));
    }
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert!(runs.iter().all(|r| r.is_success()));
    let mut used: Vec<&str> = runs.iter().filter_map(|r| r.cluster.as_deref()).collect();
    used.sort();
    used.dedup();
    assert!(used.len() >= 2, "burst stayed on one site: {used:?}");
    drop(o);
}

#[test]
fn graceful_leave_reroutes_new_work() {
    let (mut sim, mut o, client) = overlay(3, PlacementPolicy::Nearest, three_sites());
    sim.send(client, Submit(blast(0)));
    sim.run();
    assert_eq!(
        sim.actor::<ScienceClient>(client).unwrap().runs()[0].cluster.as_deref(),
        Some("near")
    );
    // "near" leaves gracefully (unregisters its prefixes).
    o.remove_cluster(&mut sim, "near");
    sim.send(client, Submit(blast(1)));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert!(runs[1].is_success());
    assert_eq!(runs[1].cluster.as_deref(), Some("mid"));
}

#[test]
fn restore_after_partition_brings_traffic_back() {
    let (mut sim, o, client) = overlay(4, PlacementPolicy::Nearest, three_sites());
    o.fail_cluster(&mut sim, "near");
    sim.send(client, Submit(blast(0)));
    sim.run();
    let first = sim.actor::<ScienceClient>(client).unwrap().runs()[0].clone();
    assert!(first.is_success());
    assert_eq!(first.cluster.as_deref(), Some("mid"), "partitioned site skipped");

    o.restore_cluster(&mut sim, "near");
    sim.send(client, Submit(blast(1)));
    sim.run();
    let second = &sim.actor::<ScienceClient>(client).unwrap().runs()[1];
    assert!(second.is_success());
    assert_eq!(second.cluster.as_deref(), Some("near"), "healed site preferred again");
}

#[test]
fn mid_run_failover_preserves_every_job() {
    let (mut sim, o, client) = overlay(5, PlacementPolicy::Nearest, three_sites());
    for tag in 0..4 {
        sim.send(client, Submit(blast(tag)));
    }
    // Let them land and start on "near", then cut it off.
    sim.run_for(SimDuration::from_mins(15));
    o.fail_cluster(&mut sim, "near");
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert_eq!(runs.len(), 4);
    for run in runs {
        assert!(run.is_success(), "{:?}", run.error);
        assert_eq!(run.cluster.as_deref(), Some("mid"), "resubmitted next-nearest");
        assert!(run.resubmits >= 1);
    }
}

#[test]
fn status_queries_route_to_the_owning_cluster() {
    // Status names carry the cluster segment; with several members the
    // query must reach the one that owns the job, not just any member.
    let (mut sim, o, client) = overlay(6, PlacementPolicy::RoundRobin, three_sites());
    for tag in 0..6 {
        sim.send(client, Submit(blast(tag)));
    }
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert!(runs.iter().all(|r| r.is_success()));
    // Every member served some status queries for its own jobs.
    for c in &o.clusters {
        let stats = c.gateway_stats(&sim);
        assert!(stats.jobs_created >= 1);
        assert!(
            stats.status_queries >= stats.jobs_created,
            "{}: {} status < {} jobs",
            c.name,
            stats.status_queries,
            stats.jobs_created
        );
    }
}

#[test]
fn eight_site_overlay_completes_a_wave() {
    let specs: Vec<ClusterSpec> = (0..8)
        .map(|i| ClusterSpec::new(format!("s{i}"), SimDuration::from_millis(5 + 10 * i as u64)))
        .collect();
    let (mut sim, _o, client) = overlay(7, PlacementPolicy::RoundRobin, specs);
    for tag in 0..16 {
        sim.send_after(SimDuration::from_secs(tag), client, Submit(blast(tag)));
    }
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert_eq!(runs.iter().filter(|r| r.is_success()).count(), 16);
    let mut clusters: Vec<&str> = runs.iter().filter_map(|r| r.cluster.as_deref()).collect();
    clusters.sort();
    clusters.dedup();
    assert_eq!(clusters.len(), 8, "round robin used every member: {clusters:?}");
}

#[test]
fn cache_hit_skips_wan_and_cluster_on_second_identical_request() {
    let mut sim = Sim::new(8);
    let o = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("solo", SimDuration::from_millis(50)).with_cache(16, SimDuration::ZERO),
        ],
        ..Default::default()
    });
    let alloc = o.alloc.clone();
    let client = ScienceClient::deploy(ClientConfig::default(), &mut sim, o.router, &alloc, "u");
    let req = ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", "SRR2931415")
        .with_param("ref", "HUMAN");
    sim.send(client, Submit(req.clone()));
    sim.run();
    sim.send(client, Submit(req));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    assert!(runs[1].served_from_cache);
    // Identical result object, no second job.
    assert_eq!(runs[0].result_name, runs[1].result_name);
    assert_eq!(runs[0].result_size, runs[1].result_size);
    assert_eq!(o.clusters[0].gateway_stats(&sim).jobs_created, 1);
}
