//! Whole-stack determinism (DESIGN.md §8): identical seeds reproduce
//! identical traces through the full overlay — event counts, placements,
//! timings, and report bytes — including property-based sweeps over seeds.

use lidc::prelude::*;
use proptest::prelude::*;

fn blast(tag: u64) -> ComputeRequest {
    ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", "SRR2931415")
        .with_param("ref", "HUMAN")
        .with_param("tag", tag.to_string())
}

/// One fixed scenario: 3 sites, 6 jobs, a mid-run partition.
fn scenario(seed: u64) -> (u64, String) {
    let mut sim = Sim::new(seed);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::RoundRobin,
        clusters: vec![
            ClusterSpec::new("a", SimDuration::from_millis(7)),
            ClusterSpec::new("b", SimDuration::from_millis(23)),
            ClusterSpec::new("c", SimDuration::from_millis(41)),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(ClientConfig::default(), &mut sim, overlay.router, &alloc, "u");
    for tag in 0..6 {
        sim.send_after(SimDuration::from_secs(tag * 11), client, Submit(blast(tag)));
    }
    sim.run_for(SimDuration::from_mins(7));
    overlay.fail_cluster(&mut sim, "b");
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    let trace: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{}@{}:{:?}:{}",
                r.request.param("tag").unwrap_or("-"),
                r.cluster.as_deref().unwrap_or("-"),
                r.turnaround(),
                r.resubmits
            )
        })
        .collect();
    (sim.events_processed(), trace.join("|"))
}

#[test]
fn identical_seed_identical_full_trace() {
    assert_eq!(scenario(424_242), scenario(424_242));
}

#[test]
fn different_seeds_still_complete_but_may_differ_in_event_count() {
    let (e1, t1) = scenario(1);
    let (e2, _t2) = scenario(2);
    // Same logical outcome (all jobs complete)...
    assert_eq!(t1.matches('|').count(), 5);
    // ...and the traces are produced independently (event streams differ in
    // general; equality here would be a seed-ignoring bug unless nonces
    // never influenced ordering).
    assert!(e1 > 0 && e2 > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed: the single-cluster Fig. 5 workflow completes with the
    /// Table-I-calibrated runtime, regardless of nonce/jitter draws.
    #[test]
    fn any_seed_completes_fig5(seed in 0u64..10_000) {
        let mut sim = Sim::new(seed);
        let alloc = FaceIdAlloc::new();
        let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
        let client = ScienceClient::deploy(
            ClientConfig::default(), &mut sim, cluster.gateway_fwd, &alloc, "u");
        sim.send(client, Submit(blast(seed)));
        sim.run();
        let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
        prop_assert!(run.is_success(), "{:?}", run.error);
        let api = cluster.k8s.api.read();
        let job = api.jobs.values().next().unwrap();
        prop_assert_eq!(job.run_time().unwrap().to_string(), "8h9m50s");
    }

    /// Any seed, twice: byte-identical traces (replayability).
    #[test]
    fn any_seed_replays_identically(seed in 0u64..1_000_000) {
        prop_assert_eq!(scenario(seed), scenario(seed));
    }
}
