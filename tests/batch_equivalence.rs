//! Batch/sequential dispatch equivalence: a same-instant burst delivered
//! through the batched path (engine `on_batch` coalescing + the forwarder's
//! wire batching + the gateway's amortized batch handlers) must produce the
//! same replies, the same domain metrics, and the same CS/PIT end-state as
//! one-at-a-time delivery (`Sim::set_batching(false)`).
//!
//! This is the safety net for the batching refactor: any ordering bug in
//! burst coalescing, the per-link flush, or the gateway's grouped plan work
//! shows up as a divergence here.

use std::collections::BTreeMap;

use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_ndn::face::{FaceIdAlloc, LinkProps};
use lidc_ndn::forwarder::{AppRx, Forwarder, ForwarderConfig, Rx};
use lidc_ndn::name::Name;
use lidc_ndn::net::{attach_app, connect};
use lidc_ndn::packet::{ContentType, Interest, Packet};
use lidc_simcore::engine::{Actor, Ctx, Msg, Sim};
use lidc_simcore::time::SimDuration;

/// Records every reply the burst produces (name, content-type, payload).
struct Sink {
    replies: Vec<(String, String, Vec<u8>)>,
}

impl Actor for Sink {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
        if let Ok(rx) = msg.downcast::<AppRx>() {
            match rx.packet {
                Packet::Data(d) => self.replies.push((
                    d.name.to_uri(),
                    format!("{:?}", d.content_type),
                    d.content.to_vec(),
                )),
                Packet::Nack(n) => {
                    self.replies
                        .push((n.interest.name.to_uri(), format!("nack:{:?}", n.reason), vec![]))
                }
                Packet::Interest(_) => {}
            }
        }
    }
}

/// End-state fingerprint of one run.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// Sorted replies (ordering within one instant is not part of the
    /// equivalence contract; the *set* of replies is).
    replies: Vec<(String, String, Vec<u8>)>,
    /// Every non-batching metrics counter (`*batch*` counters exist only on
    /// the batched side by construction).
    counters: BTreeMap<String, u64>,
    /// (cached names, PIT size) per forwarder, client then gateway then lake.
    tables: Vec<(Vec<String>, usize)>,
    /// Gateway statistics struct.
    gateway_stats: String,
}

fn run(batching: bool) -> Fingerprint {
    let mut sim = Sim::new(99);
    sim.set_batching(batching);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig {
        nodes: 2,
        load_datasets: false,
        // Result cache on: a compute whose key a same-instant neighbor
        // populated must hit (or miss) identically in both modes.
        result_cache_capacity: 8,
        ..LidcClusterConfig::named("eq")
    });
    let client_fwd = sim.spawn(
        "client-fwd",
        Forwarder::new("client-fwd", ForwarderConfig::default()),
    );
    let (to_gw, _) = connect(
        &mut sim,
        client_fwd,
        cluster.gateway_fwd,
        &alloc,
        LinkProps::with_latency(SimDuration::from_millis(2)),
    );
    cluster.register_on(&mut sim, client_fwd, to_gw, 0);
    let sink = sim.spawn("sink", Sink { replies: vec![] });
    let sink_face = attach_app(&mut sim, client_fwd, sink, &alloc);

    let send = |sim: &mut Sim, interest: Interest| {
        sim.send(client_fwd, Rx {
            face: sink_face,
            packet: Packet::Interest(interest),
        });
    };
    // One same-instant burst mixing every request kind the gateway serves:
    // 24 compute requests across two apps with status checks *interleaved*
    // (so the batch path must segment the burst into same-kind runs to
    // keep side effects in arrival order), plus a malformed compute.
    for i in 0..24 {
        let app = if i % 3 == 0 { "EQAPP" } else { "EQOTHER" };
        let name = Name::parse(&format!(
            "/ndn/k8s/compute/mem=1&cpu=1&app={app}&size=500000&tag={i}"
        ))
        .unwrap();
        send(&mut sim, Interest::new(name).must_be_fresh(true).with_nonce(100 + i));
        if i % 6 == 0 {
            let name = Name::parse(&format!("/ndn/k8s/status/eq/job-{}", 9000 + i)).unwrap();
            send(&mut sim, Interest::new(name).must_be_fresh(true).with_nonce(200 + i));
        }
    }
    send(
        &mut sim,
        Interest::new(Name::parse("/ndn/k8s/compute/mem=broken").unwrap())
            .must_be_fresh(true)
            .with_nonce(300),
    );
    sim.run_until(sim.now() + SimDuration::from_millis(100));

    // Second wave, also same-instant: status checks for the jobs the acks
    // named (the ack body carries `job: <cluster>/job-<n>`), exercising the
    // batched status path against live jobs.
    let job_ids: Vec<String> = sim
        .actor::<Sink>(sink)
        .unwrap()
        .replies
        .iter()
        .filter_map(|(_, _, content)| {
            let text = String::from_utf8_lossy(content);
            text.lines()
                .find_map(|l| l.strip_prefix("job-id=").map(|s| s.to_owned()))
        })
        .collect();
    assert!(!job_ids.is_empty(), "acks carried job ids");
    for (i, job) in job_ids.iter().enumerate() {
        let name = Name::parse(&format!("/ndn/k8s/status/{job}")).unwrap();
        send(&mut sim, Interest::new(name).must_be_fresh(true).with_nonce(400 + i as u32));
    }
    sim.run_until(sim.now() + SimDuration::from_millis(100));

    let mut replies = sim.actor::<Sink>(sink).unwrap().replies.clone();
    replies.sort();
    let counters: BTreeMap<String, u64> = sim
        .metrics_ref()
        .counter_names()
        .filter(|name| !name.contains("batch"))
        .map(|name| (name.to_owned(), sim.metrics_ref().counter(name)))
        .collect();
    let tables = [client_fwd, cluster.gateway_fwd, cluster.dl_fwd]
        .iter()
        .map(|&fwd| {
            let f = sim.actor::<Forwarder>(fwd).unwrap();
            (
                f.cs().names().map(|n| n.to_uri()).collect::<Vec<_>>(),
                f.pit().len(),
            )
        })
        .collect();
    Fingerprint {
        replies,
        counters,
        tables,
        gateway_stats: format!("{:?}", cluster.gateway_stats(&sim)),
    }
}

#[test]
fn batched_and_sequential_dispatch_agree() {
    let batched = run(true);
    let sequential = run(false);
    assert_eq!(
        batched.replies.len(),
        // 24 acks + 4 unknown-job nacks + 1 malformed nack + per-job status
        // replies (one per created job).
        sequential.replies.len(),
    );
    assert_eq!(batched.replies, sequential.replies, "reply sets diverge");
    assert_eq!(batched.counters, sequential.counters, "metrics diverge");
    assert_eq!(batched.tables, sequential.tables, "CS/PIT end-state diverges");
    assert_eq!(batched.gateway_stats, sequential.gateway_stats);
    // Sanity: the burst really exercised the batched paths.
    assert!(!batched.replies.is_empty());
}

#[test]
fn batched_path_actually_batched() {
    // Guard against the equivalence test silently testing nothing: the
    // batched run must register engine bursts and link flushes.
    let mut sim = Sim::new(5);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig {
        nodes: 2,
        load_datasets: false,
        ..LidcClusterConfig::named("eq2")
    });
    let client_fwd = sim.spawn(
        "client-fwd",
        Forwarder::new("client-fwd", ForwarderConfig::default()),
    );
    let (to_gw, _) = connect(
        &mut sim,
        client_fwd,
        cluster.gateway_fwd,
        &alloc,
        LinkProps::with_latency(SimDuration::from_millis(2)),
    );
    cluster.register_on(&mut sim, client_fwd, to_gw, 0);
    let sink = sim.spawn("sink", Sink { replies: vec![] });
    let sink_face = attach_app(&mut sim, client_fwd, sink, &alloc);
    for i in 0..16 {
        let name = Name::parse(&format!(
            "/ndn/k8s/compute/mem=1&cpu=1&app=EQAPP&size=500000&tag={i}"
        ))
        .unwrap();
        sim.send(client_fwd, Rx {
            face: sink_face,
            packet: Packet::Interest(Interest::new(name).must_be_fresh(true).with_nonce(1 + i)),
        });
    }
    sim.run_until(sim.now() + SimDuration::from_millis(100));
    assert_eq!(sim.actor::<Sink>(sink).unwrap().replies.len(), 16);
    let m = sim.metrics_ref();
    assert!(m.counter("sim.batch.bursts") > 0, "engine coalesced bursts");
    assert!(m.counter("ndn.batch.link_flushes") > 0, "links flushed batches");
    assert!(m.counter("gateway.batch.bursts") > 0, "gateway saw a burst");
    assert!(m.counter("sim.batch.max_size") >= 16);
    let drained = sim.drain_stats(cluster.gateway_app);
    assert!(drained.max_batch >= 16, "gateway drained the burst in one call");
    // ContentType unused warning guard.
    let _ = ContentType::Blob;
}
