//! Dispatch-mode equivalence: the same gateway-pipeline workload must
//! produce identical replies, identical domain metrics, and identical
//! CS/PIT end state across **four** execution modes:
//!
//! 1. sequential — batching off, every message through `on_message`;
//! 2. batched — engine `on_batch` coalescing + forwarder wire batching +
//!    the gateway's amortized batch handlers (threads 1, shards 1);
//! 3. batched + parallel — engine waves over distinct Concurrent actors
//!    (2 and 4 worker threads) *and* 4-way name-hash-sharded forwarder
//!    tables with the two-phase parallel burst ingress;
//! 4. horizon — the conservative lookahead scheduler (docs/ENGINE.md):
//!    each client forwarder lives in its own actor group and runs ahead
//!    of the global clock within the 2 ms WAN-link lookahead, at 1 and 4
//!    worker threads and 1/4-way shards.
//!
//! Every world is built with the per-client groups (they are inert in
//! legacy mode), so all four modes execute the *identical* topology.
//!
//! This is the safety net for the batching, parallel-dispatch, *and*
//! horizon refactors: any ordering bug in burst coalescing, the per-link
//! flush, wave effect/metric merging, shard routing, the phased ingress,
//! window limits, or cross-group event routing shows up as a divergence
//! here.

use std::collections::BTreeMap;

use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_ndn::face::{FaceIdAlloc, LinkProps};
use lidc_ndn::forwarder::{AppRx, Forwarder, ForwarderConfig, Rx};
use lidc_ndn::name::Name;
use lidc_ndn::net::{attach_app, connect};
use lidc_ndn::packet::{ContentType, Interest, Packet};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::SimDuration;

/// Records every reply the burst produces (name, content-type, payload).
struct Sink {
    replies: Vec<(String, String, Vec<u8>)>,
}

impl Actor for Sink {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
        if let Ok(rx) = msg.downcast::<AppRx>() {
            match rx.packet {
                Packet::Data(d) => self.replies.push((
                    d.name.to_uri(),
                    format!("{:?}", d.content_type),
                    d.content.to_vec(),
                )),
                Packet::Nack(n) => {
                    self.replies
                        .push((n.interest.name.to_uri(), format!("nack:{:?}", n.reason), vec![]))
                }
                Packet::Interest(_) => {}
            }
        }
    }
}

/// One execution mode of the four-way comparison.
#[derive(Debug, Clone, Copy)]
struct Mode {
    batching: bool,
    threads: usize,
    shards: usize,
    horizon: bool,
}

/// End-state fingerprint of one run.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// Sorted replies (ordering within one instant is not part of the
    /// equivalence contract; the *set* of replies is).
    replies: Vec<(String, String, Vec<u8>)>,
    /// Every metrics counter except the batching/parallel/horizon
    /// observability counters, which exist only on the modes that use
    /// those paths.
    counters: BTreeMap<String, u64>,
    /// (cached names, PIT size) per forwarder: two clients, gateway, lake.
    tables: Vec<(Vec<String>, usize)>,
    /// Gateway statistics struct.
    gateway_stats: String,
}

/// Interests per client forwarder. Over the forwarder's parallel-ingress
/// threshold (64) so mode 3 genuinely takes the threaded shard phase.
const BURST: u32 = 72;

fn send_burst(sim: &mut Sim, fwd: ActorId, face: lidc_ndn::face::FaceId, tag_base: u32) {
    let send = |sim: &mut Sim, interest: Interest| {
        sim.send(fwd, Rx {
            face,
            packet: Packet::Interest(interest),
        });
    };
    // One same-instant burst mixing every request kind the gateway serves:
    // compute requests across two apps with status checks *interleaved*
    // (so the batch path must keep side effects in arrival order), plus a
    // malformed compute.
    for i in 0..BURST {
        let app = if i % 3 == 0 { "EQAPP" } else { "EQOTHER" };
        let tag = tag_base + i;
        let name = Name::parse(&format!(
            "/ndn/k8s/compute/mem=1&cpu=1&app={app}&size=500000&tag={tag}"
        ))
        .unwrap();
        send(sim, Interest::new(name).must_be_fresh(true).with_nonce(1000 + tag));
        if i % 6 == 0 {
            let name =
                Name::parse(&format!("/ndn/k8s/status/eq/job-{}", 9000 + tag)).unwrap();
            send(sim, Interest::new(name).must_be_fresh(true).with_nonce(5000 + tag));
        }
    }
    send(
        sim,
        Interest::new(Name::parse("/ndn/k8s/compute/mem=broken").unwrap())
            .must_be_fresh(true)
            .with_nonce(7000 + tag_base),
    );
}

fn run(mode: Mode) -> Fingerprint {
    let mut sim = Sim::new(99);
    sim.set_batching(mode.batching);
    sim.set_threads(mode.threads);
    sim.set_horizon(mode.horizon);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig {
        nodes: 2,
        load_datasets: false,
        // Result cache on: a compute whose key a same-instant neighbor
        // populated must hit (or miss) identically in every mode.
        result_cache_capacity: 8,
        forwarder_shards: mode.shards,
        ..LidcClusterConfig::named("eq")
    });
    // Two client forwarders receiving same-instant bursts: with threads > 1
    // their runs execute as one engine wave (both are Concurrent actors).
    // Each client (forwarder + sink) gets its own actor group — inert in
    // legacy mode, a horizon-advanceable partition with the 2 ms link
    // lookahead (auto-declared by `connect`) in horizon mode.
    let fwd_config = ForwarderConfig::default().with_shards(mode.shards);
    let mut clients = Vec::new();
    for c in 0..2 {
        let group = sim.new_group(format!("client-{c}"));
        let prev = sim.set_default_group(group);
        let client_fwd = sim.spawn(
            format!("client-fwd-{c}"),
            Forwarder::new(format!("client-fwd-{c}"), fwd_config.clone()),
        );
        let (to_gw, _) = connect(
            &mut sim,
            client_fwd,
            cluster.gateway_fwd,
            &alloc,
            LinkProps::with_latency(SimDuration::from_millis(2)),
        );
        cluster.register_on(&mut sim, client_fwd, to_gw, 0);
        let sink = sim.spawn(format!("sink-{c}"), Sink { replies: vec![] });
        let sink_face = attach_app(&mut sim, client_fwd, sink, &alloc);
        sim.set_default_group(prev);
        clients.push((client_fwd, sink, sink_face));
    }

    for (c, (client_fwd, _, sink_face)) in clients.iter().enumerate() {
        send_burst(&mut sim, *client_fwd, *sink_face, (c as u32) * 10_000);
    }
    sim.run_until(sim.now() + SimDuration::from_millis(100));

    // Second wave, also same-instant: status checks for the jobs the acks
    // named (the ack body carries `job-id=<cluster>/job-<n>`), exercising
    // the batched status path against live jobs.
    for (client_fwd, sink, sink_face) in &clients {
        let job_ids: Vec<String> = sim
            .actor::<Sink>(*sink)
            .unwrap()
            .replies
            .iter()
            .filter_map(|(_, _, content)| {
                let text = String::from_utf8_lossy(content);
                text.lines()
                    .find_map(|l| l.strip_prefix("job-id=").map(|s| s.to_owned()))
            })
            .collect();
        assert!(!job_ids.is_empty(), "acks carried job ids");
        for (i, job) in job_ids.iter().enumerate() {
            let name = Name::parse(&format!("/ndn/k8s/status/{job}")).unwrap();
            sim.send(*client_fwd, Rx {
                face: *sink_face,
                packet: Packet::Interest(
                    Interest::new(name).must_be_fresh(true).with_nonce(40_000 + i as u32),
                ),
            });
        }
    }
    sim.run_until(sim.now() + SimDuration::from_millis(100));

    let mut replies: Vec<(String, String, Vec<u8>)> = clients
        .iter()
        .flat_map(|(_, sink, _)| sim.actor::<Sink>(*sink).unwrap().replies.clone())
        .collect();
    replies.sort();
    if mode.horizon {
        // Guard against the horizon rows silently degenerating to pure
        // tie-steps (which would re-test the legacy loop): groups must
        // actually advance ahead through windows.
        assert!(
            sim.metrics_ref().counter("sim.horizon.advances") > 0,
            "horizon mode ran no group windows"
        );
    }
    // Runtime metric-key drift guard: every key this run recorded must
    // be in the registry the static lint checks literals against.
    let bad = lidc_simcore::metrics_keys::unregistered(
        sim.metrics_ref().counter_names().chain(sim.metrics_ref().histogram_names()),
    );
    assert!(bad.is_empty(), "unregistered metric keys recorded: {bad:?}");
    let counters: BTreeMap<String, u64> = sim
        .metrics_ref()
        .counter_names()
        .filter(|name| {
            !name.contains("batch") && !name.contains("parallel") && !name.contains("horizon")
        })
        .map(|name| (name.to_owned(), sim.metrics_ref().counter(name)))
        .collect();
    let tables = [
        clients[0].0,
        clients[1].0,
        cluster.gateway_fwd,
        cluster.dl_fwd,
    ]
    .iter()
    .map(|&fwd| {
        let f = sim.actor::<Forwarder>(fwd).unwrap();
        (
            f.cs()
                .names()
                .into_iter()
                .map(|n| n.to_uri())
                .collect::<Vec<_>>(),
            f.pit().len(),
        )
    })
    .collect();
    Fingerprint {
        replies,
        counters,
        tables,
        gateway_stats: format!("{:?}", cluster.gateway_stats(&sim)),
    }
}

#[test]
fn sequential_batched_parallel_and_horizon_dispatch_agree() {
    let sequential = run(Mode {
        batching: false,
        threads: 1,
        shards: 1,
        horizon: false,
    });
    let batched = run(Mode {
        batching: true,
        threads: 1,
        shards: 1,
        horizon: false,
    });
    assert!(!sequential.replies.is_empty());
    assert_eq!(sequential.replies, batched.replies, "reply sets diverge (batched)");
    assert_eq!(sequential.counters, batched.counters, "metrics diverge (batched)");
    assert_eq!(sequential.tables, batched.tables, "CS/PIT end-state diverges (batched)");
    assert_eq!(sequential.gateway_stats, batched.gateway_stats);

    for threads in [2usize, 4] {
        let parallel = run(Mode {
            batching: true,
            threads,
            shards: 4,
            horizon: false,
        });
        assert_eq!(
            sequential.replies, parallel.replies,
            "reply sets diverge (threads={threads}, shards=4)"
        );
        assert_eq!(
            sequential.counters, parallel.counters,
            "metrics diverge (threads={threads}, shards=4)"
        );
        assert_eq!(
            sequential.tables, parallel.tables,
            "CS/PIT end-state diverges (threads={threads}, shards=4)"
        );
        assert_eq!(sequential.gateway_stats, parallel.gateway_stats);
    }

    for (threads, shards) in [(1usize, 1usize), (4, 4)] {
        let horizon = run(Mode {
            batching: true,
            threads,
            shards,
            horizon: true,
        });
        assert_eq!(
            sequential.replies, horizon.replies,
            "reply sets diverge (horizon, threads={threads}, shards={shards})"
        );
        assert_eq!(
            sequential.counters, horizon.counters,
            "metrics diverge (horizon, threads={threads}, shards={shards})"
        );
        assert_eq!(
            sequential.tables, horizon.tables,
            "CS/PIT end-state diverges (horizon, threads={threads}, shards={shards})"
        );
        assert_eq!(sequential.gateway_stats, horizon.gateway_stats);
    }
}

#[test]
fn batched_path_actually_batched() {
    // Guard against the equivalence test silently testing nothing: the
    // batched run must register engine bursts and link flushes.
    let mut sim = Sim::new(5);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig {
        nodes: 2,
        load_datasets: false,
        ..LidcClusterConfig::named("eq2")
    });
    let client_fwd = sim.spawn(
        "client-fwd",
        Forwarder::new("client-fwd", ForwarderConfig::default()),
    );
    let (to_gw, _) = connect(
        &mut sim,
        client_fwd,
        cluster.gateway_fwd,
        &alloc,
        LinkProps::with_latency(SimDuration::from_millis(2)),
    );
    cluster.register_on(&mut sim, client_fwd, to_gw, 0);
    let sink = sim.spawn("sink", Sink { replies: vec![] });
    let sink_face = attach_app(&mut sim, client_fwd, sink, &alloc);
    for i in 0..16 {
        let name = Name::parse(&format!(
            "/ndn/k8s/compute/mem=1&cpu=1&app=EQAPP&size=500000&tag={i}"
        ))
        .unwrap();
        sim.send(client_fwd, Rx {
            face: sink_face,
            packet: Packet::Interest(Interest::new(name).must_be_fresh(true).with_nonce(1 + i)),
        });
    }
    sim.run_until(sim.now() + SimDuration::from_millis(100));
    assert_eq!(sim.actor::<Sink>(sink).unwrap().replies.len(), 16);
    let m = sim.metrics_ref();
    assert!(m.counter("sim.batch.bursts") > 0, "engine coalesced bursts");
    assert!(m.counter("ndn.batch.link_flushes") > 0, "links flushed batches");
    assert!(m.counter("gateway.batch.bursts") > 0, "gateway saw a burst");
    assert!(m.counter("sim.batch.max_size") >= 16);
    let drained = sim.drain_stats(cluster.gateway_app);
    assert!(drained.max_batch >= 16, "gateway drained the burst in one call");
    // ContentType unused warning guard.
    let _ = ContentType::Blob;
}

#[test]
fn parallel_paths_actually_exercised() {
    // Guard for mode 3 of the equivalence test: with threads > 1 and
    // shards > 1 the run must register engine waves *and* threaded
    // forwarder ingress runs, or the three-way comparison proves nothing.
    let mode = Mode {
        batching: true,
        threads: 4,
        shards: 4,
        horizon: false,
    };
    let mut sim = Sim::new(99);
    sim.set_batching(mode.batching);
    sim.set_threads(mode.threads);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig {
        nodes: 2,
        load_datasets: false,
        forwarder_shards: mode.shards,
        ..LidcClusterConfig::named("eq3")
    });
    let fwd_config = ForwarderConfig::default().with_shards(mode.shards);
    let mut clients = Vec::new();
    for c in 0..2 {
        let client_fwd = sim.spawn(
            format!("client-fwd-{c}"),
            Forwarder::new(format!("client-fwd-{c}"), fwd_config.clone()),
        );
        let (to_gw, _) = connect(
            &mut sim,
            client_fwd,
            cluster.gateway_fwd,
            &alloc,
            LinkProps::with_latency(SimDuration::from_millis(2)),
        );
        cluster.register_on(&mut sim, client_fwd, to_gw, 0);
        let sink = sim.spawn(format!("sink-{c}"), Sink { replies: vec![] });
        let sink_face = attach_app(&mut sim, client_fwd, sink, &alloc);
        clients.push((client_fwd, sink, sink_face));
    }
    for (c, (client_fwd, _, sink_face)) in clients.iter().enumerate() {
        send_burst(&mut sim, *client_fwd, *sink_face, (c as u32) * 10_000);
    }
    sim.run_until(sim.now() + SimDuration::from_millis(100));
    let m = sim.metrics_ref();
    assert!(m.counter("sim.parallel.waves") > 0, "engine ran parallel waves");
    assert!(
        m.counter("ndn.parallel.runs") > 0,
        "forwarders ran threaded shard phases"
    );
    for (_, sink, _) in &clients {
        assert!(!sim.actor::<Sink>(*sink).unwrap().replies.is_empty());
    }
}
