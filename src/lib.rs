//! # LIDC — Location Independent Data and Compute
//!
//! A from-scratch Rust reproduction of *"LIDC: A Location Independent
//! Multi-Cluster Computing Framework for Data Intensive Science"*
//! (Timilsina & Shannigrahi, SC-W 2024, DOI 10.1109/SCW63240.2024.00108).
//!
//! LIDC is a **decentralized control plane** that places computational jobs
//! on geographically dispersed Kubernetes clusters using *semantic names*
//! instead of a logically centralized controller. A science user expresses
//! a computation as a name such as
//!
//! ```text
//! /ndn/k8s/compute/mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN
//! ```
//!
//! and the network — not a central scheduler — carries the request to a
//! cluster that advertises the named service. The gateway on that cluster
//! parses the request, validates it with application-specific checks, spawns
//! a Kubernetes job with the requested resources, publishes the result into
//! a named data lake, and answers `/ndn/k8s/status/<job-id>` queries while
//! the job runs.
//!
//! ## Workspace layout
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`simcore`] | `lidc-simcore` | Deterministic discrete-event engine, virtual time, metrics, reports |
//! | [`ndn`] | `lidc-ndn` | Named Data Networking substrate: TLV wire format, Interest/Data, FIB/PIT/CS forwarder (NFD-equivalent) |
//! | [`k8s`] | `lidc-k8s` | Kubernetes control-plane simulator: pods, services, DNS, scheduler, jobs, deployments, PV/PVC |
//! | [`datalake`] | `lidc-datalake` | Named data lake: segmentation, repos, file server, catalog, loader |
//! | [`genomics`] | `lidc-genomics` | Synthetic genomics workload: sequence synthesis, mini-aligner, Table-I-calibrated cost model |
//! | [`core`] | `lidc-core` | **The paper's contribution**: naming grammar, gateway, validation, status protocol, multi-cluster overlay, placement, caching, prediction |
//! | [`baseline`] | `lidc-baseline` | Centralized & manual-configuration comparators |
//!
//! ## Quickstart
//!
//! Deploy one simulated LIDC cluster, submit a named BLAST computation and
//! watch the full Fig. 5 protocol run in virtual time:
//!
//! ```
//! use lidc::prelude::*;
//!
//! // A deterministic world: same seed ⇒ identical run.
//! let mut sim = Sim::new(42);
//! let alloc = FaceIdAlloc::new();
//!
//! // One LIDC cluster: gateway NFD + K8s control plane + named data lake.
//! let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge-a"));
//!
//! // A science user. It knows *names*, not cluster locations.
//! let client = ScienceClient::deploy(
//!     ClientConfig::default(), &mut sim, cluster.gateway_fwd, &alloc, "alice");
//!
//! // "/ndn/k8s/compute/mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN"
//! let request = ComputeRequest::new("BLAST", 2, 4)
//!     .with_param("srr", "SRR2931415")
//!     .with_param("ref", "HUMAN");
//! sim.send(client, Submit(request));
//! sim.run();
//!
//! let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
//! assert!(run.is_success());
//! assert_eq!(run.cluster.as_deref(), Some("edge-a"));
//! ```
//!
//! Multi-cluster placement needs no client changes — build an
//! [`core::overlay::Overlay`] and point the client at its router instead:
//!
//! ```
//! use lidc::prelude::*;
//!
//! let mut sim = Sim::new(7);
//! let overlay = Overlay::build(&mut sim, OverlayConfig {
//!     placement: PlacementPolicy::Nearest,
//!     clusters: vec![
//!         ClusterSpec::new("tennessee", SimDuration::from_millis(5)),
//!         ClusterSpec::new("chicago",   SimDuration::from_millis(24)),
//!         ClusterSpec::new("geneva",    SimDuration::from_millis(95)),
//!     ],
//!     ..Default::default()
//! });
//! let client = ScienceClient::deploy(
//!     ClientConfig::default(), &mut sim, overlay.router, &overlay.alloc.clone(), "alice");
//! sim.send(client, Submit(ComputeRequest::new("BLAST", 2, 4)
//!     .with_param("srr", "SRR2931415").with_param("ref", "HUMAN")));
//! sim.run();
//! let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
//! assert_eq!(run.cluster.as_deref(), Some("tennessee"), "nearest cluster won");
//! ```
//!
//! ## Reproducing the paper's evaluation
//!
//! Every table and figure has a harness binary in `crates/bench`
//! (`cargo run -p lidc-bench --release --bin table1`, `fig1_location_independence`,
//! …) plus criterion microbenches. See `DESIGN.md` §5 for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lidc_baseline as baseline;
pub use lidc_core as core;
pub use lidc_datalake as datalake;
pub use lidc_genomics as genomics;
pub use lidc_k8s as k8s;
pub use lidc_ndn as ndn;
pub use lidc_simcore as simcore;

/// One-stop convenience imports for examples, tests and downstream users.
pub mod prelude {
    pub use lidc_core::prelude::*;
    pub use lidc_datalake::prelude::*;
    pub use lidc_genomics::prelude::*;
    pub use lidc_k8s::prelude::*;
    pub use lidc_ndn::prelude::*;
    pub use lidc_simcore::prelude::*;
}
