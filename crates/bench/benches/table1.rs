//! Criterion bench for the Table I harness: one full end-to-end LIDC
//! workflow (client → NDN → gateway → K8s job → data lake) per iteration,
//! in virtual time. This measures how fast the *simulator* regenerates a
//! paper row, and guards the harness against event-count regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::naming::ComputeRequest;
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::engine::Sim;

fn run_row(seed: u64, srr: &str, cpu: u64, mem: u64) -> u64 {
    let mut sim = Sim::new(seed);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("bench"));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "client",
    );
    let request = ComputeRequest::new("BLAST", cpu, mem)
        .with_param("srr", srr)
        .with_param("ref", "HUMAN");
    sim.send(client, Submit(request));
    sim.run();
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success());
    sim.events_processed()
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_end_to_end");
    g.sample_size(10);
    for (label, srr, cpu, mem) in [
        ("rice_4gb_2cpu", "SRR2931415", 2u64, 4u64),
        ("kidney_4gb_2cpu", "SRR5139395", 2, 4),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_row(seed, srr, cpu, mem)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
