//! Criterion bench for the Table I harness: one full end-to-end LIDC
//! workflow (client → NDN → gateway → K8s job → data lake) per iteration,
//! in virtual time. This measures how fast the *simulator* regenerates a
//! paper row, and guards the harness against event-count regressions.
//!
//! It also surfaces the kernel calibration behind the cost model's scale:
//! `kernel_calibration` measures the packed extension kernel's per-base
//! throughput wall-clock and rebuilds the kernel-calibrated model,
//! asserting the exact Table-I rows are invariant under re-calibration.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::naming::ComputeRequest;
use lidc_genomics::costmodel::{CostModel, KernelCalibration};
use lidc_genomics::sra::{PAPER_RICE_BYTES, PAPER_RICE_SRR};
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::engine::Sim;

fn run_row(seed: u64, srr: &str, cpu: u64, mem: u64) -> u64 {
    let mut sim = Sim::new(seed);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("bench"));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "client",
    );
    let request = ComputeRequest::new("BLAST", cpu, mem)
        .with_param("srr", srr)
        .with_param("ref", "HUMAN");
    sim.send(client, Submit(request));
    sim.run();
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success());
    sim.events_processed()
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_end_to_end");
    g.sample_size(10);
    for (label, srr, cpu, mem) in [
        ("rice_4gb_2cpu", "SRR2931415", 2u64, 4u64),
        ("kidney_4gb_2cpu", "SRR5139395", 2, 4),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_row(seed, srr, cpu, mem)
            })
        });
    }
    g.finish();
}

/// Measure the packed kernel's throughput and rebuild the cost model from
/// it. One reading is printed so a bench run records the host's measured
/// bases/second next to the Table-I numbers it grounds.
fn bench_calibration(c: &mut Criterion) {
    let cal = KernelCalibration::measure(1 << 26);
    eprintln!(
        "kernel calibration: {:.3} Gbases/s ({:.3e} secs/byte implied)",
        cal.bases_per_sec / 1e9,
        cal.secs_per_byte()
    );
    // Re-calibration must leave the exact paper rows untouched.
    let model = CostModel::kernel_calibrated(&cal);
    let est = model.estimate("BLAST", Some(PAPER_RICE_SRR), PAPER_RICE_BYTES, 2, 4);
    assert_eq!(est.duration.to_string(), "8h9m50s", "Table I invariant under re-calibration");

    let mut g = c.benchmark_group("table1_end_to_end");
    g.sample_size(10);
    g.bench_function("kernel_calibration", |b| {
        b.iter(|| {
            let cal = KernelCalibration::measure(black_box(1 << 22));
            CostModel::kernel_calibrated(&cal);
            cal.bases_per_sec
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_calibration);
criterion_main!(benches);
