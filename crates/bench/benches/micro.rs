//! Microbenchmarks (wall-clock, criterion): the hot paths underneath every
//! LIDC request — name parsing, TLV codecs, forwarder tables, gateway
//! classification — plus the real (rayon-parallel) alignment kernel.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lidc_baseline::chaos::{run_lidc_chaos, ChaosConfig};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::naming::{classify, ComputeRequest, RequestKind};
use lidc_genomics::aligner::{
    align_parallel, align_sequential, extend_diagonal, extend_diagonal_scalar, Reference,
};
use lidc_genomics::pack::PackedSeq;
use lidc_genomics::sequence::sample_reads;
use lidc_ndn::face::FaceId;
use lidc_ndn::name::Name;
use lidc_ndn::packet::{Data, Interest};
use lidc_ndn::tables::cs::ContentStore;
use lidc_ndn::tables::fib::Fib;
use lidc_ndn::tables::pit::Pit;
use lidc_simcore::time::{SimDuration, SimTime};

fn bench_naming(c: &mut Criterion) {
    let mut g = c.benchmark_group("naming");
    let uri = "/ndn/k8s/compute/mem=4&cpu=2&app=BLAST&ref=HUMAN&srr=SRR2931415&tag=17";
    let name = Name::parse(uri).unwrap();
    let request = ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", "SRR2931415")
        .with_param("ref", "HUMAN")
        .with_param("tag", "17");

    g.bench_function("name_parse", |b| b.iter(|| Name::parse(black_box(uri)).unwrap()));
    g.bench_function("name_to_uri", |b| b.iter(|| black_box(&name).to_uri()));
    g.bench_function("compute_request_to_name", |b| {
        b.iter(|| black_box(&request).to_name())
    });
    g.bench_function("compute_request_from_name", |b| {
        b.iter(|| ComputeRequest::from_name(black_box(&name)).unwrap())
    });
    g.bench_function("classify", |b| {
        b.iter(|| match classify(black_box(&name)) {
            RequestKind::Compute(r) => r.cpu_cores,
            _ => unreachable!(),
        })
    });
    g.bench_function("http_url_parse", |b| {
        b.iter(|| {
            ComputeRequest::from_http_url(black_box(
                "https://lidc.example/compute?mem=4&cpu=2&app=BLAST&srr=SRR2931415",
            ))
            .unwrap()
        })
    });
    g.finish();
}

fn bench_tlv(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlv");
    let interest = Interest::new(
        Name::parse("/ndn/k8s/compute/mem=4&cpu=2&app=BLAST&srr=SRR2931415").unwrap(),
    )
    .with_nonce(0xDEAD_BEEF)
    .with_lifetime(SimDuration::from_secs(4));
    let interest_wire = interest.encode();
    let data = Data::new(
        Name::parse("/ndn/k8s/data/sra/SRR2931415").unwrap(),
        vec![7u8; 1024],
    )
    .with_freshness(SimDuration::from_secs(60))
    .sign_digest();
    let data_wire = data.encode();

    g.throughput(Throughput::Bytes(interest_wire.len() as u64));
    g.bench_function("interest_encode", |b| b.iter(|| black_box(&interest).encode()));
    g.bench_function("interest_decode", |b| {
        b.iter(|| Interest::decode(black_box(&interest_wire)).unwrap())
    });
    g.throughput(Throughput::Bytes(data_wire.len() as u64));
    g.bench_function("data_encode_sign", |b| {
        b.iter(|| {
            Data::new(
                Name::parse("/ndn/k8s/data/sra/SRR2931415").unwrap(),
                vec![7u8; 1024],
            )
            .sign_digest()
            .encode()
        })
    });
    g.bench_function("data_decode_verify", |b| {
        b.iter(|| {
            let d = Data::decode(black_box(&data_wire)).unwrap();
            assert!(d.verify(None));
            d
        })
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");

    // FIB longest-prefix match over a realistically mixed route table.
    for &routes in &[16usize, 256, 4096] {
        let mut fib = Fib::new();
        for i in 0..routes {
            let prefix = Name::parse(&format!("/ndn/k8s/status/cluster-{i}")).unwrap();
            fib.add_nexthop(prefix, FaceId::from_raw(i as u64), (i % 7) as u32);
        }
        fib.add_nexthop(Name::parse("/ndn/k8s/compute").unwrap(), FaceId::from_raw(9999), 0);
        let lookup = Name::parse(&format!(
            "/ndn/k8s/status/cluster-{}/job-42",
            routes / 2
        ))
        .unwrap();
        g.bench_with_input(BenchmarkId::new("fib_lpm", routes), &routes, |b, _| {
            b.iter(|| fib.lookup(black_box(&lookup)).unwrap().prefix.len())
        });
    }

    // PIT insert + consume cycle (scratch-buffer matching, as the
    // forwarder's Data path uses it).
    g.bench_function("pit_insert_match_take", |b| {
        let mut pit = Pit::new();
        let now = SimTime::ZERO;
        let mut n = 0u32;
        let mut keys = Vec::with_capacity(4);
        b.iter(|| {
            n = n.wrapping_add(1);
            let name = Name::parse(&format!("/svc/job{}", n % 1024)).unwrap();
            let interest = Interest::new(name.clone()).with_nonce(n);
            let (_, _) = pit.insert(&interest, FaceId::from_raw(1), now);
            pit.match_data_into(&name, &mut keys);
            for k in &keys {
                pit.take(k);
            }
            keys.len()
        })
    });

    // Content-store insert + hit at capacity (LRU churn).
    g.bench_function("cs_insert_lookup", |b| {
        let mut cs = ContentStore::new(1024);
        let now = SimTime::ZERO;
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            let name = Name::parse(&format!("/data/obj{}", n % 2048)).unwrap();
            let data = Data::new(name.clone(), vec![1u8; 64]).sign_digest();
            cs.insert(data, now);
            cs.lookup(&Interest::new(name), now).is_some()
        })
    });
    g.finish();
}

/// Content Store eviction and admission under the two-tier budget.
///
/// `cs_evict/count` churns a full store so every insert evicts one LRU
/// entry by *entry capacity*; `cs_evict/bytes` does the same with the
/// *byte budget* as the binding constraint (capacity far away). Both
/// measure the per-insert eviction cost the forwarder pays under sustained
/// Data arrival.
fn bench_cs_eviction(c: &mut Criterion) {
    use lidc_ndn::tables::cs::CsConfig;

    let now = SimTime::ZERO;
    let mut g = c.benchmark_group("cs_evict");

    g.bench_function("count", |b| {
        // 2048 names cycling through 1024 slots: steady-state count-driven
        // eviction on every insert. Packets are pre-built (unsigned — the
        // CS neither verifies nor hashes) so the loop measures the store.
        let packets: Vec<Data> = (0..2048)
            .map(|i| Data::new(Name::parse(&format!("/data/obj{i}")).unwrap(), vec![7u8; 64]))
            .collect();
        let mut cs = ContentStore::new(1024);
        let mut n = 0usize;
        b.iter(|| {
            n = n.wrapping_add(1);
            cs.insert(black_box(&packets[n % packets.len()]).clone(), now);
            cs.len()
        })
    });

    g.bench_function("bytes", |b| {
        // 4 KiB entries against a 1 MiB budget (~250 resident): every
        // insert evicts by bytes while the entry capacity never binds.
        let payload = bytes::Bytes::from(vec![7u8; 4096]);
        let packets: Vec<Data> = (0..512)
            .map(|i| {
                Data::new(
                    Name::parse(&format!("/data/blob{i}")).unwrap(),
                    payload.clone(),
                )
            })
            .collect();
        let mut cs = ContentStore::with_config(CsConfig {
            capacity: 1 << 20,
            budget_bytes: 1 << 20,
            ..CsConfig::default()
        });
        let mut n = 0usize;
        b.iter(|| {
            n = n.wrapping_add(1);
            cs.insert(black_box(&packets[n % packets.len()]).clone(), now);
            cs.bytes_used()
        })
    });
    g.finish();
}

/// Mixed-size churn: a bulk segment stream (16 × 1 MiB segments per step)
/// interleaved with probes of 64 hot small results, the workload the
/// paper's data-intensive transfers inflict on gateway-path caches. The
/// count-only store lets the stream flush the hot set (hit rate collapses
/// toward 0); the byte-budgeted, segment-aware store confines the stream
/// to the bulk class share and keeps serving the hot set. Each bench
/// asserts its regime's hit rate so a policy regression fails loudly
/// instead of skewing the timing comparison.
fn bench_cs_churn(c: &mut Criterion) {
    use lidc_ndn::tables::cs::{ContentStore, CsConfig};

    const HOT: usize = 64;
    const STEPS: usize = 512;
    const BULK_PER_STEP: usize = 16;

    let now = SimTime::ZERO;
    let segment = bytes::Bytes::from(vec![7u8; 1 << 20]);
    let bulk: Vec<Data> = (0..STEPS * BULK_PER_STEP)
        .map(|i| {
            Data::new(
                Name::parse(&format!("/lake/run{}/seg={}", i / 256, i % 256)).unwrap(),
                segment.clone(),
            )
        })
        .collect();
    let hot: Vec<Data> = (0..HOT)
        .map(|i| Data::new(Name::parse(&format!("/hot/result{i}")).unwrap(), vec![1u8; 512]))
        .collect();

    // One churn pass: returns the small-object hit rate over all probes.
    let run = |config: CsConfig| -> f64 {
        let mut cs = ContentStore::with_config(config);
        for (step, chunk) in bulk.chunks(BULK_PER_STEP).enumerate() {
            for seg in chunk {
                cs.insert(seg.clone(), now);
            }
            let probe = &hot[step % HOT];
            if cs.lookup(&Interest::new(probe.name.clone()), now).is_none() {
                cs.insert(probe.clone(), now);
            }
        }
        cs.hits() as f64 / STEPS as f64
    };

    let mut g = c.benchmark_group("cs_churn");
    g.sample_size(10);
    g.throughput(Throughput::Elements((STEPS * (BULK_PER_STEP + 1)) as u64));

    g.bench_function("mixed_count_only", |b| {
        b.iter(|| {
            let rate = run(CsConfig::count_only(1024));
            assert!(
                rate < 0.3,
                "count-only hit rate {rate:.2}: the collapse this bench documents vanished"
            );
            rate
        })
    });
    g.bench_function("mixed_budgeted", |b| {
        b.iter(|| {
            let rate = run(CsConfig {
                capacity: 1024,
                budget_bytes: 64 << 20,
                ..CsConfig::default()
            });
            assert!(
                rate > 0.7,
                "budgeted hit rate {rate:.2}: small objects flushed by bulk traffic"
            );
            rate
        })
    });
    g.finish();
}

/// Burst dispatch: N same-instant compute Interests traverse a client
/// forwarder, a WAN link, the gateway forwarder, and the gateway app, and
/// the submit-acks return. This is the paper's fan-in scenario (§V–§VII):
/// the 1024-point is what gateway dispatch batching and the wire-batch link
/// model exist for.
fn bench_burst(c: &mut Criterion) {
    use lidc_ndn::face::{FaceIdAlloc, LinkProps};
    use lidc_ndn::forwarder::{AppRx, Forwarder, ForwarderConfig, Rx};
    use lidc_ndn::net::{attach_app, connect};
    use lidc_ndn::packet::{ContentType, Packet};
    use lidc_simcore::engine::{Actor, Ctx, Msg, Sim};

    /// Counts successful acks only — a NACKed or nack-bodied reply must
    /// fail the bench's completeness assert, not masquerade as the (much
    /// cheaper) job-creation path and corrupt the pre/post comparison.
    struct Sink {
        acks: u64,
    }
    impl Actor for Sink {
        fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
            if let Ok(rx) = msg.downcast::<AppRx>() {
                if let Packet::Data(d) = &rx.packet {
                    if d.content_type != ContentType::Nack {
                        self.acks += 1;
                    }
                }
            }
        }
    }

    fn run_burst(n: usize) -> u64 {
        let mut sim = Sim::new(42);
        let alloc = FaceIdAlloc::new();
        let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig {
            nodes: 4,
            load_datasets: false,
            ..LidcClusterConfig::named("burst")
        });
        let client_fwd = sim.spawn(
            "client-fwd",
            Forwarder::new("client-fwd", ForwarderConfig::default()),
        );
        let (to_gw, _from_gw) = connect(
            &mut sim,
            client_fwd,
            cluster.gateway_fwd,
            &alloc,
            LinkProps::with_latency(SimDuration::from_millis(1)),
        );
        cluster.register_on(&mut sim, client_fwd, to_gw, 0);
        let sink = sim.spawn("sink", Sink { acks: 0 });
        let sink_face = attach_app(&mut sim, client_fwd, sink, &alloc);
        for i in 0..n {
            let name = Name::parse(&format!(
                "/ndn/k8s/compute/mem=1&cpu=1&app=BURST&size=1000000&tag={i}"
            ))
            .unwrap();
            let interest = Interest::new(name)
                .must_be_fresh(true)
                .with_nonce(i as u32 + 1);
            sim.send(client_fwd, Rx {
                face: sink_face,
                packet: Packet::Interest(interest),
            });
        }
        sim.run_until(sim.now() + SimDuration::from_millis(100));
        sim.actor::<Sink>(sink).unwrap().acks
    }

    let mut g = c.benchmark_group("burst");
    g.sample_size(10);
    for &n in &[1usize, 64, 1024] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("gateway_link_dispatch", n), &n, |b, &n| {
            b.iter(|| {
                let acks = run_burst(black_box(n));
                assert_eq!(acks, n as u64, "every Interest acked in-horizon");
                acks
            })
        });
    }
    g.finish();
}

/// Sharded parallel forwarder ingress: one forwarder cycles a 4096-packet
/// request/reply burst — N same-instant Interests (DNL probe + CS lookup +
/// PIT insert + forward), then the producer's N same-instant Data replies
/// (PIT match/take + CS insert + dead-nonce retirement + delivery). With
/// `shards1` the legacy serial ingress runs; with `shards4` the burst takes
/// the two-phase ingress, probing 4 name-hash shards on scoped threads
/// (see `lidc_ndn::forwarder` module docs). Identical packets, identical
/// replies — the configs differ only in intra-forwarder parallelism.
fn bench_parallel_ingress(c: &mut Criterion) {
    use lidc_ndn::face::FaceIdAlloc;
    use lidc_ndn::forwarder::{AppRx, Forwarder, ForwarderConfig, Rx};
    use lidc_ndn::net::attach_app;
    use lidc_ndn::packet::Packet;
    use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};

    const BURST: usize = 4096;
    /// One distinct name per packet (same-name Interests would aggregate in
    /// the PIT instead of exercising the full path); rounds reuse the same
    /// name set — Interests are MustBeFresh and replies carry no freshness,
    /// so each round's lookups evict the stale previous generation instead
    /// of accreting CS state.
    const NAMES: usize = BURST;

    /// Replies to every Interest with a small Data (pre-built payload).
    struct Producer {
        fwd: ActorId,
        payload: bytes::Bytes,
    }
    impl Actor for Producer {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if let Ok(rx) = msg.downcast::<AppRx>() {
                if let Packet::Interest(i) = rx.packet {
                    // Signed: forwarders verify Data before CS admission,
                    // so an unsigned reply would be dropped at the gate.
                    let data = Data::new(i.name, self.payload.clone()).sign_digest();
                    ctx.send(self.fwd, Rx {
                        face: rx.face,
                        packet: Packet::Data(data),
                    });
                }
            }
        }
    }
    /// Counts delivered Data.
    struct Sink {
        got: u64,
    }
    impl Actor for Sink {
        fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
            if let Ok(rx) = msg.downcast::<AppRx>() {
                if matches!(rx.packet, Packet::Data(_)) {
                    self.got += 1;
                }
            }
        }
    }

    let mut g = c.benchmark_group("burst");
    g.sample_size(10);
    for &shards in &[1usize, 4] {
        let mut sim = Sim::new(7);
        let alloc = FaceIdAlloc::new();
        let fwd = sim.spawn(
            "fwd",
            Forwarder::new("fwd", ForwarderConfig::default().with_shards(shards)),
        );
        let producer_probe = sim.spawn("producer-probe", Sink { got: 0 });
        let _ = producer_probe; // keep actor ids stable across edits
        let sink = sim.spawn("sink", Sink { got: 0 });
        let sink_face = attach_app(&mut sim, fwd, sink, &alloc);
        let producer = sim.spawn("producer", Producer {
            fwd,
            payload: bytes::Bytes::from(vec![7u8; 64]),
        });
        let prod_face = attach_app(&mut sim, fwd, producer, &alloc);
        sim.actor_mut::<Forwarder>(fwd)
            .unwrap()
            .register_prefix(Name::parse("/bench").unwrap(), prod_face, 0);
        // Pre-parse the name universe once: the bench measures the
        // forwarder, not Name::parse.
        let names: Vec<Name> = (0..NAMES)
            .map(|i| Name::parse(&format!("/bench/obj-{i}")).unwrap())
            .collect();
        let mut round = 0u64;
        g.throughput(Throughput::Elements(BURST as u64));
        g.bench_with_input(
            BenchmarkId::new("parallel_ingress", format!("shards{shards}")),
            &shards,
            |b, _| {
                b.iter(|| {
                    round += 1;
                    for i in 0..BURST {
                        let name = names[(i + (round as usize * BURST)) % NAMES].clone();
                        let interest = Interest::new(name)
                            .must_be_fresh(true)
                            .with_nonce((round as u32) << 13 | i as u32);
                        sim.send(fwd, Rx {
                            face: sink_face,
                            packet: Packet::Interest(interest),
                        });
                    }
                    sim.run();
                    let got = sim.actor::<Sink>(sink).unwrap().got;
                    assert_eq!(got, round * BURST as u64, "every Interest answered");
                    got
                })
            },
        );
    }
    g.finish();
}

/// Engine parallel same-instant dispatch: 8 Concurrent actors each receive
/// a contiguous 64-message run at one instant (one wave of 8 runs), every
/// message doing ~2µs of CPU work. `t1` executes the wave serially, `t4`
/// on 4 pool workers — bit-identical results, wall-clock measured.
fn bench_parallel_dispatch(c: &mut Criterion) {
    use lidc_simcore::engine::{Actor, Concurrency, Ctx, Msg, Sim};
    use lidc_simcore::rng::SplitMix64;

    const ACTORS: usize = 8;
    const MSGS: usize = 64;
    const SPIN: u64 = 400;

    struct Spinner {
        acc: u64,
    }
    struct Spin(u64);
    impl Actor for Spinner {
        fn concurrency(&self) -> Concurrency {
            Concurrency::Concurrent
        }
        fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
            let s = msg.downcast::<Spin>().unwrap();
            let mut mixer = SplitMix64::new(s.0);
            let mut x = 0u64;
            for _ in 0..SPIN {
                x ^= mixer.next_u64();
            }
            self.acc ^= x;
        }
    }

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for &threads in &[1usize, 4] {
        let mut sim = Sim::new(11);
        sim.set_threads(threads);
        let ids: Vec<_> = (0..ACTORS)
            .map(|i| sim.spawn(format!("spin-{i}"), Spinner { acc: 0 }))
            .collect();
        let mut round = 0u64;
        g.throughput(Throughput::Elements((ACTORS * MSGS) as u64));
        g.bench_with_input(
            BenchmarkId::new("parallel_dispatch", format!("t{threads}")),
            &threads,
            |b, _| {
                b.iter(|| {
                    round += 1;
                    for id in &ids {
                        for m in 0..MSGS {
                            sim.send(*id, Spin(round ^ (m as u64) << 32));
                        }
                    }
                    sim.run();
                    sim.events_processed()
                })
            },
        );
    }
    g.finish();
}

/// K8s control-loop pass cost against a large resident pod population:
/// `jobs_pass` is the Job controller pass reading the persistent
/// pods-by-job index (O(jobs)); `jobs_pass_swept` measures the per-pass
/// O(pods) grouping sweep it replaced (PR 2's implementation, kept inline
/// here as the measured baseline); `schedule_pass_idle` is a scheduler
/// pass with nothing pending (usage accounting now reads the persistent
/// per-node index instead of sweeping every pod).
fn bench_k8s_reconcile(c: &mut Criterion) {
    use lidc_k8s::apiserver::ApiServer;
    use lidc_k8s::cluster::reconcile_jobs;
    use lidc_k8s::job::Job;
    use lidc_k8s::meta::{ObjectKey, ObjectMeta};
    use lidc_k8s::node::Node;
    use lidc_k8s::pod::{ContainerSpec, Pod, PodPhase, PodSpec, WorkloadSpec};
    use lidc_k8s::resources::Resources;
    use lidc_k8s::scheduler::Scheduler;
    use std::collections::HashMap;

    const NODES: usize = 64;
    const JOBS: usize = 512;
    const PODS_PER_JOB: usize = 8;

    let now = SimTime::ZERO;
    let mut api = ApiServer::new("bench");
    for n in 0..NODES {
        api.add_node(
            Node::new(format!("node-{n:03}"), Resources::new(1 << 14, 1 << 14)),
            now,
        );
    }
    let template = PodSpec::single(ContainerSpec {
        name: "w".into(),
        image: "w".into(),
        requests: Resources::new(1, 1),
        workload: WorkloadSpec::Forever,
    });
    for j in 0..JOBS {
        let job_name = format!("job-{j:04}");
        api.create_job(Job::new(ObjectMeta::named(&job_name), template.clone(), 0), now)
            .unwrap();
        for p in 0..PODS_PER_JOB {
            let mut meta = ObjectMeta::named(format!("{job_name}-{p}"));
            meta.labels.insert("job".into(), job_name.clone());
            let uid = api.create_pod(Pod::new(meta, template.clone()), now).unwrap();
            let key = ObjectKey::named(format!("{job_name}-{p}"));
            api.bind_pod(&key, &format!("node-{:03}", (j * PODS_PER_JOB + p) % NODES), now);
            api.set_pod_phase(uid, PodPhase::Running);
        }
    }
    // Settle: the first pass flips every job to Running.
    reconcile_jobs(&mut api, now);

    let mut g = c.benchmark_group("k8s_reconcile");
    g.sample_size(10);
    g.throughput(Throughput::Elements(JOBS as u64));
    g.bench_function("jobs_pass", |b| {
        b.iter(|| black_box(reconcile_jobs(&mut api, now)))
    });
    g.bench_function("jobs_pass_swept", |b| {
        // The replaced implementation's total pass cost: PR 2 grouped every
        // resident pod by owning job per pass (the sweep below) and then
        // ran the controller body. The body's per-job reads are identical
        // in both implementations, so sweep + `reconcile_jobs` models the
        // old pass; `jobs_pass` above is the new one.
        b.iter(|| {
            let mut owned: HashMap<String, Vec<ObjectKey>> = HashMap::new();
            for (k, p) in api.pods.iter() {
                if let Some(job) = p.meta.labels.get("job") {
                    owned.entry(job.clone()).or_default().push(k.clone());
                }
            }
            black_box(owned.len());
            black_box(reconcile_jobs(&mut api, now))
        })
    });
    let scheduler = Scheduler::default();
    g.bench_function("schedule_pass_idle", |b| {
        b.iter(|| black_box(scheduler.schedule(&mut api, now).len()))
    });
    g.finish();
}

/// The alignment kernel. `align/seq` and `align/par` run the full
/// seed-and-extend pipeline over the same 2k-read workload the seed's
/// `aligner/{sequential,parallel}_2k_reads` benches used (ids renamed with
/// the packed-kernel PR; BENCH_micro.json carries the old numbers as the
/// baseline). `align/extend` is the extension-dominated kernel bench —
/// long reads on known diagonals, no seeding — and `align/extend_scalar`
/// is the scalar zip-filter kernel (the seed implementation's extension
/// loop over the 2-bit alphabet) on the identical workload: the pre/post
/// pair behind the ≥2× acceptance number.
fn bench_align(c: &mut Criterion) {
    let mut g = c.benchmark_group("align");
    g.sample_size(10);
    let reference = Reference::synthesize(200_000, 16, 0xFEED);
    let reads = sample_reads(&reference.seq, 2_000, 100, 0.01, 0xBEEF);
    g.throughput(Throughput::Elements(reads.len() as u64));
    g.bench_function("seq", |b| {
        b.iter(|| align_sequential(black_box(&reference), black_box(&reads)).len())
    });
    g.bench_function("par", |b| {
        b.iter(|| align_parallel(black_box(&reference), black_box(&reads)).len())
    });

    // Extension-dominated: 256 × 4096-base reads. Most score along their
    // true (fully in-bounds) diagonal; every 16th diagonal is shifted to
    // hang half off a reference boundary so the clipping branch is part
    // of the measured kernel. Both benches iterate the identical
    // (read, diagonal) list.
    const EXT_READ_LEN: usize = 4096;
    let ext_reads = sample_reads(&reference.seq, 256, EXT_READ_LEN, 0.01, 0xF00D);
    let diagonals: Vec<i64> = ext_reads
        .iter()
        .enumerate()
        .map(|(i, r)| match i % 32 {
            0 => -((EXT_READ_LEN / 2) as i64),
            16 => (reference.seq.len() - EXT_READ_LEN / 2) as i64,
            _ => r.true_pos as i64,
        })
        .collect();
    let packed_reads: Vec<(PackedSeq, i64)> = ext_reads
        .iter()
        .zip(&diagonals)
        .map(|(r, &d)| (PackedSeq::from_ascii(&r.seq), d))
        .collect();
    g.throughput(Throughput::Bytes((ext_reads.len() * EXT_READ_LEN) as u64));
    g.bench_function("extend", |b| {
        let packed_ref = reference.packed();
        b.iter(|| {
            packed_reads
                .iter()
                .map(|(read, diag)| extend_diagonal(read, black_box(packed_ref), *diag).matches)
                .sum::<u32>()
        })
    });
    g.bench_function("extend_scalar", |b| {
        b.iter(|| {
            ext_reads
                .iter()
                .zip(&diagonals)
                .map(|(r, &d)| {
                    extend_diagonal_scalar(&r.seq, black_box(&reference.seq), d).matches
                })
                .sum::<u32>()
        })
    });
    g.finish();
}

/// One end-to-end multi-cluster pass for the horizon-scheduler benchmark:
/// a 3-member WAN overlay (10/30/60 ms links), Nearest placement, private
/// per-gateway predictors (`shared_predictor: false`) so the members'
/// actor groups have real cross-cluster slack to exploit, and a spaced job
/// stream driven to completion. Returns the completed-job count (sanity
/// anchor: identical in every mode).
fn horizon_pass(horizon: bool, threads: usize) -> u32 {
    use lidc_core::client::{ClientConfig, ScienceClient, Submit};
    use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
    use lidc_core::placement::PlacementPolicy;
    use lidc_simcore::engine::Sim;

    let mut sim = Sim::new(7);
    sim.set_threads(threads);
    sim.set_horizon(horizon);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("west", SimDuration::from_millis(10)).with_nodes(2, 16, 64),
            ClusterSpec::new("east", SimDuration::from_millis(30)).with_nodes(2, 16, 64),
            ClusterSpec::new("south", SimDuration::from_millis(60)).with_nodes(2, 16, 64),
        ],
        load_datasets: false,
        shared_predictor: false,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig {
            fetch_results: false,
            ..Default::default()
        },
        &mut sim,
        overlay.router,
        &alloc,
        "bench",
    );
    for tag in 0..8u32 {
        let request = ComputeRequest::new("HZB", 2, 4).with_param("tag", tag.to_string());
        sim.send_after(SimDuration::from_secs(5).mul_f64(f64::from(tag)), client, Submit(request));
    }
    sim.run_for(SimDuration::from_mins(10));
    sim.actor::<ScienceClient>(client)
        .expect("client")
        .runs()
        .iter()
        .filter(|r| r.is_success())
        .count() as u32
}

/// Horizon scheduler vs the legacy global-clock loop on the 3-cluster
/// end-to-end pass: `multi_cluster` is the legacy reference, `t1`/`t4` run
/// the horizon scheduler at 1 and 4 worker threads. All three produce the
/// identical schedule; the delta is pure engine bookkeeping/parallelism.
fn bench_horizon(c: &mut Criterion) {
    let completed = horizon_pass(false, 1);
    assert_eq!(completed, horizon_pass(true, 1), "modes disagree");
    let mut g = c.benchmark_group("engine/horizon");
    g.sample_size(10);
    g.bench_function("multi_cluster", |b| b.iter(|| black_box(horizon_pass(false, 1))));
    g.bench_function("t1", |b| b.iter(|| black_box(horizon_pass(true, 1))));
    g.bench_function("t4", |b| b.iter(|| black_box(horizon_pass(true, 4))));
    g.finish();
}

/// End-to-end recovery cost: a full (small) chaos run — overlay deploy,
/// job stream, node crash + permanent cluster outage, rerouting, and
/// completion — measured as wall-clock per simulated recovery.
fn bench_chaos_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos");
    g.sample_size(10);
    g.bench_function("recovery_latency", |b| {
        b.iter(|| {
            let mut cfg = ChaosConfig::standard(42);
            cfg.jobs = 4;
            cfg.horizon = SimDuration::from_mins(10);
            black_box(run_lidc_chaos(&cfg).completed)
        })
    });
    // The verification-heavy path: a byzantine gateway forges every reply,
    // so every hop verifies and the broken packets ride the full
    // reject → strike → resubmit pipeline. Compared against
    // `recovery_latency` (honest traffic, verification still on) in the
    // trajectory, this prices the integrity machinery under attack.
    g.bench_function("verify_overhead", |b| {
        b.iter(|| {
            let mut cfg = ChaosConfig::byzantine(42);
            cfg.jobs = 4;
            cfg.horizon = SimDuration::from_mins(10);
            black_box(run_lidc_chaos(&cfg).completed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_naming,
    bench_tlv,
    bench_tables,
    bench_cs_eviction,
    bench_cs_churn,
    bench_burst,
    bench_parallel_ingress,
    bench_parallel_dispatch,
    bench_k8s_reconcile,
    bench_align,
    bench_horizon,
    bench_chaos_recovery
);
criterion_main!(benches);
