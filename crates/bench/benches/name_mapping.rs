//! Criterion bench for the Fig. 4 gateway mapping path: semantic compute
//! name → parsed request → named Kubernetes service endpoint, at several
//! service-table sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lidc_core::naming::{classify, ComputeRequest, RequestKind};
use lidc_k8s::cluster::{Cluster, ClusterConfig};
use lidc_k8s::deployment::Deployment;
use lidc_k8s::dns::resolve;
use lidc_k8s::node::Node;
use lidc_k8s::pod::{ContainerSpec, PodSpec, WorkloadSpec};
use lidc_k8s::resources::{Cpu, Memory, Resources};
use lidc_k8s::service::Service;
use lidc_ndn::name::Name;
use lidc_simcore::engine::Sim;

fn cluster_with_services(n_apps: usize) -> (Sim, Cluster) {
    let mut sim = Sim::new(4_000 + n_apps as u64);
    let k8s = Cluster::spawn(&mut sim, ClusterConfig::named("bench"));
    for i in 0..((n_apps as u32 / 8) + 1) {
        k8s.add_node(&mut sim, Node::new(format!("node-{i}"), Resources::new(16, 64)));
    }
    for i in 0..n_apps {
        let app = format!("app-{i}");
        k8s.create_service(&mut sim, Service::cluster_ip(&app, &app, 6363));
        let daemon = PodSpec::single(ContainerSpec {
            name: app.clone(),
            image: format!("lidc/{app}:latest"),
            requests: Resources {
                cpu: Cpu::millis(100),
                memory: Memory::mib(64),
            },
            workload: WorkloadSpec::Forever,
        });
        k8s.create_deployment(&mut sim, Deployment::new(&app, &app, 1, daemon));
    }
    sim.run();
    (sim, k8s)
}

fn bench_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("name_to_service");
    for &n_apps in &[4usize, 64] {
        let (_sim, k8s) = cluster_with_services(n_apps);
        let api = k8s.api.read();
        let names: Vec<Name> = (0..256)
            .map(|i| {
                ComputeRequest::new(format!("app-{}", i % n_apps), 2, 4)
                    .with_param("tag", i.to_string())
                    .to_name()
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("map_256_names", n_apps), &n_apps, |b, _| {
            b.iter(|| {
                let mut mapped = 0usize;
                for name in &names {
                    if let RequestKind::Compute(req) = classify(black_box(name)) {
                        let dns = format!("{}.ndnk8s.svc.cluster.local", req.app);
                        if resolve(&api, &dns).map(|r| !r.endpoints.is_empty()).unwrap_or(false) {
                            mapped += 1;
                        }
                    }
                }
                assert_eq!(mapped, 256);
                mapped
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
