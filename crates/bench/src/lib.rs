//! # lidc-bench — experiment harnesses for every table and figure
//!
//! One binary per paper artifact (DESIGN.md §5):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — computation performance |
//! | `fig1_location_independence` | Fig. 1 — location-independent placement |
//! | `fig2_transparent_dispatch` | Fig. 2 — name-driven data/compute dispatch |
//! | `fig3_nodeport_path` | Fig. 3 — NodePort → service → DNS path |
//! | `fig4_name_service_mapping` | Fig. 4 — NDN-name → K8s-service matching |
//! | `fig5_workflow_trace` | Fig. 5 — full workflow protocol trace |
//! | `ablate_*` | design-choice ablations (placement, caching, churn, …) |
//!
//! Each binary prints the paper-style markdown table and writes
//! `results/<id>.{md,json}`. Criterion microbenches live in `benches/`.
//!
//! This crate is also a small library: the harness helpers here (workload
//! generation, world construction, probes) are shared between the binaries
//! and the criterion benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::PathBuf;

use lidc_core::client::{ClientConfig, JobRun, ScienceClient, Submit};
use lidc_core::naming::ComputeRequest;
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_ndn::app::{Consumer, ConsumerEvent, RetxTimer};
use lidc_ndn::forwarder::AppRx;
use lidc_ndn::name::Name;
use lidc_ndn::net::attach_app;
use lidc_ndn::packet::{ContentType, Interest};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::report::Report;
use lidc_simcore::rng::DetRng;
use lidc_simcore::time::{SimDuration, SimTime};

/// Where experiment outputs are written (`results/` unless
/// `LIDC_RESULTS_DIR` overrides it).
pub fn results_dir() -> PathBuf {
    std::env::var_os("LIDC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Print a report to stdout and persist it under [`results_dir`].
pub fn finish(report: &Report) {
    println!("{}", report.to_markdown());
    let dir = results_dir();
    match report.write_to(&dir) {
        Ok(()) => println!("(written to {}/{}.{{md,json}})", dir.display(), report.id),
        Err(e) => eprintln!("warning: could not write results: {e}"),
    }
}

/// The paper's canonical BLAST request (§IV-A).
pub fn blast_request(srr: &str, cpu: u64, mem: u64) -> ComputeRequest {
    ComputeRequest::new("BLAST", cpu, mem)
        .with_param("srr", srr)
        .with_param("ref", "HUMAN")
}

/// A tagged BLAST request: identical computation, distinct name (so PIT
/// aggregation and result caching do not conflate independent jobs).
pub fn tagged_blast(srr: &str, cpu: u64, mem: u64, tag: u64) -> ComputeRequest {
    blast_request(srr, cpu, mem).with_param("tag", tag.to_string())
}

/// Draw a mixed science workload: mostly rice/kidney BLAST jobs with a few
/// COMPRESS jobs, varying resource requests — the "data intensive science"
/// request mix of the paper's introduction.
pub fn mixed_workload(rng: &mut DetRng, n: usize) -> Vec<ComputeRequest> {
    let mut out = Vec::with_capacity(n);
    for tag in 0..n {
        let r = rng.next_below(10);
        let req = match r {
            0..=5 => tagged_blast("SRR2931415", 2 + 2 * rng.next_below(2), 4, tag as u64),
            6..=7 => tagged_blast("SRR5139395", 2, 4 + 2 * rng.next_below(2), tag as u64),
            _ => ComputeRequest::new("COMPRESS", 1, 2)
                .with_param("input", "/sra/SRR2931415")
                .with_param("tag", tag.to_string()),
        };
        out.push(req);
    }
    out
}

/// The standard four-site WAN used by the multi-cluster experiments:
/// latencies roughly shaped like (campus, regional, national, continental).
pub fn four_site_specs() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::new("campus", SimDuration::from_millis(2)),
        ClusterSpec::new("regional", SimDuration::from_millis(12)),
        ClusterSpec::new("national", SimDuration::from_millis(35)),
        ClusterSpec::new("continental", SimDuration::from_millis(90)),
    ]
}

/// Build an overlay world plus one attached client.
pub fn overlay_world(
    seed: u64,
    placement: PlacementPolicy,
    specs: Vec<ClusterSpec>,
) -> (Sim, Overlay, ActorId) {
    let mut sim = Sim::new(seed);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement,
        clusters: specs,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "client",
    );
    (sim, overlay, client)
}

/// Submit a list of requests spaced `gap` apart, then run to completion.
pub fn submit_all(sim: &mut Sim, client: ActorId, requests: &[ComputeRequest], gap: SimDuration) {
    for (i, req) in requests.iter().enumerate() {
        sim.send_after(gap * i as u64, client, Submit(req.clone()));
    }
    sim.run();
}

/// Per-cluster job counts from a batch of runs.
pub fn jobs_per_cluster(runs: &[JobRun]) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    for run in runs {
        if let Some(c) = &run.cluster {
            *map.entry(c.clone()).or_insert(0) += 1;
        }
    }
    map
}

/// Mean of a sequence of durations (zero when empty).
pub fn mean_duration(durations: &[SimDuration]) -> SimDuration {
    if durations.is_empty() {
        return SimDuration::ZERO;
    }
    let total: f64 = durations.iter().map(|d| d.as_secs_f64()).sum();
    SimDuration::from_secs_f64(total / durations.len() as f64)
}

/// What a [`DataProbe`] learned about one data fetch.
#[derive(Debug, Clone)]
pub struct FetchRecord {
    /// The requested name.
    pub name: Name,
    /// When the Interest was expressed.
    pub asked_at: SimTime,
    /// When Data (object or manifest) arrived.
    pub answered_at: Option<SimTime>,
    /// Whether the fetch failed (application NACK, network NACK or timeout).
    pub nacked: bool,
    /// Content bytes received.
    pub bytes: usize,
}

impl FetchRecord {
    /// Ask → answer latency.
    pub fn latency(&self) -> Option<SimDuration> {
        self.answered_at.map(|t| t.since(self.asked_at))
    }
}

/// Ask a [`DataProbe`] to fetch a name.
#[derive(Debug)]
pub struct FetchData(pub Name);

/// A minimal data-retrieval client: one Interest per [`FetchData`] message,
/// recording latency and outcome. Used by the Fig. 2 dispatch experiment and
/// the data-path microbenches.
pub struct DataProbe {
    consumer: Option<Consumer>,
    pending: HashMap<Name, usize>,
    /// Completed fetch records.
    pub records: Vec<FetchRecord>,
}

impl DataProbe {
    /// Deploy a probe attached to `fwd`.
    pub fn deploy(
        sim: &mut Sim,
        fwd: ActorId,
        alloc: &lidc_ndn::face::FaceIdAlloc,
        label: impl Into<String>,
    ) -> ActorId {
        let probe = sim.spawn(label.into(), DataProbe {
            consumer: None,
            pending: HashMap::new(),
            records: Vec::new(),
        });
        let face = attach_app(sim, fwd, probe, alloc);
        sim.actor_mut::<DataProbe>(probe).unwrap().consumer = Some(Consumer::new(fwd, face));
        probe
    }

    fn resolve(&mut self, name: &Name, now: SimTime, nacked: bool, bytes: usize) {
        if let Some(idx) = self.pending.remove(name) {
            let rec = &mut self.records[idx];
            rec.answered_at = Some(now);
            rec.nacked = nacked;
            rec.bytes = bytes;
        }
    }
}

impl Actor for DataProbe {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<FetchData>() {
            Ok(f) => {
                let name = f.0;
                self.pending.insert(name.clone(), self.records.len());
                self.records.push(FetchRecord {
                    name: name.clone(),
                    asked_at: ctx.now(),
                    answered_at: None,
                    nacked: false,
                    bytes: 0,
                });
                let interest = Interest::new(name).with_lifetime(SimDuration::from_secs(4));
                self.consumer
                    .as_mut()
                    .expect("deployed")
                    .express(ctx, interest, 2);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                match self.consumer.as_mut().expect("deployed").on_app_rx(&rx) {
                    Some(ConsumerEvent::Data(d)) => {
                        let nacked = d.content_type == ContentType::Nack;
                        let name = d.name.clone();
                        self.resolve(&name, ctx.now(), nacked, d.content.len());
                    }
                    Some(ConsumerEvent::Nack(_, i)) | Some(ConsumerEvent::Timeout(i)) => {
                        if let Some(idx) = self.pending.remove(&i.name) {
                            self.records[idx].nacked = true;
                        }
                    }
                    None => {}
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(t) = msg.downcast::<RetxTimer>() {
            if let Some(ConsumerEvent::Timeout(i)) =
                self.consumer.as_mut().expect("deployed").on_timer(ctx, &t)
            {
                if let Some(idx) = self.pending.remove(&i.name) {
                    self.records[idx].nacked = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
    use lidc_ndn::face::FaceIdAlloc;

    #[test]
    fn mixed_workload_is_deterministic_and_mixed() {
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        let w1 = mixed_workload(&mut r1, 50);
        let w2 = mixed_workload(&mut r2, 50);
        assert_eq!(w1, w2);
        assert!(w1.iter().any(|r| r.app == "BLAST"));
        assert!(w1.iter().any(|r| r.app == "COMPRESS"));
        // All names distinct (tags).
        let mut names: Vec<String> = w1.iter().map(|r| r.to_name().to_uri()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn data_probe_fetches_lake_object() {
        let mut sim = Sim::new(1);
        let alloc = FaceIdAlloc::new();
        let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
        let probe = DataProbe::deploy(&mut sim, cluster.gateway_fwd, &alloc, "probe");
        let catalog =
            lidc_datalake::catalog::Catalog::object_name(&lidc_core::naming::data_prefix());
        sim.send(probe, FetchData(catalog));
        sim.run();
        let records = &sim.actor::<DataProbe>(probe).unwrap().records;
        assert_eq!(records.len(), 1);
        assert!(!records[0].nacked);
        assert!(records[0].bytes > 0);
        assert!(records[0].latency().unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn data_probe_nacked_for_missing_object() {
        let mut sim = Sim::new(2);
        let alloc = FaceIdAlloc::new();
        let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
        let probe = DataProbe::deploy(&mut sim, cluster.gateway_fwd, &alloc, "probe");
        sim.send(
            probe,
            FetchData(lidc_core::naming::data_prefix().child_str("no-such-thing")),
        );
        sim.run();
        let records = &sim.actor::<DataProbe>(probe).unwrap().records;
        assert!(records[0].nacked);
    }

    #[test]
    fn overlay_world_builder_places_jobs() {
        let (mut sim, _overlay, client) =
            overlay_world(3, PlacementPolicy::Nearest, four_site_specs());
        let reqs: Vec<ComputeRequest> =
            (0..3).map(|i| tagged_blast("SRR2931415", 2, 4, i)).collect();
        submit_all(&mut sim, client, &reqs, SimDuration::from_secs(1));
        let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
        assert_eq!(runs.len(), 3);
        let per = jobs_per_cluster(runs);
        assert_eq!(per.get("campus"), Some(&3), "{per:?}");
    }
}
