//! **Fig. 2 — Transparent data and compute placement based on names.**
//!
//! A mixed stream of `/ndn/k8s/compute/...` and `/ndn/k8s/data/...`
//! Interests enters one cluster through the same gateway NFD. The experiment
//! verifies the name-driven dispatch depicted in Fig. 2: compute names land
//! on the gateway application (and become Kubernetes jobs), data names are
//! forwarded to the data-lake NFD and served by the file server — neither
//! path is configured per request, only per *prefix*.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin fig2_transparent_dispatch
//! ```

use lidc_bench::{finish, mean_duration, tagged_blast, DataProbe, FetchData};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::naming::data_prefix;
use lidc_datalake::fileserver::FileServer;
use lidc_genomics::sra::{kidney_series, rice_series};
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const COMPUTE_REQUESTS: usize = 24;
const DATA_REQUESTS: usize = 60;

fn main() {
    let mut report = Report::new("fig2", "Fig. 2 — Transparent data & compute dispatch");
    report.note(format!(
        "{COMPUTE_REQUESTS} compute Interests + {DATA_REQUESTS} data Interests through one gateway; dispatch decided purely by name prefix."
    ));

    let mut sim = Sim::new(22);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge-a"));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "scientist",
    );
    let probe = DataProbe::deploy(&mut sim, cluster.gateway_fwd, &alloc, "data-user");

    // Interleave compute submissions and data fetches on one timeline.
    let gap = SimDuration::from_millis(200);
    for i in 0..COMPUTE_REQUESTS {
        let srr = if i % 3 == 0 { "SRR5139395" } else { "SRR2931415" };
        sim.send_after(gap * i as u64, client, Submit(tagged_blast(srr, 2, 4, i as u64)));
    }
    // Catalog + a spread of real dataset names from the two loaded series.
    // `lake_name()` is lake-relative; the loader published them under the
    // `/ndn/k8s/data` prefix.
    let mut data_names = vec![lidc_datalake::catalog::Catalog::object_name(&data_prefix())];
    for run in rice_series().into_iter().take(40) {
        data_names.push(data_prefix().join(&run.lake_name()));
    }
    for run in kidney_series().into_iter().take(19) {
        data_names.push(data_prefix().join(&run.lake_name()));
    }
    assert_eq!(data_names.len(), DATA_REQUESTS);
    for (i, name) in data_names.iter().enumerate() {
        sim.send_after(gap * i as u64 + gap / 2, probe, FetchData(name.clone()));
    }
    sim.run();

    // --- Verify the dispatch ---
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    let fetches = sim.actor::<DataProbe>(probe).unwrap().records.clone();
    let gw = cluster.gateway_stats(&sim);
    let fs = sim.actor::<FileServer>(cluster.fileserver).unwrap();
    let compute_ok = runs.iter().filter(|r| r.is_success()).count();
    let data_ok = fetches.iter().filter(|f| !f.nacked).count();
    assert_eq!(compute_ok, COMPUTE_REQUESTS);
    assert_eq!(data_ok, DATA_REQUESTS);
    assert_eq!(gw.jobs_created as usize, COMPUTE_REQUESTS);
    assert_eq!(gw.unknown_requests, 0);

    let mut t = Table::new(
        "Dispatch outcome by name prefix",
        &["prefix", "requests", "served by", "success", "mean latency"],
    );
    let ack_latencies: Vec<SimDuration> =
        runs.iter().filter_map(|r| r.ack_latency()).collect();
    let fetch_latencies: Vec<SimDuration> =
        fetches.iter().filter_map(|f| f.latency()).collect();
    t.push_row(vec![
        "/ndn/k8s/compute".to_owned(),
        COMPUTE_REQUESTS.to_string(),
        format!("gateway app ({} K8s jobs)", gw.jobs_created),
        format!("{compute_ok}/{COMPUTE_REQUESTS}"),
        format!("{} (ack)", mean_duration(&ack_latencies)),
    ]);
    t.push_row(vec![
        "/ndn/k8s/data".to_owned(),
        DATA_REQUESTS.to_string(),
        format!("data-lake file server ({} objects)", fs.served_objects),
        format!("{data_ok}/{DATA_REQUESTS}"),
        format!("{} (object/manifest)", mean_duration(&fetch_latencies)),
    ]);
    report.add_table(t);

    let mut cross = Table::new(
        "Isolation checks",
        &["check", "value", "holds"],
    );
    cross.push_row(vec![
        "no data Interest reached the gateway app".to_owned(),
        format!("gateway unknown_requests = {}", gw.unknown_requests),
        (gw.unknown_requests == 0).to_string(),
    ]);
    cross.push_row(vec![
        "no compute Interest reached the file server".to_owned(),
        format!("fileserver not_found = {}", fs.not_found),
        (fs.not_found == 0).to_string(),
    ]);
    cross.push_row(vec![
        "results published back into the same lake".to_owned(),
        format!("{} results", gw.results_published),
        (gw.results_published as usize == COMPUTE_REQUESTS).to_string(),
    ]);
    report.add_table(cross);

    finish(&report);
}
