//! Ad-hoc decomposition of the name-parse / interest-decode hot paths
//! (`cargo run --release -p lidc-bench --bin profile_name`). Times each
//! phase separately so perf work can aim at the real cost centers.

use std::hint::black_box;
use std::time::Instant;

use lidc_ndn::name::Name;
use lidc_ndn::packet::Interest;

fn time(label: &str, iters: u64, mut f: impl FnMut()) {
    // Warmup.
    for _ in 0..iters / 10 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<44} {per:>9.1} ns/iter");
}

fn main() {
    let uri = "/ndn/k8s/compute/mem=4&cpu=2&app=BLAST&ref=HUMAN&srr=SRR2931415&tag=17";
    let n = 200_000;

    time("Name::parse", n, || {
        black_box(Name::parse(black_box(uri)).unwrap());
    });

    time("split+scan only (no alloc)", n, || {
        let path = black_box(uri).trim_start_matches('/');
        let mut total = 0usize;
        for part in path.split('/') {
            for &b in part.as_bytes() {
                if b == b'%' {
                    total += 1;
                }
            }
            total += part.len();
        }
        black_box(total);
    });

    time("arena fill (BytesMut put_slice)", n, || {
        let path = black_box(uri).trim_start_matches('/');
        let mut arena = bytes::BytesMut::with_capacity(path.len());
        for part in path.split('/') {
            arena.put_slice(part.as_bytes());
        }
        black_box(arena.freeze());
    });

    let name = Name::parse(uri).unwrap();
    time("Name::clone", n, || {
        black_box(black_box(&name).clone());
    });

    time("4x component clone", n, || {
        let c = black_box(&name).get(3).unwrap();
        for _ in 0..4 {
            black_box(c.clone());
        }
    });

    time("Vec<NameComponent>(4) + Arc::new", n, || {
        let v: Vec<_> = black_box(&name).components().to_vec();
        black_box(std::sync::Arc::new(v));
    });

    let interest = Interest::new(name.clone())
        .with_nonce(0xDEAD_BEEF)
        .with_lifetime(lidc_simcore::time::SimDuration::from_secs(4));
    let wire = interest.encode();
    time("Interest::encode", n, || {
        black_box(black_box(&interest).encode());
    });
    time("Interest::decode", n, || {
        black_box(Interest::decode(black_box(&wire)).unwrap());
    });
    time("Interest::clone", n, || {
        black_box(black_box(&interest).clone());
    });

    // Decode sub-phases.
    use lidc_ndn::tlv::{types, TlvReader};
    time("decode: outer+elements scan only", n, || {
        let wire = black_box(&wire);
        let mut outer = TlvReader::new(wire);
        let body = outer.read_expected(types::INTEREST).unwrap();
        let mut r = TlvReader::new(body);
        let mut total = 0usize;
        while !r.is_empty() {
            let (_, v) = r.read_tlv().unwrap();
            total += v.len();
        }
        black_box(total);
    });

    time("decode: name only", n, || {
        let wire = black_box(&wire);
        let mut outer = TlvReader::new(wire);
        let body = outer.read_expected(types::INTEREST).unwrap();
        let mut r = TlvReader::new(body);
        let name_body = r.read_expected(types::NAME).unwrap();
        black_box(lidc_ndn::packet::decode_name_from(wire, name_body).unwrap());
    });

    time("Name::root + 4 pushes (inline comps)", n, || {
        let mut nm = Name::root();
        for c in name.components() {
            nm.push(black_box(c.clone()));
        }
        black_box(nm);
    });

    // Finer decode grain: locate the name TLV body inside the wire buffer.
    let name_body: &[u8] = {
        let mut outer = TlvReader::new(&wire);
        let body = outer.read_expected(types::INTEREST).unwrap();
        let mut r = TlvReader::new(body);
        r.read_expected(types::NAME).unwrap()
    };
    let wire2 = &wire;
    time("name body: read_tlv loop only", n, || {
        let mut r = TlvReader::new(black_box(name_body));
        let mut t = 0;
        while !r.is_empty() {
            let (ty, v) = r.read_tlv().unwrap();
            t += ty as usize + v.len();
        }
        black_box(t);
    });
    time("name body: decode_name_from", n, || {
        black_box(
            lidc_ndn::packet::decode_name_from(black_box(wire2), black_box(name_body))
                .unwrap(),
        );
    });
    time("clone all-inline 3-comp name", n, || {
        black_box(black_box(&name).prefix(3).clone());
    });
}
