//! **Ablation: PIT aggregation** — when many clients express the *same*
//! name at once, NDN's Pending Interest Table collapses them into a single
//! upstream request, and the one returning Data answers everybody. This is
//! the network-layer half of the paper's "identical requests" story (§VII);
//! the gateway result cache is the application-layer half.
//!
//! Twenty clients ask for the same data-lake object. In `concurrent` mode
//! they ask within one round-trip, so the PIT aggregates; in `staggered`
//! mode each waits for the previous answer to expire from flight (and the
//! router Content Store is disabled), so every request travels upstream.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin ablate_aggregation
//! ```

use lidc_bench::{finish, mean_duration, DataProbe, FetchData};
use lidc_core::naming::data_prefix;
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_datalake::fileserver::FileServer;
use lidc_simcore::engine::{ActorId, Sim};
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const CLIENTS: usize = 20;

fn run_mode(staggered: bool) -> (u64, u64, Vec<SimDuration>) {
    let mut sim = Sim::new(88);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![ClusterSpec::new("lake-site", SimDuration::from_millis(30))],
        // No network caching: isolate the PIT's contribution.
        router_cs_capacity: 0,
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let probes: Vec<ActorId> = (0..CLIENTS)
        .map(|i| DataProbe::deploy(&mut sim, overlay.router, &alloc, format!("probe-{i}")))
        .collect();
    // A multi-segment object: the file server answers with a manifest.
    let object = data_prefix().child_str("sra").child_str("SRR2931415");
    for (i, probe) in probes.iter().enumerate() {
        let delay = if staggered {
            // Beyond the Interest round-trip, so nothing is in flight and
            // (with CS off) nothing is cached: no aggregation possible.
            SimDuration::from_secs(10) * i as u64
        } else {
            // Within one round-trip (60 ms wire time): aggregation window.
            SimDuration::from_millis(1) * i as u64
        };
        sim.send_after(delay, *probe, FetchData(object.clone()));
    }
    sim.run();

    let mut latencies = Vec::new();
    for probe in &probes {
        let rec = &sim.actor::<DataProbe>(*probe).unwrap().records[0];
        assert!(!rec.nacked, "fetch failed");
        latencies.push(rec.latency().unwrap());
    }
    let served = sim
        .actor::<FileServer>(overlay.clusters[0].fileserver)
        .unwrap()
        .served_objects;
    // Interests that actually crossed the WAN from the router to the
    // cluster — the traffic PIT aggregation is supposed to collapse.
    // (Repeats that miss the PIT can still be absorbed by caches *inside*
    // the cluster, which is why `served` alone understates the difference.)
    let wan_face = overlay.face_of("lake-site").expect("member face");
    let wan_interests = sim
        .actor::<lidc_ndn::forwarder::Forwarder>(overlay.router)
        .unwrap()
        .face(wan_face)
        .unwrap()
        .counters
        .out_interests;
    (wan_interests, served, latencies)
}

fn main() {
    let mut report = Report::new("ablate_aggregation", "Ablation — PIT aggregation of identical Interests");
    report.note(format!(
        "{CLIENTS} clients fetch the same /ndn/k8s/data object through one WAN router; router Content Store disabled"
    ));

    let mut t = Table::new(
        "Aggregation effect",
        &[
            "mode",
            "clients",
            "Interests crossing the WAN",
            "served by file server",
            "mean latency",
        ],
    );
    for (mode, staggered) in [("concurrent", false), ("staggered", true)] {
        let (wan, served, latencies) = run_mode(staggered);
        t.push_row(vec![
            mode.to_owned(),
            CLIENTS.to_string(),
            wan.to_string(),
            served.to_string(),
            mean_duration(&latencies).to_string(),
        ]);
    }
    report.add_table(t);
    report.note("Expected shape: concurrent -> 1 WAN crossing (the router PIT answers the other 19); staggered -> 20 WAN crossings (the in-cluster Content Store still protects the file server itself).");

    finish(&report);
}
