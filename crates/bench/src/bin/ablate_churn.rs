//! **Ablation: infrastructure churn** — the paper's core comparison (§I):
//! LIDC's name-based overlay vs a logically centralized controller vs the
//! manual per-platform workflow, all facing the same schedule of cluster
//! churn (a site dies mid-run, a new site joins later).
//!
//! Schedule (identical for all three systems):
//!
//! * `t=0`      12 jobs submitted over 6 minutes (round-robin-able load);
//! * `t=10min`  site **b** fails without warning;
//! * `t=20min`  12 more jobs;
//! * horizon    110h of virtual time, then count what completed.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin ablate_churn
//! ```

use lidc_bench::{finish, tagged_blast};
use lidc_baseline::central::{CentralController, CentralPolicy};
use lidc_baseline::client::{CentralClient, SubmitCentral};
use lidc_baseline::manual::ManualWorkflow;
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_k8s::cluster::{Cluster, ClusterConfig};
use lidc_k8s::node::Node;
use lidc_k8s::resources::Resources;
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::forwarder::{Forwarder, ForwarderConfig};
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const WAVE: usize = 12;
const HORIZON_HOURS: u64 = 110;

fn wave_request(tag: u64) -> lidc_core::naming::ComputeRequest {
    let srr = if tag.is_multiple_of(3) { "SRR5139395" } else { "SRR2931415" };
    tagged_blast(srr, 2, 4, tag)
}

/// LIDC: three-member overlay, "b" fails at t+10min.
fn run_lidc() -> (usize, usize, u32) {
    let mut sim = Sim::new(3_001);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::RoundRobin,
        clusters: vec![
            ClusterSpec::new("a", SimDuration::from_millis(10)),
            ClusterSpec::new("b", SimDuration::from_millis(20)),
            ClusterSpec::new("c", SimDuration::from_millis(30)),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "client",
    );
    for tag in 0..WAVE as u64 {
        sim.send_after(SimDuration::from_secs(30) * tag, client, Submit(wave_request(tag)));
    }
    sim.run_for(SimDuration::from_mins(10));
    overlay.fail_cluster(&mut sim, "b");
    sim.run_for(SimDuration::from_mins(10));
    for tag in WAVE as u64..(2 * WAVE) as u64 {
        sim.send_after(SimDuration::from_secs(30) * (tag - WAVE as u64), client, Submit(wave_request(tag)));
    }
    sim.run_for(SimDuration::from_hours(HORIZON_HOURS));
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    let ok = runs.iter().filter(|r| r.is_success()).count();
    (ok, runs.len(), 0)
}

/// Centralized: the controller survives but member "b"'s control plane
/// dies; jobs already routed there hang in Pending forever.
fn run_central() -> (usize, usize, u32) {
    let mut sim = Sim::new(3_002);
    let alloc = FaceIdAlloc::new();
    let router = sim.spawn("router", Forwarder::new("router", ForwarderConfig::default()));
    let controller = CentralController::new(CentralPolicy::RoundRobin).deploy(&mut sim, router, &alloc);
    let mut members = Vec::new();
    for name in ["a", "b", "c"] {
        let c = Cluster::spawn(&mut sim, ClusterConfig::named(name));
        c.add_node(&mut sim, Node::new(format!("{name}-n0"), Resources::new(16, 64)));
        CentralController::add_member(&mut sim, controller, name, c.clone());
        members.push(c);
    }
    let client = CentralClient::deploy(ClientConfig::default(), &mut sim, router, &alloc, "client");
    for tag in 0..WAVE as u64 {
        sim.send_after(
            SimDuration::from_secs(30) * tag,
            client,
            SubmitCentral(wave_request(tag)),
        );
    }
    sim.run_for(SimDuration::from_mins(10));
    // Site b's control plane dies; the central controller keeps routing a
    // third of new jobs to it (it has no liveness signal in this design).
    sim.kill(members[1].actor);
    sim.run_for(SimDuration::from_mins(10));
    for tag in WAVE as u64..(2 * WAVE) as u64 {
        sim.send_after(
            SimDuration::from_secs(30) * (tag - WAVE as u64),
            client,
            SubmitCentral(wave_request(tag)),
        );
    }
    sim.run_for(SimDuration::from_hours(HORIZON_HOURS));
    let runs = sim.actor::<CentralClient>(client).unwrap().runs();
    let ok = runs.iter().filter(|r| r.is_success()).count();
    (ok, runs.len(), 1) // 1 operator intervention still owed (b never fixed)
}

/// Manual: three workflows pinned one-per-cluster; when "b" dies its owner
/// must re-tailor to another cluster (30 min of operator work) and manually
/// resubmit what was lost.
fn run_manual() -> (usize, usize, u32) {
    let mut sim = Sim::new(3_003);
    let alloc = FaceIdAlloc::new();
    let a = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("a"));
    let b = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("b"));
    let c = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("c"));
    let wf_a = ManualWorkflow::configure(&mut sim, &a, &alloc, ClientConfig::default(), "wf-a");
    let mut wf_b = ManualWorkflow::configure(&mut sim, &b, &alloc, ClientConfig::default(), "wf-b");
    let wf_c = ManualWorkflow::configure(&mut sim, &c, &alloc, ClientConfig::default(), "wf-c");

    // Wave 1: jobs hand-split across the three platforms (tag % 3).
    for tag in 0..WAVE as u64 {
        let wf = match tag % 3 {
            0 => &wf_a,
            1 => &wf_b,
            _ => &wf_c,
        };
        wf.submit(&mut sim, wave_request(tag));
    }
    sim.run_for(SimDuration::from_mins(10));
    // b dies; its in-flight jobs are lost.
    sim.kill(b.gateway_fwd);
    sim.run_for(SimDuration::from_mins(5));
    // The operator notices and re-tailors wf-b to cluster c.
    wf_b.reconfigure(&mut sim, &c);
    sim.run_for(SimDuration::from_mins(5));
    // Wave 2, same hand-split routing (wf-b now points at c).
    for tag in WAVE as u64..(2 * WAVE) as u64 {
        let wf = match tag % 3 {
            0 => &wf_a,
            1 => &wf_b,
            _ => &wf_c,
        };
        wf.submit(&mut sim, wave_request(tag));
    }
    sim.run_for(SimDuration::from_hours(HORIZON_HOURS));
    let ok = wf_a.successes(&sim) + wf_b.successes(&sim) + wf_c.successes(&sim);
    let total = wf_a.runs(&sim).len() + wf_b.runs(&sim).len() + wf_c.runs(&sim).len();
    (ok, total, 1)
}

fn main() {
    let mut report = Report::new("ablate_churn", "Ablation — cluster churn: LIDC vs centralized vs manual");
    report.note(format!(
        "{} jobs before + {} jobs after a mid-run cluster failure; horizon {HORIZON_HOURS}h",
        WAVE, WAVE
    ));

    let mut t = Table::new(
        "Churn tolerance",
        &["system", "jobs completed", "operator interventions", "failure mode"],
    );
    let (lidc_ok, lidc_total, lidc_ops) = run_lidc();
    let (central_ok, central_total, central_ops) = run_central();
    let (manual_ok, manual_total, manual_ops) = run_manual();
    t.push_row(vec![
        "LIDC (name-based overlay)".to_owned(),
        format!("{lidc_ok}/{lidc_total}"),
        lidc_ops.to_string(),
        "failed site's jobs transparently resubmitted by the client retry protocol".to_owned(),
    ]);
    t.push_row(vec![
        "centralized controller".to_owned(),
        format!("{central_ok}/{central_total}"),
        central_ops.to_string(),
        "controller keeps placing on the dead member; those jobs hang in Pending".to_owned(),
    ]);
    t.push_row(vec![
        "manual configuration".to_owned(),
        format!("{manual_ok}/{manual_total}"),
        manual_ops.to_string(),
        "stranded until an operator re-tailors the workflow; lost jobs stay lost".to_owned(),
    ]);
    report.add_table(t);
    report.note("Expected shape: LIDC completes everything with zero operator work; the baselines lose the failed site's share and/or require human intervention.");

    finish(&report);
}
