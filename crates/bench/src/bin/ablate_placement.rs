//! **Ablation: placement policy** — the paper's §VII "intelligence in the
//! network" direction. Same heterogeneous four-site overlay and the same
//! 40-job burst under every placement policy LIDC implements; compare
//! completion, balance, and latency.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin ablate_placement
//! ```

use lidc_bench::{finish, jobs_per_cluster, mean_duration, mixed_workload, submit_all};
use lidc_core::client::{ClientConfig, ScienceClient};
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::rng::DetRng;
use lidc_simcore::time::SimDuration;

const JOBS: usize = 40;

/// Heterogeneous sites: near-but-small through far-but-large.
fn sites() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::new("near-small", SimDuration::from_millis(3)).with_nodes(1, 8, 32),
        ClusterSpec::new("mid-medium", SimDuration::from_millis(25)).with_nodes(1, 16, 64),
        ClusterSpec::new("far-large", SimDuration::from_millis(80)).with_nodes(2, 16, 64),
        ClusterSpec::new("far-huge", SimDuration::from_millis(120)).with_nodes(4, 16, 64),
    ]
}

fn main() {
    let mut report = Report::new(
        "ablate_placement",
        "Ablation — placement policies on a heterogeneous overlay",
    );
    report.note(format!("{JOBS} mixed jobs (rice/kidney BLAST + COMPRESS), 30s apart, same seed per policy"));

    let mut t = Table::new(
        "Policy comparison",
        &[
            "policy",
            "succeeded",
            "makespan",
            "mean turnaround",
            "mean ack",
            "balance (jobs/cluster)",
        ],
    );

    for policy in [
        PlacementPolicy::Nearest,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::Adaptive,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::Learned,
    ] {
        let mut sim = Sim::new(7_777);
        let overlay = Overlay::build(&mut sim, OverlayConfig {
            placement: policy,
            clusters: sites(),
            ..Default::default()
        });
        let alloc = overlay.alloc.clone();
        let client = ScienceClient::deploy(
            ClientConfig::default(),
            &mut sim,
            overlay.router,
            &alloc,
            "client",
        );
        let workload = mixed_workload(&mut DetRng::new(42), JOBS);
        let t0 = sim.now();
        submit_all(&mut sim, client, &workload, SimDuration::from_secs(30));

        let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
        let ok = runs.iter().filter(|r| r.is_success()).count();
        let makespan = runs
            .iter()
            .filter_map(|r| r.completed_at)
            .max()
            .map(|t| t.since(t0))
            .unwrap_or(SimDuration::ZERO);
        let turnarounds: Vec<SimDuration> = runs.iter().filter_map(|r| r.turnaround()).collect();
        let acks: Vec<SimDuration> = runs.iter().filter_map(|r| r.ack_latency()).collect();
        let per = jobs_per_cluster(runs);
        let mut balance: Vec<String> = sites()
            .iter()
            .map(|s| format!("{}:{}", s.name, per.get(&s.name).copied().unwrap_or(0)))
            .collect();
        balance.sort();
        t.push_row(vec![
            policy.to_string(),
            format!("{ok}/{JOBS}"),
            makespan.to_string(),
            mean_duration(&turnarounds).to_string(),
            mean_duration(&acks).to_string(),
            balance.join(" "),
        ]);
    }
    report.add_table(t);
    report.note("Expected shape: nearest piles onto the small near site (long makespan under load); least-loaded/learned spread by capacity (short makespan); round-robin is blind to both.");
    report.note("learned = predicted runtime x (1 + advertised load); with location-invariant job runtimes its per-face ranking coincides with least-loaded, so identical placements are the correct outcome — the predictor's value shows up in completion-time estimates, not placement deltas, until clusters differ in speed.");

    finish(&report);
}
