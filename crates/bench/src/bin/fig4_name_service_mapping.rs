//! **Fig. 4 — Mapping NDN names to Kubernetes services.**
//!
//! The gateway's core trick: parse a semantic compute name, pick the named
//! in-cluster service endpoint that serves the application, and hand the
//! job over. This experiment measures that mapping in isolation —
//! correctness and throughput of `classify` → `ComputeRequest::from_name` →
//! Kubernetes DNS service resolution — as the number of named service
//! endpoints grows.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin fig4_name_service_mapping
//! ```

use std::time::Instant;

use lidc_bench::finish;
use lidc_core::naming::{classify, ComputeRequest, RequestKind};
use lidc_k8s::cluster::{Cluster, ClusterConfig};
use lidc_k8s::deployment::Deployment;
use lidc_k8s::dns::resolve;
use lidc_k8s::node::Node;
use lidc_k8s::pod::{ContainerSpec, PodSpec, WorkloadSpec};
use lidc_k8s::resources::{Cpu, Memory, Resources};
use lidc_k8s::service::Service;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};

const NAMES_PER_ROUND: usize = 10_000;

/// Deploy a cluster exposing `n_apps` named services, each backed by one
/// running pod.
fn cluster_with_services(sim: &mut Sim, n_apps: usize) -> Cluster {
    let k8s = Cluster::spawn(sim, ClusterConfig::named("svc-cluster"));
    for i in 0..((n_apps as u32 / 8) + 1) {
        k8s.add_node(
            sim,
            Node::new(format!("node-{i}"), Resources::new(16, 64)),
        );
    }
    for i in 0..n_apps {
        let app = format!("app-{i}");
        k8s.create_service(sim, Service::cluster_ip(&app, &app, 6363));
        let daemon = PodSpec::single(ContainerSpec {
            name: app.clone(),
            image: format!("lidc/{app}:latest"),
            requests: Resources {
                cpu: Cpu::millis(100),
                memory: Memory::mib(64),
            },
            workload: WorkloadSpec::Forever,
        });
        k8s.create_deployment(sim, Deployment::new(&app, &app, 1, daemon));
    }
    sim.run();
    k8s
}

fn main() {
    let mut report = Report::new("fig4", "Fig. 4 — NDN name → K8s service mapping");
    report.note(format!(
        "{NAMES_PER_ROUND} compute names per round, mapped to named service endpoints; wall-clock throughput of the gateway mapping path."
    ));

    let mut t = Table::new(
        "Mapping correctness and throughput vs. service count",
        &[
            "services",
            "names",
            "mapped correctly",
            "ns / mapping",
            "mappings / s",
        ],
    );

    for &n_apps in &[1usize, 4, 16, 64] {
        let mut sim = Sim::new(44 + n_apps as u64);
        let k8s = cluster_with_services(&mut sim, n_apps);
        let api = k8s.api.read();

        // Pre-generate the name stream (not timed).
        let names: Vec<_> = (0..NAMES_PER_ROUND)
            .map(|i| {
                ComputeRequest::new(format!("app-{}", i % n_apps), 2, 4)
                    .with_param("tag", i.to_string())
                    .to_name()
            })
            .collect();

        let start = Instant::now();
        let mut correct = 0usize;
        for (i, name) in names.iter().enumerate() {
            // The gateway path: classify the Interest, extract the app,
            // resolve the app's named service, check it has endpoints.
            let RequestKind::Compute(req) = classify(name) else {
                continue;
            };
            let dns_name = format!("{}.ndnk8s.svc.cluster.local", req.app);
            if let Ok(r) = resolve(&api, &dns_name) {
                if !r.endpoints.is_empty() && req.app == format!("app-{}", i % n_apps) {
                    correct += 1;
                }
            }
        }
        let elapsed = start.elapsed();
        assert_eq!(correct, NAMES_PER_ROUND, "all names must map");
        let ns_per = elapsed.as_nanos() as f64 / NAMES_PER_ROUND as f64;
        t.push_row(vec![
            n_apps.to_string(),
            NAMES_PER_ROUND.to_string(),
            format!("{correct}/{NAMES_PER_ROUND}"),
            format!("{ns_per:.0}"),
            format!("{:.0}", 1e9 / ns_per),
        ]);
    }
    report.add_table(t);

    // Unknown apps do not silently map.
    let mut sim = Sim::new(4_441);
    let k8s = cluster_with_services(&mut sim, 2);
    let api = k8s.api.read();
    let bogus = ComputeRequest::new("no-such-app", 2, 4).to_name();
    let RequestKind::Compute(req) = classify(&bogus) else {
        panic!("compute name must classify");
    };
    let err = resolve(&api, &format!("{}.ndnk8s.svc.cluster.local", req.app));
    let mut neg = Table::new("Negative mapping", &["name", "resolution"]);
    neg.push_row(vec![bogus.to_uri(), format!("{:?}", err.expect_err("NXDOMAIN"))]);
    report.add_table(neg);

    finish(&report);
}
