//! **Ablation: result caching** — the paper's §VII future-work item
//! ("implementing result caching … primarily when multiple clients issue
//! identical requests"), implemented and measured.
//!
//! Ten distinct BLAST computations, each requested by five different
//! clients over time. Three system variants:
//!
//! * `off`        — no caching anywhere: every request spawns a job;
//! * `gateway`    — gateway result cache on: repeats answered instantly;
//! * `gateway+cs` — result cache + cacheable acks, so repeats can be
//!   served by the *network* (router Content Store) without reaching any
//!   cluster.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin ablate_caching
//! ```

use lidc_bench::{blast_request, finish, mean_duration};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::naming::ComputeRequest;
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_simcore::engine::{ActorId, Sim};
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const DISTINCT: usize = 10;
const CLIENTS: usize = 5;

struct Variant {
    name: &'static str,
    cache_capacity: usize,
    ack_freshness: SimDuration,
    submit_must_be_fresh: bool,
}

fn distinct_requests() -> Vec<ComputeRequest> {
    (0..DISTINCT)
        .map(|i| {
            let srr = if i % 2 == 0 { "SRR2931415" } else { "SRR5139395" };
            blast_request(srr, 2, 4).with_param("series", i.to_string())
        })
        .collect()
}

fn main() {
    let mut report = Report::new("ablate_caching", "Ablation — result caching for identical requests");
    report.note(format!(
        "{DISTINCT} distinct computations x {CLIENTS} clients each (first client computes, the rest repeat)"
    ));

    let variants = [
        Variant {
            name: "off",
            cache_capacity: 0,
            ack_freshness: SimDuration::ZERO,
            submit_must_be_fresh: true,
        },
        Variant {
            name: "gateway",
            cache_capacity: 256,
            ack_freshness: SimDuration::ZERO,
            submit_must_be_fresh: true,
        },
        Variant {
            name: "gateway+cs",
            cache_capacity: 256,
            ack_freshness: SimDuration::from_secs(3600),
            submit_must_be_fresh: false,
        },
    ];

    let mut t = Table::new(
        "Cache variants",
        &[
            "variant",
            "requests",
            "jobs actually run",
            "gateway cache hits",
            "router CS hits",
            "mean repeat latency",
        ],
    );

    for v in &variants {
        let mut sim = Sim::new(99);
        let overlay = Overlay::build(&mut sim, OverlayConfig {
            placement: PlacementPolicy::Nearest,
            clusters: vec![ClusterSpec::new("solo", SimDuration::from_millis(40))
                .with_nodes(2, 16, 64)
                .with_cache(v.cache_capacity, v.ack_freshness)],
            ..Default::default()
        });
        let alloc = overlay.alloc.clone();
        let clients: Vec<ActorId> = (0..CLIENTS)
            .map(|i| {
                ScienceClient::deploy(
                    ClientConfig {
                        submit_must_be_fresh: v.submit_must_be_fresh,
                        ..Default::default()
                    },
                    &mut sim,
                    overlay.router,
                    &alloc,
                    format!("client-{i}"),
                )
            })
            .collect();

        // Client 0 issues every request first; the rest repeat it after the
        // computation has certainly completed (26h stagger per wave).
        for (c, client) in clients.iter().enumerate() {
            for (r, req) in distinct_requests().into_iter().enumerate() {
                let at = SimDuration::from_hours(26) * c as u64
                    + SimDuration::from_secs(60) * r as u64;
                sim.send_after(at, *client, Submit(req));
            }
        }
        sim.run();

        let mut all_ok = 0usize;
        let mut repeat_latencies: Vec<SimDuration> = Vec::new();
        for (c, client) in clients.iter().enumerate() {
            let runs = sim.actor::<ScienceClient>(*client).unwrap().runs();
            all_ok += runs.iter().filter(|r| r.is_success()).count();
            if c > 0 {
                repeat_latencies.extend(runs.iter().filter_map(|r| r.turnaround()));
            }
        }
        let total = DISTINCT * CLIENTS;
        assert_eq!(all_ok, total, "variant {} lost runs", v.name);
        let stats = overlay.clusters[0].gateway_stats(&sim);
        let cs_hits = sim.metrics_ref().counter("ndn.cs_hits");
        t.push_row(vec![
            v.name.to_owned(),
            total.to_string(),
            stats.jobs_created.to_string(),
            stats.cache_hits.to_string(),
            cs_hits.to_string(),
            mean_duration(&repeat_latencies).to_string(),
        ]);
        // Content-Store byte-budget counters for the fully-cached variant:
        // bytes used (peak), byte-evictions, and admission rejections.
        if v.name == "gateway+cs" {
            report.add_table(
                sim.metrics_ref()
                    .counters_table("Content Store budget (gateway+cs variant)", "ndn.cs_"),
            );
        }
    }
    report.add_table(t);
    report.note("Expected shape: off runs 50 jobs; gateway runs 10 and answers 40 from the result cache; gateway+cs additionally short-circuits some repeats in the network before they reach the cluster.");

    finish(&report);
}
