//! **Fig. 1 — Design of the compute framework with NDN**: the headline
//! claim that placement is *location independent* — any cluster with
//! sufficient resources can execute a named computation, clusters can join
//! and leave at will, and clients never hold cluster-specific
//! configuration.
//!
//! Three phases over one continuous workload from one unmodified client:
//!
//! 1. three WAN sites serve `/ndn/k8s/compute`;
//! 2. a fourth site joins the overlay mid-run and immediately takes work;
//! 3. a site is partitioned away mid-run — its queued jobs fail over.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin fig1_location_independence
//! ```

use lidc_bench::{finish, jobs_per_cluster, mean_duration, tagged_blast};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const JOBS_PER_PHASE: usize = 18;

fn main() {
    let mut report = Report::new("fig1", "Fig. 1 — Location-independent compute placement");
    report.note("least-loaded placement; one client, zero reconfigurations across all phases");

    let mut sim = Sim::new(11);
    let mut overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::LeastLoaded,
        clusters: vec![
            ClusterSpec::new("tennessee", SimDuration::from_millis(5)).with_nodes(1, 8, 32),
            ClusterSpec::new("chicago", SimDuration::from_millis(24)).with_nodes(1, 8, 32),
            ClusterSpec::new("geneva", SimDuration::from_millis(95)).with_nodes(1, 8, 32),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "scientist",
    );

    let mut table = Table::new(
        "Placement per phase (jobs per cluster)",
        &["phase", "members", "submitted", "succeeded", "placement", "mean ack latency"],
    );
    let gap = SimDuration::from_secs(20);
    let mut tag = 0u64;
    let mut seen = 0usize;

    let phase = |sim: &mut Sim,
                     overlay: &Overlay,
                     table: &mut Table,
                     label: &str,
                     tag: &mut u64,
                     seen: &mut usize| {
        for _ in 0..JOBS_PER_PHASE {
            let srr = if (*tag).is_multiple_of(3) { "SRR5139395" } else { "SRR2931415" };
            sim.send_after(gap * (*tag % JOBS_PER_PHASE as u64), client, Submit(tagged_blast(srr, 2, 4, *tag)));
            *tag += 1;
        }
        sim.run();
        let runs = &sim.actor::<ScienceClient>(client).unwrap().runs()[*seen..];
        let succeeded = runs.iter().filter(|r| r.is_success()).count();
        let per = jobs_per_cluster(runs);
        let mut placement: Vec<String> = per.iter().map(|(c, n)| format!("{c}:{n}")).collect();
        placement.sort();
        let acks: Vec<SimDuration> = runs.iter().filter_map(|r| r.ack_latency()).collect();
        table.push_row(vec![
            label.to_owned(),
            overlay.member_names().join(", "),
            JOBS_PER_PHASE.to_string(),
            format!("{succeeded}/{JOBS_PER_PHASE}"),
            placement.join(" "),
            mean_duration(&acks).to_string(),
        ]);
        *seen += JOBS_PER_PHASE;
    };

    // Phase 1: three founding members.
    phase(&mut sim, &overlay, &mut table, "1: steady state", &mut tag, &mut seen);

    // Phase 2: a fourth cluster joins mid-run — no client involvement.
    overlay.add_cluster(
        &mut sim,
        ClusterSpec::new("tokyo", SimDuration::from_millis(60)).with_nodes(1, 8, 32),
    );
    phase(&mut sim, &overlay, &mut table, "2: tokyo joins", &mut tag, &mut seen);

    // Phase 3: the nearest cluster is partitioned away mid-phase.
    for _ in 0..JOBS_PER_PHASE {
        let srr = if tag.is_multiple_of(3) { "SRR5139395" } else { "SRR2931415" };
        sim.send_after(gap * (tag % JOBS_PER_PHASE as u64), client, Submit(tagged_blast(srr, 2, 4, tag)));
        tag += 1;
    }
    sim.run_for(SimDuration::from_mins(3));
    overlay.fail_cluster(&mut sim, "tennessee");
    sim.run();
    {
        let runs = &sim.actor::<ScienceClient>(client).unwrap().runs()[seen..];
        let succeeded = runs.iter().filter(|r| r.is_success()).count();
        let resubmits: u32 = runs.iter().map(|r| r.resubmits).sum();
        let per = jobs_per_cluster(runs);
        let mut placement: Vec<String> = per.iter().map(|(c, n)| format!("{c}:{n}")).collect();
        placement.sort();
        let acks: Vec<SimDuration> = runs.iter().filter_map(|r| r.ack_latency()).collect();
        table.push_row(vec![
            format!("3: tennessee fails ({resubmits} failovers)"),
            overlay.member_names().join(", "),
            JOBS_PER_PHASE.to_string(),
            format!("{succeeded}/{JOBS_PER_PHASE}"),
            placement.join(" "),
            mean_duration(&acks).to_string(),
        ]);
    }
    report.add_table(table);

    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    let total_ok = runs.iter().filter(|r| r.is_success()).count();
    let mut summary = Table::new("Location-independence checks", &["claim", "holds"]);
    summary.push_row(vec![
        format!("all {} jobs completed somewhere ({total_ok} ok)", runs.len()),
        (total_ok == runs.len()).to_string(),
    ]);
    summary.push_row(vec![
        "client carried zero cluster-specific configuration".to_owned(),
        "true (requests name only the computation)".to_owned(),
    ]);
    summary.push_row(vec![
        "join and failure were invisible to the client".to_owned(),
        "true (same client actor across all phases)".to_owned(),
    ]);
    report.add_table(summary);

    finish(&report);
}
