//! **Ablation: WAN loss tolerance** — the paper's overlay rides NDN's
//! consumer-retransmission machinery; this measures what packet loss on
//! the client↔cluster WAN costs the workflow (success rate, ack latency,
//! retransmission volume) from 0% to 20% per-packet loss.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin ablate_loss
//! ```

use lidc_bench::{finish, mean_duration, tagged_blast};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_ndn::face::{FaceIdAlloc, LinkProps};
use lidc_ndn::forwarder::{Forwarder, ForwarderConfig};
use lidc_ndn::net::connect;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const JOBS: usize = 10;

fn run_with_loss(loss: f64) -> (usize, SimDuration, u64, u64) {
    let mut sim = Sim::new(12_000 + (loss * 1000.0) as u64);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
    let access = sim.spawn(
        "access-router",
        Forwarder::new("access-router", ForwarderConfig::default()),
    );
    let props = LinkProps {
        loss,
        ..LinkProps::with_latency(SimDuration::from_millis(25))
    };
    let (to_cluster, _) = connect(&mut sim, access, cluster.gateway_fwd, &alloc, props);
    cluster.register_on(&mut sim, access, to_cluster, 0);
    let client = ScienceClient::deploy(
        ClientConfig {
            retries: 5,
            max_status_failures: 20,
            ..Default::default()
        },
        &mut sim,
        access,
        &alloc,
        "client",
    );
    for tag in 0..JOBS as u64 {
        sim.send_after(
            SimDuration::from_secs(20) * tag,
            client,
            Submit(tagged_blast("SRR2931415", 2, 4, tag)),
        );
    }
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
    let ok = runs.iter().filter(|r| r.is_success()).count();
    let acks: Vec<SimDuration> = runs.iter().filter_map(|r| r.ack_latency()).collect();
    let drops = sim.metrics_ref().counter("ndn.link_loss_drops");
    let polls: u64 = runs.iter().map(|r| u64::from(r.polls)).sum();
    (ok, mean_duration(&acks), drops, polls)
}

fn main() {
    let mut report = Report::new("ablate_loss", "Ablation — WAN packet loss tolerance");
    report.note(format!(
        "{JOBS} BLAST jobs through a 25 ms lossy WAN; consumer retransmission with 5 retries"
    ));

    let mut t = Table::new(
        "Loss sweep",
        &[
            "loss rate",
            "jobs completed",
            "mean ack latency",
            "packets dropped",
            "status polls",
        ],
    );
    for &loss in &[0.0f64, 0.01, 0.05, 0.10, 0.20] {
        let (ok, ack, drops, polls) = run_with_loss(loss);
        t.push_row(vec![
            format!("{:.0}%", loss * 100.0),
            format!("{ok}/{JOBS}"),
            ack.to_string(),
            drops.to_string(),
            polls.to_string(),
        ]);
    }
    report.add_table(t);
    report.note("Expected shape: success stays full through heavy loss (retransmission absorbs drops); ack latency grows with loss as submissions need retries; poll counts inflate because status replies are also lost and re-asked.");

    finish(&report);
}
