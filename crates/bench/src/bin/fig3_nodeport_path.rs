//! **Fig. 3 — Mapping LIDC to Kubernetes components.**
//!
//! Reconstructs the connection path the figure draws: an external NDN
//! client reaches the cluster through the NodePort-exposed gateway-NFD
//! service; inside the cluster, the gateway reaches the data lake through
//! the `dl-nfd` ClusterIP service, resolved by Kubernetes DNS
//! (`dl-nfd.ndnk8s.svc.cluster.local`). The experiment inventories the K8s
//! objects backing each hop and measures the per-hop latency of one
//! end-to-end data retrieval.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin fig3_nodeport_path
//! ```

use lidc_bench::{finish, DataProbe, FetchData};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::naming::data_prefix;
use lidc_k8s::dns::resolve;
use lidc_k8s::service::ServiceType;
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};

fn main() {
    let mut report = Report::new("fig3", "Fig. 3 — LIDC → Kubernetes component mapping");

    let mut sim = Sim::new(33);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge-a"));
    sim.run(); // let deployments/replicasets/pods settle

    // --- Inventory the services the figure names ---
    {
        let api = cluster.k8s.api.read();
        let mut services = Table::new(
            "Kubernetes services (paper Fig. 3)",
            &["service", "type", "cluster DNS name", "cluster IP", "node port", "ready endpoints"],
        );
        let mut keys: Vec<_> = api.services.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let svc = &api.services[&key];
            let node_port = svc.spec.ports[0]
                .node_port
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            services.push_row(vec![
                key.name.clone(),
                format!("{:?}", svc.spec.service_type),
                svc.dns_name(),
                svc.status.cluster_ip.clone(),
                node_port,
                svc.status.endpoints.join(", "),
            ]);
            if svc.spec.service_type == ServiceType::NodePort {
                let p = svc.spec.ports[0].node_port.expect("allocated");
                assert!(
                    (30000..=32767).contains(&p),
                    "NodePort {p} outside the paper's 30000-32767 range"
                );
            }
        }
        report.add_table(services);

        // --- DNS resolution of the internal hop ---
        let mut dns = Table::new(
            "Kubernetes DNS resolution",
            &["query", "answer (cluster IP)", "endpoints"],
        );
        for name in ["gateway-nfd.ndnk8s.svc.cluster.local", "dl-nfd.ndnk8s.svc.cluster.local"] {
            let r = resolve(&api, name).expect("resolvable");
            assert!(!r.endpoints.is_empty(), "{name} has no ready endpoints");
            dns.push_row(vec![
                name.to_owned(),
                r.cluster_ip,
                r.endpoints.join(", "),
            ]);
        }
        report.add_table(dns);
    }

    // --- One external retrieval across the full path ---
    // client --(NodePort socket)--> gateway NFD --(cluster link)--> dl NFD
    //        --(app face)--> file server, and back.
    let probe = DataProbe::deploy(&mut sim, cluster.gateway_fwd, &alloc, "external-client");
    let catalog = lidc_datalake::catalog::Catalog::object_name(&data_prefix());
    sim.send(probe, FetchData(catalog.clone()));
    sim.run();
    let rec = &sim.actor::<DataProbe>(probe).unwrap().records[0];
    assert!(!rec.nacked, "retrieval failed");

    let mut path = Table::new(
        "External request path (one /ndn/k8s/data retrieval)",
        &["hop", "mechanism", "latency contribution"],
    );
    path.push_row(vec![
        "client → gateway NFD".to_owned(),
        "NodePort socket (gateway-nfd service)".to_owned(),
        "50.000us (app-face hop)".to_owned(),
    ]);
    path.push_row(vec![
        "gateway NFD → dl NFD".to_owned(),
        "FIB /ndn/k8s/data → dl-nfd.ndnk8s.svc.cluster.local".to_owned(),
        "200.000us (in-cluster link)".to_owned(),
    ]);
    path.push_row(vec![
        "dl NFD → file server".to_owned(),
        "app face (registered producer)".to_owned(),
        "50.000us".to_owned(),
    ]);
    path.push_row(vec![
        "total round trip".to_owned(),
        format!("fetched {} ({} bytes)", rec.name.to_uri(), rec.bytes),
        rec.latency().unwrap().to_string(),
    ]);
    report.add_table(path);

    finish(&report);
}
