//! **Ablation: single point of failure** — the paper's §VII security/
//! resilience argument: "by decentralizing control, LIDC reduces the risks
//! associated with a single point of failure and compromising a central
//! controller."
//!
//! Both systems run the same two waves of jobs on three healthy clusters;
//! between the waves, the *control plane* fails — for the centralized
//! system that is the controller actor, for LIDC there is no controller to
//! fail, so we fail one of the three clusters instead (a strictly harsher
//! event for LIDC).
//!
//! ```text
//! cargo run -p lidc-bench --release --bin ablate_central_failure
//! ```

use lidc_bench::{finish, tagged_blast};
use lidc_baseline::central::{CentralController, CentralPolicy};
use lidc_baseline::client::{CentralClient, SubmitCentral};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_k8s::cluster::{Cluster, ClusterConfig};
use lidc_k8s::node::Node;
use lidc_k8s::resources::Resources;
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::forwarder::{Forwarder, ForwarderConfig};
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const WAVE: usize = 9;

fn request(tag: u64) -> lidc_core::naming::ComputeRequest {
    tagged_blast("SRR2931415", 2, 4, tag)
}

fn main() {
    let mut report = Report::new(
        "ablate_central_failure",
        "Ablation — control-plane failure: LIDC vs centralized",
    );
    report.note(format!(
        "{WAVE} jobs, control-plane failure, {WAVE} more jobs; all worker clusters stay healthy"
    ));

    let mut t = Table::new(
        "Job success before / after the failure event",
        &["system", "failure event", "wave 1", "wave 2 (after failure)"],
    );

    // --- Centralized: kill the controller between waves ---
    {
        let mut sim = Sim::new(5_001);
        let alloc = FaceIdAlloc::new();
        let router = sim.spawn("router", Forwarder::new("router", ForwarderConfig::default()));
        let controller =
            CentralController::new(CentralPolicy::RoundRobin).deploy(&mut sim, router, &alloc);
        for name in ["a", "b", "c"] {
            let c = Cluster::spawn(&mut sim, ClusterConfig::named(name));
            c.add_node(&mut sim, Node::new(format!("{name}-n0"), Resources::new(16, 64)));
            CentralController::add_member(&mut sim, controller, name, c);
        }
        let client =
            CentralClient::deploy(ClientConfig::default(), &mut sim, router, &alloc, "client");
        for tag in 0..WAVE as u64 {
            sim.send_after(SimDuration::from_secs(10) * tag, client, SubmitCentral(request(tag)));
        }
        sim.run();
        let wave1 = sim.actor::<CentralClient>(client).unwrap().successes();
        // The single point of failure fails. Every cluster is still healthy.
        sim.kill(controller);
        for tag in WAVE as u64..(2 * WAVE) as u64 {
            sim.send_after(SimDuration::from_secs(10) * (tag - WAVE as u64), client, SubmitCentral(request(tag)));
        }
        sim.run();
        let wave2 = sim.actor::<CentralClient>(client).unwrap().successes() - wave1;
        t.push_row(vec![
            "centralized controller".to_owned(),
            "controller actor killed".to_owned(),
            format!("{wave1}/{WAVE}"),
            format!("{wave2}/{WAVE}"),
        ]);
    }

    // --- LIDC: no controller exists; fail a whole cluster instead ---
    {
        let mut sim = Sim::new(5_002);
        let overlay = Overlay::build(&mut sim, OverlayConfig {
            placement: PlacementPolicy::RoundRobin,
            clusters: vec![
                ClusterSpec::new("a", SimDuration::from_millis(10)),
                ClusterSpec::new("b", SimDuration::from_millis(20)),
                ClusterSpec::new("c", SimDuration::from_millis(30)),
            ],
            ..Default::default()
        });
        let alloc = overlay.alloc.clone();
        let client = ScienceClient::deploy(
            ClientConfig::default(),
            &mut sim,
            overlay.router,
            &alloc,
            "client",
        );
        for tag in 0..WAVE as u64 {
            sim.send_after(SimDuration::from_secs(10) * tag, client, Submit(request(tag)));
        }
        sim.run();
        let wave1 = sim.actor::<ScienceClient>(client).unwrap().successes();
        overlay.fail_cluster(&mut sim, "a");
        for tag in WAVE as u64..(2 * WAVE) as u64 {
            sim.send_after(SimDuration::from_secs(10) * (tag - WAVE as u64), client, Submit(request(tag)));
        }
        sim.run();
        let wave2 = sim.actor::<ScienceClient>(client).unwrap().successes() - wave1;
        t.push_row(vec![
            "LIDC (decentralized)".to_owned(),
            "an entire member cluster killed".to_owned(),
            format!("{wave1}/{WAVE}"),
            format!("{wave2}/{WAVE}"),
        ]);
    }

    report.add_table(t);
    report.note("Expected shape: after the controller dies, the centralized system places nothing even though every cluster is healthy; LIDC absorbs the (harsher) loss of a whole cluster and completes wave 2 in full.");

    finish(&report);
}
