//! **Fig. 5 — LIDC workflow details**: the full protocol sequence (submit →
//! job spawn → status polls → result publish → data retrieval) with a
//! per-step virtual-time latency breakdown, cross-checked against the
//! Kubernetes event log.
//!
//! ```text
//! cargo run -p lidc-bench --release --bin fig5_workflow_trace
//! ```

use lidc_bench::{blast_request, finish};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::bytesize::format_bytes;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};

fn main() {
    let mut report = Report::new("fig5", "Fig. 5 — Workflow protocol trace");

    let mut sim = Sim::new(55);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge-a"));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "scientist",
    );
    let request = blast_request("SRR2931415", 2, 4);
    report.note(format!("request: {}", request.to_name().to_uri()));
    sim.send(client, Submit(request));
    sim.run();

    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success(), "workflow failed: {:?}", run.error);
    let t0 = run.submitted_at;

    // --- The numbered protocol steps of the paper's Fig. 5 ---
    let mut steps = Table::new(
        "Protocol steps (client-observed)",
        &["step", "event", "virtual time", "since previous"],
    );
    let mut prev = t0;
    let mut push = |steps: &mut Table, n: &str, what: &str, at: lidc_simcore::time::SimTime| {
        steps.push_row(vec![
            n.to_owned(),
            what.to_owned(),
            format!("t+{}", at.since(t0)),
            format!("+{}", at.since(prev)),
        ]);
        prev = at;
    };
    push(&mut steps, "1", "NDN Interest submitted (compute name)", t0);
    push(&mut steps, "2", "gateway ack (job id assigned, K8s job spawned)", run.ack_at.unwrap());
    push(&mut steps, "3", "first Running status observed", run.first_running_at.unwrap());
    push(&mut steps, "4", "Completed status (result name + size)", run.completed_at.unwrap());
    push(&mut steps, "5", "result retrieved from data lake", run.fetched_at.unwrap());
    report.add_table(steps);

    // --- The same protocol from the Kubernetes side ---
    let api = cluster.k8s.api.read();
    let mut k8s = Table::new(
        "Kubernetes event log",
        &["virtual time", "event", "object"],
    );
    for e in api.events.iter() {
        k8s.push_row(vec![
            format!("t+{}", e.time.since(t0)),
            e.kind.clone(),
            e.object.clone(),
        ]);
    }
    report.add_table(k8s);

    // --- Aggregates ---
    let mut agg = Table::new("Workflow aggregates", &["metric", "value"]);
    agg.push_row(vec!["status polls".to_owned(), run.polls.to_string()]);
    agg.push_row(vec![
        "turnaround".to_owned(),
        run.turnaround().unwrap().to_string(),
    ]);
    agg.push_row(vec![
        "ack latency".to_owned(),
        run.ack_latency().unwrap().to_string(),
    ]);
    agg.push_row(vec![
        "result object".to_owned(),
        run.result_name.as_ref().unwrap().to_uri(),
    ]);
    agg.push_row(vec![
        "result size".to_owned(),
        format_bytes(run.result_size),
    ]);
    report.add_table(agg);

    finish(&report);
}
