//! **Table I — Computation Performance** (the paper's single results table).
//!
//! Reruns the four paper configurations through the full LIDC stack (client
//! → NDN → gateway → simulated Kubernetes job → data lake) and regenerates
//! the table, then extends it with the CPU/memory sweep the paper's §VI
//! discussion gestures at ("a variance of CPU and memory sizes is not
//! showing any significant changes in the run time").
//!
//! ```text
//! cargo run -p lidc-bench --release --bin table1
//! ```

use lidc_bench::{blast_request, finish};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_k8s::job::JobCondition;
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::bytesize::format_bytes;
use lidc_simcore::engine::Sim;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

/// Run one (srr, cpu, mem) configuration end to end; returns (k8s job run
/// time, output bytes).
fn run_config(seed: u64, srr: &str, cpu: u64, mem: u64) -> (SimDuration, u64) {
    let mut sim = Sim::new(seed);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("gcp-microk8s"));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "scientist",
    );
    sim.send(client, Submit(blast_request(srr, cpu, mem)));
    sim.run();
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success(), "{srr}/{cpu}cpu/{mem}GB failed: {:?}", run.error);
    let api = cluster.k8s.api.read();
    let job = api.jobs.values().next().expect("job exists");
    assert_eq!(job.status.condition, JobCondition::Completed);
    (job.run_time().expect("terminal job"), run.result_size)
}

fn main() {
    let mut report = Report::new("table1", "Table I — Computation Performance");
    report.note("Substrate: simulated MicroK8s cluster; run time from the Table-I-calibrated cost model in virtual time (DESIGN.md §2).");

    // --- The paper's four rows ---
    let paper_rows: [(&str, &str, u64, u64, &str, &str); 4] = [
        ("SRR2931415", "RICE", 4, 2, "8h9m50s", "941MB"),
        ("SRR2931415", "RICE", 4, 4, "8h7m10s", "941MB"),
        ("SRR5139395", "KIDNEY", 4, 2, "24h16m12s", "2.71GB"),
        ("SRR5139395", "KIDNEY", 6, 2, "24h2m47s", "2.71GB"),
    ];
    let mut t = Table::new(
        "Reproduced rows (paper values in parentheses)",
        &[
            "SRR ID",
            "Ref. Database",
            "Genome Type",
            "Memory (GB)",
            "CPU",
            "Run Time",
            "Output Size",
        ],
    );
    for (i, &(srr, genome, mem, cpu, paper_rt, paper_sz)) in paper_rows.iter().enumerate() {
        let (run_time, bytes) = run_config(100 + i as u64, srr, cpu, mem);
        t.push_row(vec![
            srr.to_owned(),
            "HUMAN".to_owned(),
            genome.to_owned(),
            mem.to_string(),
            cpu.to_string(),
            format!("{run_time} ({paper_rt})"),
            format!("{} ({paper_sz})", format_bytes(bytes)),
        ]);
    }
    report.add_table(t);

    // --- Shape checks the paper's discussion makes ---
    let (rice_2, _) = run_config(200, "SRR2931415", 2, 4);
    let (rice_4, _) = run_config(201, "SRR2931415", 4, 4);
    let (kidney_2, _) = run_config(202, "SRR5139395", 2, 4);
    let cpu_delta = (rice_2.as_secs_f64() - rice_4.as_secs_f64()).abs() / rice_2.as_secs_f64();
    let ratio = kidney_2.as_secs_f64() / rice_2.as_secs_f64();
    let mut shape = Table::new(
        "Shape checks",
        &["property", "paper", "measured", "holds"],
    );
    shape.push_row(vec![
        "runtime ~ config-insensitive (2→4 cpu)".to_owned(),
        "<1% delta".to_owned(),
        format!("{:.2}% delta", cpu_delta * 100.0),
        (cpu_delta < 0.01).to_string(),
    ]);
    shape.push_row(vec![
        "kidney / rice runtime ratio".to_owned(),
        "2.98x".to_owned(),
        format!("{ratio:.2}x"),
        ((2.5..3.5).contains(&ratio)).to_string(),
    ]);
    report.add_table(shape);

    // --- Extended sweep (the §VI "network could learn from this" data) ---
    let mut sweep = Table::new(
        "Extended configuration sweep (rice sample)",
        &["CPU", "Memory (GB)", "Run Time", "Output Size"],
    );
    let mut seed = 300;
    for &cpu in &[1u64, 2, 4, 8] {
        for &mem in &[2u64, 4, 8, 16] {
            let (run_time, bytes) = run_config(seed, "SRR2931415", cpu, mem);
            seed += 1;
            sweep.push_row(vec![
                cpu.to_string(),
                mem.to_string(),
                run_time.to_string(),
                format_bytes(bytes),
            ]);
        }
    }
    report.add_table(sweep);

    finish(&report);
}
