//! **Ablation: overlay scale** — placement latency and balance as the
//! compute overlay grows from 1 to 32 clusters (the paper's architecture
//! claims seamless addition of clusters; this measures what scale costs).
//!
//! ```text
//! cargo run -p lidc-bench --release --bin ablate_scaling
//! ```

use std::time::Instant;

use lidc_bench::{finish, jobs_per_cluster, tagged_blast};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_simcore::engine::Sim;
use lidc_simcore::metrics::Histogram;
use lidc_simcore::report::{Report, Table};
use lidc_simcore::time::SimDuration;

const JOBS: usize = 64;

fn main() {
    let mut report = Report::new("ablate_scaling", "Ablation — overlay scale 1 → 32 clusters");
    report.note(format!("{JOBS} jobs, round-robin placement, 5-95 ms WAN latencies"));

    let mut t = Table::new(
        "Scale sweep",
        &[
            "clusters",
            "succeeded",
            "ack p50",
            "ack p95",
            "busiest/idlest cluster",
            "sim events",
            "wall time",
        ],
    );

    for &n in &[1usize, 2, 4, 8, 16, 32] {
        let wall = Instant::now();
        let mut sim = Sim::new(6_000 + n as u64);
        let specs: Vec<ClusterSpec> = (0..n)
            .map(|i| {
                // Spread latencies deterministically across 5..95 ms.
                let ms = 5 + (i as u64 * 90) / (n.max(2) as u64 - 1).max(1);
                ClusterSpec::new(format!("site-{i:02}"), SimDuration::from_millis(ms))
            })
            .collect();
        let overlay = Overlay::build(&mut sim, OverlayConfig {
            placement: PlacementPolicy::RoundRobin,
            clusters: specs,
            ..Default::default()
        });
        let alloc = overlay.alloc.clone();
        let client = ScienceClient::deploy(
            ClientConfig::default(),
            &mut sim,
            overlay.router,
            &alloc,
            "client",
        );
        for tag in 0..JOBS as u64 {
            sim.send_after(
                SimDuration::from_secs(15) * tag,
                client,
                Submit(tagged_blast("SRR2931415", 2, 4, tag)),
            );
        }
        sim.run();
        let events = sim.events_processed();
        let runs = sim.actor::<ScienceClient>(client).unwrap().runs();
        let ok = runs.iter().filter(|r| r.is_success()).count();
        let mut acks = Histogram::new();
        for run in runs {
            if let Some(a) = run.ack_latency() {
                acks.record_duration(a);
            }
        }
        let per = jobs_per_cluster(runs);
        let busiest = per.values().max().copied().unwrap_or(0);
        let idlest = per.values().min().copied().unwrap_or(0);
        t.push_row(vec![
            n.to_string(),
            format!("{ok}/{JOBS}"),
            format!("{:.1}ms", acks.percentile(50.0) * 1e3),
            format!("{:.1}ms", acks.percentile(95.0) * 1e3),
            format!("{busiest}/{idlest}"),
            events.to_string(),
            format!("{:.0?}", wall.elapsed()),
        ]);
    }
    report.add_table(t);
    report.note("Expected shape: success stays full at every scale; ack latency tracks the latency of the cluster the strategy picks, not the overlay size; balance stays within one job under round-robin.");

    finish(&report);
}
