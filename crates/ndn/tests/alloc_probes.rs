//! Allocation accounting for the forwarder's hot probes.
//!
//! The PR's acceptance contract: FIB longest-prefix match, PIT data
//! matching (into a reused buffer), and Content Store lookups perform
//! **zero heap allocations per probe** on the borrowed-view path. A
//! counting global allocator measures exactly that. The counter also
//! covers the supporting cast: `Name::parse` of small names, wire decode
//! of small packets, `clone`/`prefix`/`parent`, and dead-nonce probes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper that counts allocation calls **per thread** —
/// the test harness runs tests concurrently, so a process-global counter
/// would charge one test's setup allocations to another test's measured
/// window (a real flake observed in CI).
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`: the allocator can be called during TLS teardown.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn current() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation calls made by this thread while running `f`.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = current();
    let out = f();
    (current() - before, out)
}

use lidc_ndn::face::FaceId;
use lidc_ndn::name::Name;
use lidc_ndn::packet::{Data, Interest};
use lidc_ndn::tables::cs::ContentStore;
use lidc_ndn::tables::fib::Fib;
use lidc_ndn::tables::pit::{Pit, PitKey};
use lidc_simcore::time::SimTime;

const PROBES: usize = 64;

#[test]
fn fib_lpm_probe_allocates_nothing() {
    let mut fib = Fib::new();
    for i in 0..512 {
        let prefix = Name::parse(&format!("/ndn/k8s/status/cluster-{i}")).unwrap();
        fib.add_nexthop(prefix, FaceId::from_raw(i), 1);
    }
    fib.add_nexthop(Name::parse("/ndn/k8s/compute").unwrap(), FaceId::from_raw(9999), 0);
    let hit = Name::parse("/ndn/k8s/status/cluster-256/job-42").unwrap();
    let miss = Name::parse("/web/service/other").unwrap();
    let (n, found) = allocs_during(|| {
        let mut found = 0usize;
        for _ in 0..PROBES {
            if fib.lookup(&hit).is_some() {
                found += 1;
            }
            if fib.lookup(&miss).is_some() {
                found += 1;
            }
            if fib.lookup_components(&hit.components()[..2]).is_some() {
                found += 1;
            }
        }
        found
    });
    assert_eq!(found, PROBES, "hit matched, miss and short prefix did not");
    assert_eq!(n, 0, "FIB longest-prefix match must not allocate");
}

#[test]
fn pit_data_match_into_reused_buffer_allocates_nothing() {
    let mut pit = Pit::new();
    let now = SimTime::ZERO;
    let exact = Interest::new(Name::parse("/svc/job-7").unwrap()).with_nonce(1);
    let prefix = Interest::new(Name::parse("/svc").unwrap())
        .can_be_prefix(true)
        .with_nonce(2);
    pit.insert(&exact, FaceId::from_raw(1), now);
    pit.insert(&prefix, FaceId::from_raw(2), now);
    let data_name = Name::parse("/svc/job-7").unwrap();
    let other_name = Name::parse("/elsewhere/x").unwrap();
    // Warm the scratch buffer once (its first growth is the one allowed
    // allocation, amortized across the forwarder's lifetime).
    let mut scratch: Vec<PitKey> = Vec::with_capacity(8);
    let (n, matched) = allocs_during(|| {
        let mut matched = 0usize;
        for _ in 0..PROBES {
            pit.match_data_into(&data_name, &mut scratch);
            matched += scratch.len();
            pit.match_data_into(&other_name, &mut scratch);
            matched += scratch.len();
        }
        matched
    });
    assert_eq!(matched, 2 * PROBES, "exact + prefix matched every round");
    assert_eq!(n, 0, "PIT data matching into a reused buffer must not allocate");
}

#[test]
fn cs_probes_allocate_nothing() {
    // Byte-budgeted, segment-aware config: probes must stay allocation-free
    // with the two-tier budget active, not just in count-only mode. Half
    // the entries land in the bulk class (cost ≥ threshold) so both LRU
    // lists participate in the probed relinks.
    let mut cs = ContentStore::with_config(lidc_ndn::tables::cs::CsConfig {
        capacity: 128,
        budget_bytes: 1 << 20,
        bulk_threshold: 64,
        protected_fraction: 0.25,
    });
    let now = SimTime::ZERO;
    for i in 0..64 {
        let name = Name::parse(&format!("/data/obj-{i}/seg=0")).unwrap();
        let size = if i % 2 == 0 { 32 } else { 128 };
        cs.insert(Data::new(name, vec![7u8; size]).sign_digest(), now);
    }
    let exact = Interest::new(Name::parse("/data/obj-17/seg=0").unwrap());
    let prefix_hit = Interest::new(Name::parse("/data/obj-17").unwrap()).can_be_prefix(true);
    let miss = Interest::new(Name::parse("/data/unknown").unwrap());
    let (n, hits) = allocs_during(|| {
        let mut hits = 0usize;
        for _ in 0..PROBES {
            // A hit clones the cached packet: refcount bumps only.
            hits += usize::from(cs.lookup(&exact, now).is_some());
            hits += usize::from(cs.lookup(&prefix_hit, now).is_some());
            hits += usize::from(cs.lookup(&miss, now).is_some());
        }
        hits
    });
    assert_eq!(hits, 2 * PROBES, "exact and prefix hits, miss misses");
    assert_eq!(n, 0, "CS lookups (incl. LRU maintenance) must not allocate");
}

#[test]
fn small_name_plane_operations_allocate_nothing() {
    // Parse of a typical LIDC name: all components fit inline.
    let (n, name) = allocs_during(|| Name::parse("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST").unwrap());
    assert_eq!(n, 0, "small-name parse must not allocate");

    // Wire decode of a small Interest (name + nonce): zero-copy + inline.
    let wire = Interest::new(name.clone()).with_nonce(7).encode();
    let (n, decoded) = allocs_during(|| Interest::decode(&wire).unwrap());
    assert_eq!(n, 0, "small Interest decode must not allocate");
    assert_eq!(decoded.name, name);

    // Request-path name manipulation.
    let (n, _keep) = allocs_during(|| {
        let c = name.clone();
        let p = c.prefix(2);
        let q = p.parent();
        (c, p, q)
    });
    assert_eq!(n, 0, "clone/prefix/parent must not allocate");
}

#[test]
fn interest_lifecycle_steady_state_allocations_are_bounded() {
    // End-to-end sanity: a full insert+match+take PIT cycle allocates only
    // for the entry state it must keep (records vecs, map growth), not for
    // probing. After warm-up with a stable name set, the match+take path
    // allocation count per cycle stays small and constant.
    let mut pit = Pit::new();
    let now = SimTime::ZERO;
    let names: Vec<Name> = (0..16)
        .map(|i| Name::parse(&format!("/svc/job-{i}")).unwrap())
        .collect();
    let mut scratch: Vec<PitKey> = Vec::with_capacity(8);
    // Warm up.
    for (i, name) in names.iter().enumerate() {
        let interest = Interest::new(name.clone()).with_nonce(i as u32);
        pit.insert(&interest, FaceId::from_raw(1), now);
        pit.match_data_into(name, &mut scratch);
        for k in scratch.clone() {
            pit.take(&k);
        }
    }
    // Steady state: probe-only work is allocation-free.
    let (n, _) = allocs_during(|| {
        for name in &names {
            pit.match_data_into(name, &mut scratch);
            assert!(scratch.is_empty(), "all entries were taken");
        }
    });
    assert_eq!(n, 0, "steady-state PIT probing must not allocate");
}

#[test]
fn sharded_pit_probes_allocate_nothing() {
    // The sharded configuration must keep the 0-alloc probe guarantee per
    // shard: routing hashes a borrowed name view and the per-shard probes
    // are the proven allocation-free single-shard ones.
    use lidc_ndn::tables::shard::ShardedPit;
    let mut pit = ShardedPit::new(4);
    let now = SimTime::ZERO;
    for i in 0..64 {
        let interest =
            Interest::new(Name::parse(&format!("/svc/job-{i}")).unwrap()).with_nonce(i);
        pit.insert(&interest, FaceId::from_raw(1), now);
    }
    let hit = Name::parse("/svc/job-17").unwrap();
    let miss = Name::parse("/elsewhere/x").unwrap();
    let mut scratch: Vec<PitKey> = Vec::with_capacity(8);
    let (n, matched) = allocs_during(|| {
        let mut matched = 0usize;
        for _ in 0..PROBES {
            pit.match_data_into(&hit, &mut scratch);
            matched += scratch.len();
            pit.match_data_into(&miss, &mut scratch);
            matched += scratch.len();
        }
        matched
    });
    assert_eq!(matched, PROBES, "exact hit matched every round, miss never");
    assert_eq!(n, 0, "sharded PIT data matching must not allocate");
}

#[test]
fn sharded_cs_exact_probes_allocate_nothing() {
    use lidc_ndn::tables::cs::CsConfig;
    use lidc_ndn::tables::shard::ShardedCs;
    // Byte-budgeted, segment-aware, 4-shard config: exact probes route by
    // name hash and must stay allocation-free with the two-tier budget
    // active in every shard.
    let mut cs = ShardedCs::with_config(
        CsConfig {
            capacity: 128,
            budget_bytes: 1 << 20,
            bulk_threshold: 64,
            protected_fraction: 0.25,
        },
        4,
    );
    let now = SimTime::ZERO;
    for i in 0..64 {
        let name = Name::parse(&format!("/data/obj-{i}/seg=0")).unwrap();
        let size = if i % 2 == 0 { 32 } else { 128 };
        cs.insert(Data::new(name, vec![7u8; size]).sign_digest(), now);
    }
    let exact = Interest::new(Name::parse("/data/obj-17/seg=0").unwrap());
    let miss = Interest::new(Name::parse("/data/unknown").unwrap());
    let (n, hits) = allocs_during(|| {
        let mut hits = 0usize;
        for _ in 0..PROBES {
            hits += usize::from(cs.lookup(&exact, now).is_some());
            hits += usize::from(cs.lookup(&miss, now).is_some());
        }
        hits
    });
    assert_eq!(hits, PROBES, "exact hit every round, miss never");
    assert_eq!(n, 0, "sharded CS exact lookups must not allocate");
}
