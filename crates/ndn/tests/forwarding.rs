//! End-to-end forwarding tests: consumer ↔ forwarder mesh ↔ producer.
//!
//! These exercise the full NFD pipeline across multi-hop topologies: Data
//! retrieval, Content-Store caching, PIT aggregation, NACK propagation,
//! loss recovery via consumer retransmission, and anycast to the nearest
//! producer — the network-layer behaviours LIDC builds on.

use lidc_ndn::app::{Consumer, ConsumerEvent, Producer, RetxTimer};
use lidc_ndn::face::{FaceIdAlloc, LinkProps};
use lidc_ndn::forwarder::{AppRx, Forwarder, ForwarderConfig};
use lidc_ndn::name::Name;
use lidc_ndn::net::{attach_app, connect};
use lidc_ndn::packet::{Data, Interest, Packet};
use lidc_ndn::strategy::Multicast;
use lidc_ndn::name;
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::{SimDuration, SimTime};

/// A producer actor serving a prefix with fixed content and a per-reply tag.
struct ProducerApp {
    producer: Option<Producer>,
    prefix: Name,
    tag: &'static str,
    served: u64,
    /// Respond after this delay (simulated application processing).
    delay: SimDuration,
}

struct DelayedReply(Data);

impl Actor for ProducerApp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                if let Packet::Interest(i) = rx.packet {
                    assert!(
                        self.prefix.is_prefix_of(&i.name),
                        "producer got interest outside its prefix"
                    );
                    self.served += 1;
                    let data = Data::new(i.name.clone(), self.tag.as_bytes())
                        .with_freshness(SimDuration::from_secs(60))
                        .sign_digest();
                    if self.delay.is_zero() {
                        self.producer.unwrap().reply(ctx, data);
                    } else {
                        ctx.schedule_self(self.delay, DelayedReply(data));
                    }
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = msg.downcast::<DelayedReply>() {
            self.producer.unwrap().reply(ctx, d.0);
        }
    }
}

/// A consumer actor that records every resolution event.
struct ConsumerApp {
    consumer: Option<Consumer>,
    events: Vec<(SimTime, String)>,
}

struct Fetch(Interest, u32);

impl Actor for ConsumerApp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<Fetch>() {
            Ok(f) => {
                self.consumer.as_mut().unwrap().express(ctx, f.0, f.1);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                if let Some(ev) = self.consumer.as_mut().unwrap().on_app_rx(&rx) {
                    self.events.push((ctx.now(), describe(&ev)));
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(t) = msg.downcast::<RetxTimer>() {
            if let Some(ev) = self.consumer.as_mut().unwrap().on_timer(ctx, &t) {
                self.events.push((ctx.now(), describe(&ev)));
            }
        }
    }
}

fn describe(ev: &ConsumerEvent) -> String {
    match ev {
        ConsumerEvent::Data(d) => format!(
            "data:{}:{}",
            d.name,
            String::from_utf8_lossy(&d.content)
        ),
        ConsumerEvent::Nack(reason, i) => format!("nack:{reason:?}:{}", i.name),
        ConsumerEvent::Timeout(i) => format!("timeout:{}", i.name),
    }
}

struct World {
    sim: Sim,
    alloc: FaceIdAlloc,
}

impl World {
    fn new(seed: u64) -> Self {
        World {
            sim: Sim::new(seed),
            alloc: FaceIdAlloc::new(),
        }
    }

    fn forwarder(&mut self, label: &str) -> ActorId {
        // Zero app-face latency keeps the timing arithmetic in these tests
        // exact: all delay comes from the links under test.
        let config = ForwarderConfig {
            app_face_latency: SimDuration::ZERO,
            ..Default::default()
        };
        self.sim.spawn(label, Forwarder::new(label, config))
    }

    fn producer(
        &mut self,
        fwd: ActorId,
        prefix: &str,
        tag: &'static str,
        delay: SimDuration,
    ) -> ActorId {
        let app = self.sim.spawn(
            format!("producer-{tag}"),
            ProducerApp {
                producer: None,
                prefix: Name::parse(prefix).unwrap(),
                tag,
                served: 0,
                delay,
            },
        );
        let face = attach_app(&mut self.sim, fwd, app, &self.alloc);
        self.sim.actor_mut::<ProducerApp>(app).unwrap().producer =
            Some(Producer::new(fwd, face));
        self.sim
            .actor_mut::<Forwarder>(fwd)
            .unwrap()
            .register_prefix(Name::parse(prefix).unwrap(), face, 0);
        app
    }

    fn consumer(&mut self, fwd: ActorId) -> ActorId {
        let app = self.sim.spawn(
            "consumer",
            ConsumerApp {
                consumer: None,
                events: vec![],
            },
        );
        let face = attach_app(&mut self.sim, fwd, app, &self.alloc);
        self.sim.actor_mut::<ConsumerApp>(app).unwrap().consumer =
            Some(Consumer::new(fwd, face));
        app
    }

    fn events(&self, app: ActorId) -> Vec<String> {
        self.sim
            .actor::<ConsumerApp>(app)
            .unwrap()
            .events
            .iter()
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Event strings with their virtual arrival times.
    fn timed_events(&self, app: ActorId) -> Vec<(SimTime, String)> {
        self.sim.actor::<ConsumerApp>(app).unwrap().events.clone()
    }

    fn served(&self, app: ActorId) -> u64 {
        self.sim.actor::<ProducerApp>(app).unwrap().served
    }
}

const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

#[test]
fn two_hop_interest_data_exchange() {
    let mut w = World::new(1);
    let edge = w.forwarder("edge");
    let core = w.forwarder("core");
    let (edge_to_core, _) = connect(
        &mut w.sim,
        edge,
        core,
        &w.alloc,
        LinkProps::with_latency(MS(10)),
    );
    let producer = w.producer(core, "/data", "payload", SimDuration::ZERO);
    let consumer = w.consumer(edge);
    w.sim
        .actor_mut::<Forwarder>(edge)
        .unwrap()
        .register_prefix(name!("/data"), edge_to_core, 0);

    w.sim
        .send(consumer, Fetch(Interest::new(name!("/data/obj1")), 0));
    w.sim.run();

    let events = w.timed_events(consumer);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].1, "data:/data/obj1:payload");
    assert_eq!(w.served(producer), 1);
    // consumer→edge is an app face (0 delay), edge→core 10 ms, producer app
    // face 0, and the same back: 20 ms round trip.
    assert_eq!(events[0].0, SimTime::ZERO + MS(20));
}

#[test]
fn content_store_serves_second_request() {
    let mut w = World::new(2);
    let edge = w.forwarder("edge");
    let core = w.forwarder("core");
    let (edge_to_core, _) = connect(
        &mut w.sim,
        edge,
        core,
        &w.alloc,
        LinkProps::with_latency(MS(10)),
    );
    let producer = w.producer(core, "/data", "payload", SimDuration::ZERO);
    let c1 = w.consumer(edge);
    let c2 = w.consumer(edge);
    w.sim
        .actor_mut::<Forwarder>(edge)
        .unwrap()
        .register_prefix(name!("/data"), edge_to_core, 0);

    w.sim.send(c1, Fetch(Interest::new(name!("/data/obj")), 0));
    w.sim.run();
    // Second consumer asks later: the edge CS answers without upstream.
    let t_ask = w.sim.now();
    w.sim.send(c2, Fetch(Interest::new(name!("/data/obj")), 0));
    w.sim.run();

    assert_eq!(w.served(producer), 1, "producer hit exactly once");
    let events = w.timed_events(c2);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].1, "data:/data/obj:payload");
    assert_eq!(
        events[0].0, t_ask,
        "cache hit resolved without any link traversal"
    );
    assert_eq!(w.sim.metrics_ref().counter("ndn.cs_hits"), 1);
}

#[test]
fn pit_aggregates_concurrent_identical_requests() {
    let mut w = World::new(3);
    let edge = w.forwarder("edge");
    let core = w.forwarder("core");
    let (edge_to_core, _) = connect(
        &mut w.sim,
        edge,
        core,
        &w.alloc,
        LinkProps::with_latency(MS(10)),
    );
    // Slow producer so all requests arrive while the first is pending.
    let producer = w.producer(core, "/data", "payload", MS(100));
    let consumers: Vec<ActorId> = (0..5).map(|_| w.consumer(edge)).collect();
    w.sim
        .actor_mut::<Forwarder>(edge)
        .unwrap()
        .register_prefix(name!("/data"), edge_to_core, 0);

    for c in &consumers {
        w.sim.send(*c, Fetch(Interest::new(name!("/data/hot")), 0));
    }
    w.sim.run();

    assert_eq!(w.served(producer), 1, "one upstream fetch for five consumers");
    for c in &consumers {
        assert_eq!(w.events(*c), vec!["data:/data/hot:payload"]);
    }
    assert_eq!(w.sim.metrics_ref().counter("ndn.pit_aggregated"), 4);
}

#[test]
fn no_route_produces_nack() {
    let mut w = World::new(4);
    let edge = w.forwarder("edge");
    let consumer = w.consumer(edge);
    w.sim
        .send(consumer, Fetch(Interest::new(name!("/nowhere/x")), 0));
    w.sim.run();
    let events = w.events(consumer);
    assert_eq!(events.len(), 1);
    assert!(events[0].starts_with("nack:NoRoute"), "got {events:?}");
    assert_eq!(w.sim.metrics_ref().counter("ndn.no_route"), 1);
}

#[test]
fn nack_propagates_across_hops() {
    let mut w = World::new(5);
    let edge = w.forwarder("edge");
    let core = w.forwarder("core");
    let (edge_to_core, _) = connect(
        &mut w.sim,
        edge,
        core,
        &w.alloc,
        LinkProps::with_latency(MS(5)),
    );
    // Edge routes /void upstream, but core has no route at all.
    w.sim
        .actor_mut::<Forwarder>(edge)
        .unwrap()
        .register_prefix(name!("/void"), edge_to_core, 0);
    let consumer = w.consumer(edge);
    w.sim.send(consumer, Fetch(Interest::new(name!("/void/x")), 0));
    w.sim.run();
    let events = w.events(consumer);
    assert_eq!(events.len(), 1);
    assert!(events[0].starts_with("nack:NoRoute"), "got {events:?}");
}

#[test]
fn lossy_link_recovered_by_retransmission() {
    let mut w = World::new(6);
    let edge = w.forwarder("edge");
    let core = w.forwarder("core");
    // 60% loss each way; with 20 retries the fetch still succeeds.
    let (edge_to_core, _) = connect(
        &mut w.sim,
        edge,
        core,
        &w.alloc,
        LinkProps {
            latency: MS(5),
            loss: 0.6,
            ..Default::default()
        },
    );
    let producer = w.producer(core, "/data", "payload", SimDuration::ZERO);
    let consumer = w.consumer(edge);
    w.sim
        .actor_mut::<Forwarder>(edge)
        .unwrap()
        .register_prefix(name!("/data"), edge_to_core, 0);

    let interest = Interest::new(name!("/data/lossy")).with_lifetime(MS(50));
    w.sim.send(consumer, Fetch(interest, 20));
    w.sim.run();

    let events = w.events(consumer);
    assert_eq!(events.len(), 1);
    assert!(
        events[0].starts_with("data:"),
        "retransmissions recovered the loss: {events:?}"
    );
    assert!(w.sim.metrics_ref().counter("ndn.link_loss_drops") > 0);
    let _ = producer;
}

#[test]
fn anycast_best_route_reaches_nearest_producer() {
    // Consumer at edge; same prefix served by two producers, one 5 ms away
    // (near) and one 50 ms away (far). BestRoute must use the near one.
    let mut w = World::new(7);
    let edge = w.forwarder("edge");
    let near = w.forwarder("near");
    let far = w.forwarder("far");
    let (edge_to_near, _) = connect(
        &mut w.sim,
        edge,
        near,
        &w.alloc,
        LinkProps::with_latency(MS(5)),
    );
    let (edge_to_far, _) = connect(
        &mut w.sim,
        edge,
        far,
        &w.alloc,
        LinkProps::with_latency(MS(50)),
    );
    let p_near = w.producer(near, "/svc", "near", SimDuration::ZERO);
    let p_far = w.producer(far, "/svc", "far", SimDuration::ZERO);
    {
        let fwd = w.sim.actor_mut::<Forwarder>(edge).unwrap();
        fwd.register_prefix(name!("/svc"), edge_to_near, 5);
        fwd.register_prefix(name!("/svc"), edge_to_far, 50);
    }
    let consumer = w.consumer(edge);
    w.sim.send(consumer, Fetch(Interest::new(name!("/svc/job1")), 0));
    w.sim.run();

    let events = w.timed_events(consumer);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].1, "data:/svc/job1:near");
    assert_eq!(w.served(p_near), 1);
    assert_eq!(w.served(p_far), 0);
    assert_eq!(events[0].0, SimTime::ZERO + MS(10), "5 ms each way");
}

#[test]
fn multicast_strategy_reaches_all_producers() {
    let mut w = World::new(8);
    let edge = w.forwarder("edge");
    let a = w.forwarder("a");
    let b = w.forwarder("b");
    let (edge_to_a, _) = connect(&mut w.sim, edge, a, &w.alloc, LinkProps::with_latency(MS(5)));
    let (edge_to_b, _) = connect(&mut w.sim, edge, b, &w.alloc, LinkProps::with_latency(MS(9)));
    let p_a = w.producer(a, "/svc", "a", SimDuration::ZERO);
    let p_b = w.producer(b, "/svc", "b", SimDuration::ZERO);
    {
        let fwd = w.sim.actor_mut::<Forwarder>(edge).unwrap();
        fwd.register_prefix(name!("/svc"), edge_to_a, 1);
        fwd.register_prefix(name!("/svc"), edge_to_b, 1);
        fwd.set_strategy(name!("/svc"), Box::new(Multicast::new()));
    }
    let consumer = w.consumer(edge);
    w.sim.send(consumer, Fetch(Interest::new(name!("/svc/q")), 0));
    w.sim.run();

    assert_eq!(w.served(p_a), 1);
    assert_eq!(w.served(p_b), 1);
    // Consumer sees one answer (first back wins; the second is unsolicited
    // at the PIT and dropped).
    assert_eq!(w.events(consumer), vec!["data:/svc/q:a"]);
    assert_eq!(w.sim.metrics_ref().counter("ndn.unsolicited_data"), 1);
}

#[test]
fn three_hop_chain_with_bandwidth_delay() {
    let mut w = World::new(9);
    let f1 = w.forwarder("f1");
    let f2 = w.forwarder("f2");
    let f3 = w.forwarder("f3");
    let props = LinkProps {
        latency: MS(10),
        bandwidth_bps: Some(8_000_000), // 1 MB/s
        ..Default::default()
    };
    let (f1_to_f2, _) = connect(&mut w.sim, f1, f2, &w.alloc, props);
    let (f2_to_f3, _) = connect(&mut w.sim, f2, f3, &w.alloc, props);
    let _producer = w.producer(f3, "/deep", "x", SimDuration::ZERO);
    {
        w.sim
            .actor_mut::<Forwarder>(f1)
            .unwrap()
            .register_prefix(name!("/deep"), f1_to_f2, 0);
        w.sim
            .actor_mut::<Forwarder>(f2)
            .unwrap()
            .register_prefix(name!("/deep"), f2_to_f3, 0);
    }
    let consumer = w.consumer(f1);
    w.sim.send(consumer, Fetch(Interest::new(name!("/deep/obj")), 0));
    w.sim.run();
    let events = w.events(consumer);
    assert_eq!(events.len(), 1);
    assert!(events[0].starts_with("data:/deep/obj"));
    // 4 link traversals × ≥10 ms latency plus serialisation > 40 ms.
    assert!(w.sim.now() > SimTime::ZERO + MS(40));
}

#[test]
fn face_down_blocks_traffic_and_up_restores() {
    let mut w = World::new(10);
    let edge = w.forwarder("edge");
    let core = w.forwarder("core");
    let (edge_to_core, _) = connect(
        &mut w.sim,
        edge,
        core,
        &w.alloc,
        LinkProps::with_latency(MS(5)),
    );
    let _producer = w.producer(core, "/data", "x", SimDuration::ZERO);
    w.sim
        .actor_mut::<Forwarder>(edge)
        .unwrap()
        .register_prefix(name!("/data"), edge_to_core, 0);
    let consumer = w.consumer(edge);

    // Take the face down: the strategy sees no eligible hop → NACK.
    w.sim.send(
        edge,
        lidc_ndn::forwarder::SetFaceUp {
            face: edge_to_core,
            up: false,
        },
    );
    w.sim.send(consumer, Fetch(Interest::new(name!("/data/a")), 0));
    w.sim.run();
    assert!(w.events(consumer)[0].starts_with("nack:NoRoute"));

    // Bring it back: traffic flows.
    w.sim.send(
        edge,
        lidc_ndn::forwarder::SetFaceUp {
            face: edge_to_core,
            up: true,
        },
    );
    w.sim.send(consumer, Fetch(Interest::new(name!("/data/b")), 0));
    w.sim.run();
    let events = w.events(consumer);
    assert_eq!(events.len(), 2);
    assert!(events[1].starts_with("data:/data/b"));
}

#[test]
fn deterministic_replay_same_seed() {
    fn run(seed: u64) -> (u64, Vec<String>) {
        let mut w = World::new(seed);
        let edge = w.forwarder("edge");
        let core = w.forwarder("core");
        let (edge_to_core, _) = connect(
            &mut w.sim,
            edge,
            core,
            &w.alloc,
            LinkProps {
                latency: MS(5),
                loss: 0.3,
                ..Default::default()
            },
        );
        let _p = w.producer(core, "/d", "x", SimDuration::ZERO);
        w.sim
            .actor_mut::<Forwarder>(edge)
            .unwrap()
            .register_prefix(name!("/d"), edge_to_core, 0);
        let c = w.consumer(edge);
        for i in 0..10 {
            let interest =
                Interest::new(name!("/d").child_str(&format!("obj{i}"))).with_lifetime(MS(40));
            w.sim.send(c, Fetch(interest, 5));
        }
        w.sim.run();
        (w.sim.events_processed(), w.events(c))
    }
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).0, run(43).0);
}

#[test]
fn same_instant_burst_travels_as_wire_batches() {
    // A 32-Interest same-instant burst crosses the edge→core link. With
    // wire batching the forwarder flushes the whole burst as one RxBatch
    // per direction instead of 32 events each way.
    let mut w = World::new(7);
    let edge = w.forwarder("edge");
    let core = w.forwarder("core");
    let (edge_to_core, _) = connect(&mut w.sim, edge, core, &w.alloc, LinkProps::with_latency(MS(5)));
    let p = w.producer(core, "/d", "x", SimDuration::ZERO);
    w.sim
        .actor_mut::<Forwarder>(edge)
        .unwrap()
        .register_prefix(name!("/d"), edge_to_core, 0);
    let c = w.consumer(edge);
    for i in 0..32 {
        let interest = Interest::new(name!("/d").child_str(&format!("obj{i}")));
        w.sim.send(c, Fetch(interest, 0));
    }
    w.sim.run();
    assert_eq!(w.events(c).len(), 32, "every Interest satisfied");
    assert_eq!(w.served(p), 32);
    // Interests went out in one flush; Data came back in one flush.
    let m = w.sim.metrics_ref();
    assert_eq!(m.counter("ndn.batch.link_flushes"), 2);
    assert_eq!(m.counter("ndn.batch.link_packets"), 64);
}

#[test]
fn rx_batch_ingress_matches_per_packet_ingress() {
    // Injecting a burst through one RxBatch event produces the same
    // forwarder end-state as per-packet Rx events.
    fn run(batched: bool) -> (u64, u64, usize) {
        let mut w = World::new(3);
        let edge = w.forwarder("edge");
        let core = w.forwarder("core");
        let (edge_to_core, _) =
            connect(&mut w.sim, edge, core, &w.alloc, LinkProps::with_latency(MS(2)));
        let _p = w.producer(core, "/d", "x", SimDuration::ZERO);
        w.sim
            .actor_mut::<Forwarder>(edge)
            .unwrap()
            .register_prefix(name!("/d"), edge_to_core, 0);
        let c = w.consumer(edge);
        let face = w
            .sim
            .actor::<ConsumerApp>(c)
            .unwrap()
            .consumer
            .as_ref()
            .unwrap()
            .face();
        let packets: Vec<Packet> = (0..8)
            .map(|i| {
                Packet::Interest(
                    Interest::new(name!("/d").child_str(&format!("obj{i}")))
                        .with_nonce(1000 + i as u32),
                )
            })
            .collect();
        if batched {
            lidc_ndn::net::inject_burst(&mut w.sim, edge, face, packets);
        } else {
            for packet in packets {
                w.sim.send(edge, lidc_ndn::forwarder::Rx { face, packet });
            }
        }
        w.sim.run();
        let m = w.sim.metrics_ref();
        (
            m.counter("ndn.rx_interests"),
            m.counter("ndn.pit_satisfied"),
            w.sim
                .actor::<Forwarder>(edge)
                .unwrap()
                .cs()
                .len(),
        )
    }
    assert_eq!(run(true), run(false));
    // 8 entries satisfied on each of the two forwarders.
    assert_eq!(run(true).1, 16);
}
