//! Property-based tests for the NDN substrate (DESIGN.md §7): codec
//! round-trips, FIB longest-prefix-match against a naive reference, PIT
//! aggregation invariants, and Content-Store capacity/LRU invariants.

use bytes::Bytes;
use lidc_ndn::face::FaceId;
use lidc_ndn::name::{Name, NameComponent};
use lidc_ndn::packet::{ContentType, Data, Interest};
use lidc_ndn::tables::cs::ContentStore;
use lidc_ndn::tables::fib::Fib;
use lidc_ndn::tables::pit::{InsertOutcome, Pit};
use lidc_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

// --- generators -----------------------------------------------------------

/// Generic-component text that survives the URI round trip unambiguously
/// (no `=`; never all-periods; nonempty).
fn component_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9_][a-zA-Z0-9._~+,-]{0,15}").unwrap()
}

prop_compose! {
    fn arb_component()(
        kind in 0u8..4,
        text in component_text(),
        n in proptest::num::u64::ANY,
        digest in proptest::array::uniform32(proptest::num::u8::ANY),
    ) -> NameComponent {
        match kind {
            0 => NameComponent::from_str_generic(&text),
            1 => NameComponent::segment(n),
            2 => NameComponent::version(n),
            _ => NameComponent::implicit_digest(digest),
        }
    }
}

prop_compose! {
    fn arb_name()(components in proptest::collection::vec(arb_component(), 0..8)) -> Name {
        let mut name = Name::root();
        for c in components {
            name = name.child(c);
        }
        name
    }
}

prop_compose! {
    fn arb_text_name()(parts in proptest::collection::vec(component_text(), 1..6)) -> Name {
        let mut name = Name::root();
        for p in parts {
            name = name.child_str(&p);
        }
        name
    }
}

// --- name properties -------------------------------------------------------

proptest! {
    #[test]
    fn name_uri_round_trip(name in arb_name()) {
        let uri = name.to_uri();
        let parsed = Name::parse(&uri).unwrap();
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn prefix_relation_is_reflexive_and_preserved_by_join(
        a in arb_name(),
        b in arb_name(),
    ) {
        prop_assert!(a.is_prefix_of(&a));
        let joined = a.join(&b);
        prop_assert!(a.is_prefix_of(&joined));
        prop_assert_eq!(joined.len(), a.len() + b.len());
        prop_assert_eq!(joined.prefix(a.len()), a.clone());
        // parent() strips exactly one component.
        if !joined.is_empty() {
            prop_assert_eq!(joined.parent().len(), joined.len() - 1);
        }
    }

    #[test]
    fn prefix_of_is_antisymmetric_up_to_equality(a in arb_name(), b in arb_name()) {
        if a.is_prefix_of(&b) && b.is_prefix_of(&a) {
            prop_assert_eq!(a, b);
        }
    }
}

// --- packet codec properties ------------------------------------------------

proptest! {
    #[test]
    fn interest_wire_round_trip(
        name in arb_name(),
        can_be_prefix in any::<bool>(),
        must_be_fresh in any::<bool>(),
        nonce in any::<Option<u32>>(),
        lifetime_ms in 1u64..120_000,
        params in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut interest = Interest::new(name)
            .can_be_prefix(can_be_prefix)
            .must_be_fresh(must_be_fresh)
            .with_lifetime(SimDuration::from_millis(lifetime_ms))
            .with_app_params(Bytes::from(params));
        interest.nonce = nonce;
        let wire = interest.encode();
        prop_assert_eq!(wire.len(), interest.encoded_size());
        let decoded = Interest::decode(&wire).unwrap();
        prop_assert_eq!(decoded, interest);
    }

    #[test]
    fn data_wire_round_trip_and_signature(
        name in arb_name(),
        content in proptest::collection::vec(any::<u8>(), 0..256),
        freshness_ms in 0u64..600_000,
        kind in 0u8..3,
    ) {
        let content_type = match kind {
            0 => ContentType::Blob,
            1 => ContentType::Link,
            _ => ContentType::Nack,
        };
        let data = Data::new(name, content)
            .with_content_type(content_type)
            .with_freshness(SimDuration::from_millis(freshness_ms))
            .sign_digest();
        let wire = data.encode();
        prop_assert_eq!(wire.len(), data.encoded_size());
        let decoded = Data::decode(&wire).unwrap();
        prop_assert!(decoded.verify(None), "digest signature verifies");
        prop_assert_eq!(decoded, data);
    }

    #[test]
    fn data_tamper_detected(
        name in arb_text_name(),
        content in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<u8>(),
    ) {
        let data = Data::new(name, content.clone()).sign_digest();
        let mut tampered = data.clone();
        let idx = (flip as usize) % content.len();
        let mut bytes = content;
        bytes[idx] ^= 0x01;
        tampered.content = Bytes::from(bytes);
        prop_assert!(data.verify(None));
        prop_assert!(!tampered.verify(None), "bit flip must break the digest");
    }

    #[test]
    fn hmac_signature_requires_right_key(
        name in arb_text_name(),
        content in proptest::collection::vec(any::<u8>(), 0..64),
        key in proptest::collection::vec(any::<u8>(), 1..32),
        other_key in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let data = Data::new(name, content)
            .sign_hmac(Name::parse("/keys/k1").unwrap(), &key);
        prop_assert!(data.verify(Some(&key)));
        if other_key != key {
            prop_assert!(!data.verify(Some(&other_key)));
        }
    }
}

// --- FIB: longest-prefix match vs naive reference ---------------------------

proptest! {
    #[test]
    fn fib_lpm_matches_naive_reference(
        routes in proptest::collection::vec((arb_text_name(), 0u64..8, 0u32..100), 1..40),
        lookup in arb_text_name(),
        extra in component_text(),
    ) {
        let mut fib = Fib::new();
        let mut table: Vec<(Name, FaceId)> = Vec::new();
        for (prefix, face, cost) in &routes {
            let face = FaceId::from_raw(*face);
            fib.add_nexthop(prefix.clone(), face, *cost);
            table.push((prefix.clone(), face));
        }
        // Look up both an arbitrary name and a guaranteed-matching child.
        let child = routes[0].0.clone().child_str(&extra);
        for name in [lookup, child] {
            let expected_len = table
                .iter()
                .filter(|(p, _)| p.is_prefix_of(&name))
                .map(|(p, _)| p.len())
                .max();
            match (fib.lookup(&name), expected_len) {
                (None, None) => {}
                (Some(entry), Some(len)) => {
                    prop_assert_eq!(entry.prefix.len(), len);
                    prop_assert!(entry.prefix.is_prefix_of(&name));
                    prop_assert!(!entry.nexthops.is_empty());
                    // Next hops sorted by ascending cost.
                    prop_assert!(entry
                        .nexthops
                        .windows(2)
                        .all(|w| w[0].cost <= w[1].cost));
                }
                (got, want) => {
                    return Err(TestCaseError::fail(format!(
                        "lpm mismatch for {}: fib={:?} naive={:?}",
                        name.to_uri(),
                        got.map(|e| e.prefix.to_uri()),
                        want
                    )));
                }
            }
        }
    }

    #[test]
    fn fib_remove_face_purges_every_nexthop(
        routes in proptest::collection::vec((arb_text_name(), 0u64..4), 1..20),
    ) {
        let mut fib = Fib::new();
        for (prefix, face) in &routes {
            fib.add_nexthop(prefix.clone(), FaceId::from_raw(*face), 0);
        }
        let victim = FaceId::from_raw(routes[0].1);
        fib.remove_face(victim);
        for entry in fib.iter() {
            prop_assert!(entry.nexthops.iter().all(|nh| nh.face != victim));
            prop_assert!(!entry.nexthops.is_empty(), "empty entries are dropped");
        }
    }
}

// --- PIT aggregation invariants ---------------------------------------------

proptest! {
    #[test]
    fn pit_aggregates_distinct_faces_once(
        name in arb_text_name(),
        faces in proptest::collection::btree_set(0u64..32, 1..10),
    ) {
        let mut pit = Pit::new();
        let now = SimTime::ZERO;
        let faces: Vec<FaceId> = faces.into_iter().map(FaceId::from_raw).collect();
        for (i, face) in faces.iter().enumerate() {
            let interest = Interest::new(name.clone()).with_nonce(i as u32 + 1);
            let (outcome, _) = pit.insert(&interest, *face, now);
            if i == 0 {
                prop_assert_eq!(outcome, InsertOutcome::New);
            } else {
                prop_assert_eq!(outcome, InsertOutcome::Aggregated);
            }
        }
        prop_assert_eq!(pit.len(), 1, "one entry regardless of fan-in");
        let keys = pit.match_data(&name);
        prop_assert_eq!(keys.len(), 1);
        let entry = pit.get(&keys[0]).unwrap();
        // Data returns to every downstream except the one it came from.
        let back = entry.return_faces(faces[0]);
        prop_assert_eq!(back.len(), faces.len() - 1);
        prop_assert!(!back.contains(&faces[0]));
    }

    #[test]
    fn pit_duplicate_nonce_detected(
        name in arb_text_name(),
        face in 0u64..8,
        nonce in any::<u32>(),
    ) {
        let mut pit = Pit::new();
        let now = SimTime::ZERO;
        let face = FaceId::from_raw(face);
        let interest = Interest::new(name.clone()).with_nonce(nonce);
        let (first, _) = pit.insert(&interest, face, now);
        prop_assert_eq!(first, InsertOutcome::New);
        let (dup, _) = pit.insert(&interest, face, now);
        prop_assert_eq!(dup, InsertOutcome::DuplicateNonce);
        // A new nonce from the same face is a retransmission, not a loop.
        let retx = Interest::new(name).with_nonce(nonce.wrapping_add(1));
        let (again, _) = pit.insert(&retx, face, now);
        prop_assert_eq!(again, InsertOutcome::Retransmission);
    }
}

// --- Content Store invariants -------------------------------------------------

proptest! {
    #[test]
    fn cs_never_exceeds_capacity_and_serves_exact_bytes(
        capacity in 1usize..32,
        inserts in proptest::collection::vec(
            (component_text(), proptest::collection::vec(any::<u8>(), 0..32)),
            1..64,
        ),
    ) {
        let mut cs = ContentStore::new(capacity);
        let now = SimTime::ZERO;
        let mut last: Option<(Name, Vec<u8>)> = None;
        for (suffix, content) in inserts {
            let name = Name::parse("/data").unwrap().child_str(&suffix);
            let data = Data::new(name.clone(), content.clone()).sign_digest();
            cs.insert(data, now);
            prop_assert!(cs.len() <= capacity, "len {} > capacity {}", cs.len(), capacity);
            last = Some((name, content));
        }
        // The most recently inserted entry must still be resident (LRU).
        let (name, content) = last.unwrap();
        let got = cs.lookup(&Interest::new(name), now).expect("MRU entry resident");
        prop_assert_eq!(got.content.as_ref(), content.as_slice());
    }

    /// Byte-budget invariants: after ANY insert/lookup sequence (lookups
    /// evict observed-stale records, inserts evict LRU by count, class
    /// share, and total budget), the store never exceeds `budget_bytes`,
    /// and `bytes_used` equals the payload+name cost summed over exactly
    /// the resident entries.
    #[test]
    fn cs_bytes_used_never_exceeds_budget_and_is_exact(
        budget in 300u64..4000,
        capacity in 2usize..24,
        ops in proptest::collection::vec(
            (0u8..24, 0usize..500, any::<bool>(), any::<bool>()),
            1..120,
        ),
    ) {
        use lidc_ndn::tables::cs::CsConfig;
        let mut cs = ContentStore::with_config(CsConfig {
            capacity,
            budget_bytes: budget,
            bulk_threshold: 100,
            protected_fraction: 0.25,
        });
        let now = SimTime::ZERO;
        for (id, size, is_lookup, fresh) in ops {
            let name = Name::parse(&format!("/data/obj-{id}")).unwrap();
            if is_lookup {
                let _ = cs.lookup(&Interest::new(name).must_be_fresh(fresh), now);
            } else {
                let mut data = Data::new(name, vec![7u8; size]);
                if fresh {
                    data = data.with_freshness(SimDuration::from_secs(60));
                }
                cs.insert(data.sign_digest(), now);
            }
            prop_assert!(
                cs.bytes_used() <= budget,
                "bytes_used {} > budget {budget}",
                cs.bytes_used()
            );
            prop_assert!(cs.len() <= capacity);
            let expected: u64 = cs.entries().map(|(_, d)| ContentStore::cost_of(d)).sum();
            prop_assert_eq!(cs.bytes_used(), expected, "byte accounting drifted");
        }
    }

    /// Oversized Data (cost beyond what its class may ever hold) is
    /// refused at admission without evicting a single live entry.
    #[test]
    fn cs_oversized_data_rejected_without_flushing(
        resident in proptest::collection::vec((0u8..8, 1usize..60), 1..8),
        oversize in 2000usize..4000,
    ) {
        use lidc_ndn::tables::cs::CsConfig;
        let mut cs = ContentStore::with_config(CsConfig {
            capacity: 32,
            budget_bytes: 1000,
            bulk_threshold: 100,
            protected_fraction: 0.25,
        });
        let now = SimTime::ZERO;
        for (id, size) in resident {
            let name = Name::parse(&format!("/small/{id}")).unwrap();
            cs.insert(Data::new(name, vec![1u8; size]).sign_digest(), now);
        }
        let before: Vec<Name> = cs.names().cloned().collect();
        let bytes_before = cs.bytes_used();
        cs.insert(
            Data::new(Name::parse("/huge").unwrap(), vec![2u8; oversize]).sign_digest(),
            now,
        );
        prop_assert_eq!(cs.admission_rejections(), 1);
        prop_assert_eq!(cs.bytes_used(), bytes_before, "no bytes charged");
        let after: Vec<Name> = cs.names().cloned().collect();
        prop_assert_eq!(after, before, "resident set untouched");
        prop_assert!(cs.lookup(&Interest::new(Name::parse("/huge").unwrap()), now).is_none());
    }

    #[test]
    fn cs_must_be_fresh_respects_expiry(
        fresh_ms in 1u64..10_000,
        probe_ms in 0u64..20_000,
    ) {
        let mut cs = ContentStore::new(8);
        let name = Name::parse("/data/x").unwrap();
        let data = Data::new(name.clone(), &b"v"[..])
            .with_freshness(SimDuration::from_millis(fresh_ms))
            .sign_digest();
        cs.insert(data, SimTime::ZERO);
        let probe_at = SimTime::ZERO + SimDuration::from_millis(probe_ms);
        let fresh_hit = cs
            .lookup(&Interest::new(name.clone()).must_be_fresh(true), probe_at)
            .is_some();
        prop_assert_eq!(fresh_hit, probe_ms < fresh_ms, "freshness boundary");
        if fresh_hit {
            // Still fresh: a plain probe also hits.
            prop_assert!(cs.lookup(&Interest::new(name), probe_at).is_some());
            prop_assert_eq!(cs.stale_evictions(), 0);
        } else {
            // Observed stale: the MustBeFresh probe evicted the record, so
            // it no longer occupies capacity (stale-pinning fix) and even a
            // plain probe misses.
            prop_assert!(cs.lookup(&Interest::new(name), probe_at).is_none());
            prop_assert_eq!(cs.len(), 0);
            prop_assert_eq!(cs.stale_evictions(), 1);
        }
    }
}

// --- arena/small-name representation properties ------------------------------

proptest! {
    /// The hybrid (inline/shared) representation round-trips through URI
    /// form for arbitrary component mixes, including deep names that spill
    /// past the inline table and long values that spill past the inline
    /// buffer.
    #[test]
    fn representation_uri_round_trip(
        components in proptest::collection::vec(arb_component(), 0..12),
        long_tail in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut name = Name::from_components(components);
        if !long_tail.is_empty() {
            name = name.child(NameComponent::generic(long_tail));
        }
        let parsed = Name::parse(&name.to_uri()).unwrap();
        prop_assert_eq!(parsed, name);
    }

    /// Hash/Eq agreement between owned prefixes and borrowed component
    /// slices — the contract that makes allocation-free FIB/PIT/CS probes
    /// sound. This must hold across representations (small names, shared
    /// tables, prefix views of both).
    #[test]
    fn owned_prefix_and_borrowed_slice_agree(
        name in arb_name(),
        extra in proptest::collection::vec(arb_component(), 0..6),
    ) {
        use std::borrow::Borrow;
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut deep = name;
        for c in extra {
            deep = deep.child(c);
        }
        for k in 0..=deep.len() {
            let owned = deep.prefix(k);
            let borrowed = &deep.components()[..k];
            // Eq agreement.
            let owned_slice: &[NameComponent] = owned.borrow();
            prop_assert_eq!(owned_slice, borrowed);
            // Hash agreement.
            let mut h1 = DefaultHasher::new();
            let mut h2 = DefaultHasher::new();
            owned.hash(&mut h1);
            borrowed.hash(&mut h2);
            prop_assert_eq!(h1.finish(), h2.finish(), "hash mismatch at k={}", k);
            // The slice probes a map keyed by owned names.
            let mut map = std::collections::HashMap::new();
            map.insert(owned.clone(), k);
            prop_assert_eq!(map.get(borrowed), Some(&k));
        }
    }

    /// NDN canonical ordering is preserved by the new representation: it
    /// equals the reference component-wise comparison (type, then value
    /// length, then value bytes; shorter name first on ties), and agrees
    /// with the std lexicographic order on component slices that BTreeMap
    /// range scans rely on.
    #[test]
    fn canonical_order_matches_reference(a in arb_name(), b in arb_name()) {
        use std::cmp::Ordering;
        let reference = a
            .components()
            .iter()
            .zip(b.components())
            .map(|(x, y)| x.canonical_cmp(y))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| a.len().cmp(&b.len()));
        prop_assert_eq!(a.cmp(&b), reference);
        prop_assert_eq!(a.components().cmp(b.components()), reference);
        // Hash/Eq consistency: equal names hash equal.
        if reference == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    /// prefix()/parent()/push() interactions preserve value semantics even
    /// when tables are shared between clones (hidden-tail hygiene).
    #[test]
    fn prefix_views_are_isolated(
        name in arb_name(),
        cut in 0usize..12,
        tail in component_text(),
    ) {
        let original = name.clone();
        let k = cut.min(name.len());
        let mut p = name.prefix(k);
        p.push(NameComponent::from_str_generic(&tail));
        // The original is untouched by edits to the prefix view.
        prop_assert_eq!(&name, &original);
        prop_assert_eq!(p.len(), k + 1);
        prop_assert_eq!(p.parent(), original.prefix(k));
        prop_assert_eq!(p.get(k).unwrap().as_str(), Some(tail.as_str()));
    }
}

// --- FIB: borrowed prefix views and binary components -----------------------

prop_compose! {
    fn arb_binary_name()(
        comps in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..80),
            1..6,
        ),
    ) -> Name {
        let mut name = Name::root();
        for bytes in comps {
            name = name.child(NameComponent::generic(bytes));
        }
        name
    }
}

proptest! {
    /// FIB longest-prefix match over borrowed views agrees with the naive
    /// reference and with owned-prefix lookups, for arbitrary binary
    /// (non-UTF-8) components spanning the inline/shared value boundary.
    #[test]
    fn fib_lpm_borrowed_views_match_naive_on_binary_names(
        routes in proptest::collection::vec((arb_binary_name(), 0u64..8), 1..20),
        probe in arb_binary_name(),
        extra in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let mut fib = Fib::new();
        let mut table: Vec<Name> = Vec::new();
        for (prefix, face) in &routes {
            fib.add_nexthop(prefix.clone(), FaceId::from_raw(*face), 1);
            if !table.contains(prefix) {
                table.push(prefix.clone());
            }
        }
        // Probe an arbitrary name and a guaranteed-matching child.
        let child = routes[0].0.clone().child(NameComponent::generic(extra));
        for name in [probe, child] {
            let naive: Option<&Name> = table
                .iter()
                .filter(|p| p.is_prefix_of(&name))
                .max_by_key(|p| p.len());
            let owned = fib.lookup(&name).map(|e| &e.prefix);
            let borrowed = fib.lookup_components(name.components()).map(|e| &e.prefix);
            let sliced = fib.lookup_slice(name.as_slice()).map(|e| &e.prefix);
            prop_assert_eq!(owned, naive);
            prop_assert_eq!(borrowed, naive);
            prop_assert_eq!(sliced, naive);
            // Borrowed-view lookups on truncated prefixes agree with
            // owned-prefix lookups at every depth.
            for k in 0..=name.len() {
                prop_assert_eq!(
                    fib.lookup_components(&name.components()[..k]).map(|e| &e.prefix),
                    fib.lookup(&name.prefix(k)).map(|e| &e.prefix),
                    "depth {}", k
                );
            }
        }
    }
}

// --- sharded-table equivalence --------------------------------------------

/// One operation of a mixed PIT/CS workload for the sharded-vs-single
/// equivalence properties.
#[derive(Debug, Clone)]
enum TableOp {
    /// PIT insert of `(name idx, face, nonce)`.
    PitInsert(usize, u64, u32),
    /// PIT data-match + take of every matched key.
    PitSatisfy(usize),
    /// CS insert of `(name idx, payload len, freshness secs)`.
    CsInsert(usize, usize, u64),
    /// CS lookup with `(name idx, can_be_prefix, must_be_fresh)`.
    CsLookup(usize, bool, bool),
}

prop_compose! {
    fn arb_pit_insert()(n in 0usize..24, f in 0u64..4, x in 1u32..1000) -> TableOp {
        TableOp::PitInsert(n, f, x)
    }
}
prop_compose! {
    fn arb_pit_satisfy()(n in 0usize..24) -> TableOp {
        TableOp::PitSatisfy(n)
    }
}
prop_compose! {
    fn arb_cs_insert()(n in 0usize..24, l in 0usize..64, f in 0u64..30) -> TableOp {
        TableOp::CsInsert(n, l, f)
    }
}
prop_compose! {
    fn arb_cs_lookup()(n in 0usize..24, p in any::<bool>(), f in any::<bool>()) -> TableOp {
        TableOp::CsLookup(n, p, f)
    }
}

fn arb_table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        arb_pit_insert(),
        arb_pit_satisfy(),
        arb_cs_insert(),
        arb_cs_lookup(),
    ]
}

/// A small hierarchical name universe so prefix lookups genuinely cross
/// shard boundaries (parents and children hash to different shards).
fn op_name(idx: usize) -> Name {
    let a = idx % 4;
    let b = (idx / 4) % 3;
    let c = idx / 12;
    let mut name = Name::root().child_str(&format!("svc{a}"));
    if b > 0 {
        name = name.child_str(&format!("obj{b}"));
    }
    if c > 0 {
        name = name.child_str(&format!("seg{c}"));
    }
    name
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary op sequences (no capacity/byte pressure — sharding
    /// deliberately localizes eviction), the 4-way name-hash-sharded PIT
    /// returns the same insert outcomes, the same data-match key lists (in
    /// the same deterministic order), and the same end state as the
    /// single-shard PIT.
    #[test]
    fn sharded_pit_probe_results_equal_single_shard(
        ops in proptest::collection::vec(arb_table_op(), 1..120),
    ) {
        use lidc_ndn::tables::shard::ShardedPit;
        let now = SimTime::ZERO;
        let mut single = Pit::new();
        let mut sharded = ShardedPit::new(4);
        let mut keys_single = Vec::new();
        let mut keys_sharded = Vec::new();
        for op in &ops {
            match op {
                TableOp::PitInsert(n, face, nonce) => {
                    // Every third name is a CanBePrefix Interest so prefix
                    // matching crosses shards.
                    let interest = Interest::new(op_name(*n))
                        .with_nonce(*nonce)
                        .can_be_prefix(n % 3 == 0);
                    let a = single.insert(&interest, FaceId::from_raw(*face), now);
                    let b = sharded.insert(&interest, FaceId::from_raw(*face), now);
                    prop_assert_eq!(a, b, "insert outcome diverged");
                }
                TableOp::PitSatisfy(n) => {
                    let name = op_name(*n);
                    single.match_data_into(&name, &mut keys_single);
                    sharded.match_data_into(&name, &mut keys_sharded);
                    prop_assert_eq!(&keys_single, &keys_sharded, "match keys diverged");
                    for key in keys_single.iter() {
                        let a = single.take(key).map(|e| (e.in_records, e.out_records));
                        let b = sharded.take(key).map(|e| (e.in_records, e.out_records));
                        prop_assert_eq!(a, b, "taken entries diverged");
                    }
                }
                _ => {}
            }
            prop_assert_eq!(single.len(), sharded.len());
            prop_assert_eq!(single.prefix_entry_count(), sharded.prefix_entry_count());
        }
    }

    /// Same property for the Content Store: with capacity/budget high
    /// enough that nothing evicts, the 4-way sharded store returns the
    /// same lookup results (exact and CanBePrefix, fresh and stale probes,
    /// including which record a prefix walk settles on and which stale
    /// records it evicts) and the same hit/miss/eviction totals as one
    /// store.
    #[test]
    fn sharded_cs_probe_results_equal_single_shard(
        ops in proptest::collection::vec(arb_table_op(), 1..120),
        probe_secs in 0u64..40,
    ) {
        use lidc_ndn::tables::cs::CsConfig;
        use lidc_ndn::tables::shard::ShardedCs;
        let config = CsConfig::count_only(1 << 16);
        let mut single = ContentStore::with_config(config.clone());
        let mut sharded = ShardedCs::with_config(config, 4);
        let mut now = SimTime::ZERO;
        for op in &ops {
            match op {
                TableOp::CsInsert(n, len, fresh) => {
                    let mut data = Data::new(op_name(*n), vec![7u8; *len]).sign_digest();
                    if *fresh > 0 {
                        data = data.with_freshness(SimDuration::from_secs(*fresh));
                    }
                    single.insert(data.clone(), now);
                    sharded.insert(data, now);
                }
                TableOp::CsLookup(n, prefix, fresh) => {
                    let interest = Interest::new(op_name(*n))
                        .can_be_prefix(*prefix)
                        .must_be_fresh(*fresh);
                    let a = single.lookup(&interest, now);
                    let b = sharded.lookup(&interest, now);
                    prop_assert_eq!(
                        a.as_ref().map(|d| (&d.name, &d.content)),
                        b.as_ref().map(|d| (&d.name, &d.content)),
                        "lookup result diverged"
                    );
                    // Advance time a little so freshness windows lapse at
                    // varied points of the sequence.
                    now += SimDuration::from_secs(probe_secs / 8);
                }
                _ => {}
            }
            prop_assert_eq!(single.len(), sharded.len(), "resident sets diverged");
            prop_assert_eq!(single.bytes_used(), sharded.bytes_used());
            prop_assert_eq!(single.hits(), sharded.hits());
            prop_assert_eq!(single.misses(), sharded.misses());
            prop_assert_eq!(single.stale_evictions(), sharded.stale_evictions());
            prop_assert_eq!(single.evictions(), sharded.evictions());
        }
        // End state: identical resident names in canonical order.
        let names_single: Vec<Name> = single.names().cloned().collect();
        prop_assert_eq!(names_single, sharded.names());
    }
}

// --- end-to-end integrity: signing, bit flips, cache admission --------------

proptest! {
    /// Sign → (optionally flip one seeded bit of the signed portion) →
    /// verify: verification accepts **iff** nothing was flipped, for both
    /// signature flavours. This is the exact pipeline a Data packet rides
    /// through a corrupting link (see docs/INTEGRITY.md).
    #[test]
    fn verification_accepts_iff_no_bit_flipped(
        name in arb_text_name(),
        content in proptest::collection::vec(any::<u8>(), 0..128),
        hmac in any::<bool>(),
        key in proptest::collection::vec(any::<u8>(), 1..32),
        flip in any::<Option<u64>>(),
    ) {
        let data = if hmac {
            Data::new(name, content).sign_hmac(Name::parse("/keys/k1").unwrap(), &key)
        } else {
            Data::new(name, content).sign_digest()
        };
        let mut received = data.clone();
        let flipped = match flip {
            Some(bit) => received.flip_bit(bit),
            None => false,
        };
        // Both flavours carry a 32-byte signature, so a flip always lands.
        prop_assert_eq!(flipped, flip.is_some());
        let key = if hmac { Some(&key[..]) } else { None };
        prop_assert_eq!(received.verify(key), !flipped, "verify ⇔ unflipped");
    }
}

/// How the scripted producer answers one request in the cache-admission
/// property below.
#[derive(Debug, Clone, Copy)]
enum ReplyKind {
    /// Honest: digest-signed under the requested name.
    Signed,
    /// Unsigned garbage under the requested name (byzantine producer).
    Unsigned,
    /// Digest-signed, then one seeded bit flipped (corrupting link).
    Tampered(u64),
    /// Correctly signed under a name nobody asked for (signed-wrong-name
    /// byzantine variant: verification passes, PIT matching must hold).
    WrongName,
}

prop_compose! {
    fn arb_tampered()(bit in proptest::num::u64::ANY) -> ReplyKind {
        ReplyKind::Tampered(bit)
    }
}

fn arb_reply_kind() -> impl Strategy<Value = ReplyKind> {
    prop_oneof![
        Just(ReplyKind::Signed),
        Just(ReplyKind::Unsigned),
        arb_tampered(),
        Just(ReplyKind::WrongName),
    ]
}

/// Replies to the i-th arriving Interest per `script[i]`.
struct ScriptedProducer {
    producer: Option<lidc_ndn::app::Producer>,
    script: Vec<ReplyKind>,
    served: usize,
}

impl lidc_simcore::engine::Actor for ScriptedProducer {
    fn on_message(&mut self, msg: lidc_simcore::engine::Msg, ctx: &mut lidc_simcore::engine::Ctx<'_>) {
        use lidc_ndn::packet::Packet;
        if let Ok(rx) = msg.downcast::<lidc_ndn::forwarder::AppRx>() {
            if let Packet::Interest(interest) = rx.packet {
                let kind = self.script[self.served % self.script.len()];
                self.served += 1;
                let honest = Data::new(interest.name.clone(), &b"payload"[..])
                    .with_freshness(SimDuration::from_secs(60));
                let reply = match kind {
                    ReplyKind::Signed => honest.sign_digest(),
                    ReplyKind::Unsigned => honest,
                    ReplyKind::Tampered(bit) => {
                        let mut d = honest.sign_digest();
                        d.flip_bit(bit);
                        d
                    }
                    ReplyKind::WrongName => {
                        Data::new(interest.name.child_str("wrong"), &b"payload"[..])
                            .with_freshness(SimDuration::from_secs(60))
                            .sign_digest()
                    }
                };
                self.producer.unwrap().reply(ctx, reply);
            }
        }
    }
}

/// Fires one Interest per scripted reply, 1 ms apart.
struct ScriptedConsumer {
    consumer: Option<lidc_ndn::app::Consumer>,
}
struct Express(Interest);

impl lidc_simcore::engine::Actor for ScriptedConsumer {
    fn on_message(&mut self, msg: lidc_simcore::engine::Msg, ctx: &mut lidc_simcore::engine::Ctx<'_>) {
        let msg = match msg.downcast::<Express>() {
            Ok(e) => {
                self.consumer.as_mut().unwrap().express(ctx, e.0, 0);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<lidc_ndn::forwarder::AppRx>() {
            Ok(rx) => {
                self.consumer.as_mut().unwrap().on_app_rx(&rx);
                return;
            }
            Err(m) => m,
        };
        if let Ok(t) = msg.downcast::<lidc_ndn::app::RetxTimer>() {
            self.consumer.as_mut().unwrap().on_timer(ctx, &t);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cache-admission safety: for **any** sequence of producer behaviours
    /// — honest, unsigned, bit-flipped, or signed-under-the-wrong-name —
    /// the forwarder's Content Store ends up holding exactly the honest
    /// replies and nothing that fails verification. The two broken
    /// flavours are counted at the verification gate; the wrong-name
    /// flavour verifies but dies at PIT matching.
    #[test]
    fn no_reply_sequence_admits_unverifiable_data_into_the_cs(
        script in proptest::collection::vec(arb_reply_kind(), 1..24),
        seed in any::<u64>(),
    ) {
        use lidc_ndn::app::{Consumer, Producer};
        use lidc_ndn::face::FaceIdAlloc;
        use lidc_ndn::forwarder::{Forwarder, ForwarderConfig};
        use lidc_ndn::net::attach_app;
        use lidc_simcore::engine::Sim;

        let mut sim = Sim::new(seed);
        let alloc = FaceIdAlloc::new();
        let fwd = sim.spawn("fwd", Forwarder::new("fwd", ForwarderConfig::default()));
        let producer = sim.spawn("producer", ScriptedProducer {
            producer: None,
            script: script.clone(),
            served: 0,
        });
        let pface = attach_app(&mut sim, fwd, producer, &alloc);
        sim.actor_mut::<ScriptedProducer>(producer).unwrap().producer =
            Some(Producer::new(fwd, pface));
        let prefix = Name::parse("/lab").unwrap();
        sim.actor_mut::<Forwarder>(fwd)
            .unwrap()
            .register_prefix(prefix.clone(), pface, 0);
        let consumer = sim.spawn("consumer", ScriptedConsumer { consumer: None });
        let cface = attach_app(&mut sim, fwd, consumer, &alloc);
        sim.actor_mut::<ScriptedConsumer>(consumer).unwrap().consumer =
            Some(Consumer::new(fwd, cface));
        for (i, _) in script.iter().enumerate() {
            let interest = Interest::new(prefix.clone().child_str(&format!("obj{i}")))
                .with_lifetime(SimDuration::from_millis(500));
            sim.send_after(SimDuration::from_millis(i as u64), consumer, Express(interest));
        }
        sim.run();

        let signed = script.iter().filter(|k| matches!(k, ReplyKind::Signed)).count();
        let broken = script
            .iter()
            .filter(|k| matches!(k, ReplyKind::Unsigned | ReplyKind::Tampered(_)))
            .count();
        let fwd = sim.actor::<Forwarder>(fwd).unwrap();
        let mut cached = 0usize;
        for shard in fwd.cs().shards() {
            for (name, data) in shard.entries() {
                prop_assert!(data.verify(None), "unverifiable Data cached: {name}");
                cached += 1;
            }
        }
        prop_assert_eq!(cached, signed, "exactly the honest replies were cached");
        prop_assert_eq!(
            sim.metrics_ref().counter("ndn.verify_failed"),
            broken as u64,
            "every broken reply was refused at the verification gate"
        );
        prop_assert_eq!(
            sim.metrics_ref().counter("ndn.cs_poison_rejected"),
            broken as u64,
            "every broken reply would have satisfied a PIT entry"
        );
    }
}
