//! Forwarding Information Base: name prefixes → ranked next hops.
//!
//! Lookup is longest-prefix match in the NDN sense (component-granular, not
//! byte-granular). The implementation keeps a `HashMap` keyed by prefix and
//! walks the lookup name's prefixes from longest to shortest — O(k) map
//! probes for a k-component name, which beats a trie for the short names
//! LIDC uses while staying trivially correct (property-tested against a
//! naive reference in this module).
//!
//! The walk probes with **borrowed prefix views** (`&name.components()[..k]`
//! through `Name`'s `Borrow<[NameComponent]>` bridge), so a lookup performs
//! zero heap allocations regardless of the name's depth.

use crate::face::FaceId;
use crate::fxhash::FxHashMap;
use crate::name::{Name, NameComponent, NameSlice};

/// One candidate next hop for a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Outgoing face.
    pub face: FaceId,
    /// Routing cost; lower is preferred.
    pub cost: u32,
}

/// A FIB entry: the prefix plus its next hops sorted by ascending cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibEntry {
    /// Registered prefix.
    pub prefix: Name,
    /// Next hops, ascending cost (ties broken by face id for determinism).
    pub nexthops: Vec<NextHop>,
}

/// The forwarding table.
#[derive(Debug, Default)]
pub struct Fib {
    entries: FxHashMap<Name, FibEntry>,
    /// Shortest registered prefix length (valid while non-empty): the LPM
    /// walk never probes below it.
    min_len: usize,
    /// Longest registered prefix length (valid while non-empty): the LPM
    /// walk never probes above it.
    max_len: usize,
}

impl Fib {
    /// Empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Number of entries (prefixes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add (or update the cost of) a next hop for `prefix`.
    pub fn add_nexthop(&mut self, prefix: Name, face: FaceId, cost: u32) {
        if self.entries.is_empty() {
            self.min_len = prefix.len();
            self.max_len = prefix.len();
        } else {
            self.min_len = self.min_len.min(prefix.len());
            self.max_len = self.max_len.max(prefix.len());
        }
        let entry = self.entries.entry(prefix.clone()).or_insert_with(|| FibEntry {
            prefix,
            nexthops: Vec::new(),
        });
        match entry.nexthops.iter_mut().find(|nh| nh.face == face) {
            Some(nh) => nh.cost = cost,
            None => entry.nexthops.push(NextHop { face, cost }),
        }
        entry
            .nexthops
            .sort_by_key(|nh| (nh.cost, nh.face.raw()));
    }

    /// Remove one next hop; drops the entry when it was the last hop.
    /// Returns true if something was removed.
    pub fn remove_nexthop(&mut self, prefix: &Name, face: FaceId) -> bool {
        let Some(entry) = self.entries.get_mut(prefix) else {
            return false;
        };
        let before = entry.nexthops.len();
        entry.nexthops.retain(|nh| nh.face != face);
        let removed = entry.nexthops.len() != before;
        if entry.nexthops.is_empty() {
            self.entries.remove(prefix);
            self.recompute_len_bounds(prefix.len());
        }
        removed
    }

    /// Refresh `min_len`/`max_len` after removing an entry of length
    /// `removed_len` (only scans when the removed entry was extremal).
    fn recompute_len_bounds(&mut self, removed_len: usize) {
        if self.entries.is_empty() {
            self.min_len = 0;
            self.max_len = 0;
            return;
        }
        if removed_len == self.min_len || removed_len == self.max_len {
            // min/max are order-insensitive reductions, so scanning the
            // hash map directly is fine (two passes on a cold path beats
            // an order-dependent fold).
            self.min_len = self.entries.keys().map(Name::len).min().unwrap_or(0);
            self.max_len = self.entries.keys().map(Name::len).max().unwrap_or(0);
        }
    }

    /// Remove every next hop through `face` (face destruction).
    pub fn remove_face(&mut self, face: FaceId) {
        let mut prefixes: Vec<Name> = self.entries.keys().cloned().collect();
        prefixes.sort_unstable();
        for p in prefixes {
            self.remove_nexthop(&p, face);
        }
    }

    /// Remove an entire entry. Returns true if it existed.
    pub fn remove_entry(&mut self, prefix: &Name) -> bool {
        let removed = self.entries.remove(prefix).is_some();
        if removed {
            self.recompute_len_bounds(prefix.len());
        }
        removed
    }

    /// Exact-match lookup (management use).
    pub fn entry(&self, prefix: &Name) -> Option<&FibEntry> {
        self.entries.get(prefix)
    }

    /// Longest-prefix-match lookup: the entry with the most components whose
    /// prefix matches `name`. Allocation-free: probes with borrowed prefix
    /// slices of `name`, never materializing owned prefixes.
    pub fn lookup(&self, name: &Name) -> Option<&FibEntry> {
        self.lookup_components(name.components())
    }

    /// Longest-prefix-match over a borrowed view (see [`NameSlice`]).
    pub fn lookup_slice(&self, name: NameSlice<'_>) -> Option<&FibEntry> {
        self.lookup_components(name.components())
    }

    /// Longest-prefix-match over a raw component slice. The walk is bounded
    /// by the shortest/longest registered prefix lengths, so only prefixes
    /// that could possibly match are hashed.
    pub fn lookup_components(&self, comps: &[NameComponent]) -> Option<&FibEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let hi = self.max_len.min(comps.len());
        for k in (self.min_len..=hi).rev() {
            if let Some(entry) = self.entries.get(&comps[..k]) {
                return Some(entry);
            }
        }
        None
    }

    /// Iterate entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &FibEntry> {
        // lidc-lint: allow(unordered-iter) reason="order-unspecified accessor by contract; only property tests consume it, and they assert order-insensitive invariants"
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64) -> FaceId {
        FaceId::from_raw(id)
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/ndn"), f(1), 10);
        fib.add_nexthop(name!("/ndn/k8s"), f(2), 10);
        fib.add_nexthop(name!("/ndn/k8s/compute"), f(3), 10);
        let hit = fib.lookup(&name!("/ndn/k8s/compute/mem=4")).unwrap();
        assert_eq!(hit.prefix, name!("/ndn/k8s/compute"));
        let hit = fib.lookup(&name!("/ndn/k8s/data/x")).unwrap();
        assert_eq!(hit.prefix, name!("/ndn/k8s"));
        let hit = fib.lookup(&name!("/ndn/other")).unwrap();
        assert_eq!(hit.prefix, name!("/ndn"));
        assert!(fib.lookup(&name!("/web/x")).is_none());
    }

    #[test]
    fn root_prefix_matches_everything() {
        let mut fib = Fib::new();
        fib.add_nexthop(Name::root(), f(9), 1);
        assert_eq!(fib.lookup(&name!("/anything/at/all")).unwrap().prefix, Name::root());
    }

    #[test]
    fn nexthops_sorted_by_cost_then_face() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(3), 20);
        fib.add_nexthop(name!("/a"), f(1), 10);
        fib.add_nexthop(name!("/a"), f(2), 10);
        let hops = &fib.entry(&name!("/a")).unwrap().nexthops;
        assert_eq!(
            hops.iter().map(|nh| nh.face).collect::<Vec<_>>(),
            vec![f(1), f(2), f(3)]
        );
    }

    #[test]
    fn add_same_face_updates_cost() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(1), 10);
        fib.add_nexthop(name!("/a"), f(1), 5);
        let hops = &fib.entry(&name!("/a")).unwrap().nexthops;
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].cost, 5);
    }

    #[test]
    fn remove_last_nexthop_drops_entry() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(1), 10);
        assert!(fib.remove_nexthop(&name!("/a"), f(1)));
        assert!(fib.entry(&name!("/a")).is_none());
        assert!(!fib.remove_nexthop(&name!("/a"), f(1)));
        assert!(fib.is_empty());
    }

    #[test]
    fn remove_face_sweeps_all_entries() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(1), 10);
        fib.add_nexthop(name!("/a"), f(2), 10);
        fib.add_nexthop(name!("/b"), f(1), 10);
        fib.remove_face(f(1));
        assert_eq!(fib.entry(&name!("/a")).unwrap().nexthops[0].face, f(2));
        assert!(fib.entry(&name!("/b")).is_none());
        assert_eq!(fib.len(), 1);
    }

    /// Naive reference implementation for the property test.
    fn naive_lpm<'a>(entries: &'a [(Name, FaceId)], lookup: &Name) -> Option<&'a Name> {
        entries
            .iter()
            .filter(|(p, _)| p.is_prefix_of(lookup))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, _)| p)
    }

    #[test]
    fn lookup_slice_and_components_agree_with_lookup() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/ndn"), f(1), 10);
        fib.add_nexthop(name!("/ndn/k8s/compute"), f(3), 10);
        let lookup = name!("/ndn/k8s/compute/mem=4/extra");
        let by_name = fib.lookup(&lookup).map(|e| &e.prefix);
        let by_slice = fib.lookup_slice(lookup.as_slice()).map(|e| &e.prefix);
        let by_comps = fib.lookup_components(lookup.components()).map(|e| &e.prefix);
        assert_eq!(by_name, by_slice);
        assert_eq!(by_name, by_comps);
        assert_eq!(by_name, Some(&name!("/ndn/k8s/compute")));
        // Borrowed-view lookups on truncated slices match owned-prefix
        // lookups at every depth.
        for k in 0..=lookup.len() {
            assert_eq!(
                fib.lookup_components(&lookup.components()[..k]).map(|e| &e.prefix),
                fib.lookup(&lookup.prefix(k)).map(|e| &e.prefix),
                "depth {k}"
            );
        }
    }

    #[test]
    fn binary_components_route_correctly() {
        // Non-UTF-8 components: prefixes and lookups must match on raw
        // bytes, not on any text interpretation.
        let bin_a = NameComponent::generic(vec![0u8, 159, 146, 150]); // invalid UTF-8
        let bin_b = NameComponent::generic(vec![255u8, 0, 254]);
        let long_bin = NameComponent::generic(vec![0xEEu8; 200]); // spills inline cap
        let p1 = Name::root().child(bin_a.clone());
        let p2 = Name::root().child(bin_a.clone()).child(bin_b.clone());
        let p3 = Name::root().child(long_bin.clone());
        let mut fib = Fib::new();
        fib.add_nexthop(p1.clone(), f(1), 1);
        fib.add_nexthop(p2.clone(), f(2), 1);
        fib.add_nexthop(p3.clone(), f(3), 1);
        assert!(bin_a.as_str().is_none(), "component is genuinely non-UTF-8");

        let deep = p2.clone().child(NameComponent::generic(vec![9u8]));
        assert_eq!(fib.lookup(&deep).unwrap().prefix, p2, "longest binary prefix wins");
        let sibling = p1.clone().child(NameComponent::generic(vec![255u8, 0, 255]));
        assert_eq!(fib.lookup(&sibling).unwrap().prefix, p1, "near-miss byte falls back");
        let long_child = p3.clone().child(bin_b.clone());
        assert_eq!(fib.lookup(&long_child).unwrap().prefix, p3, "spilled values match by content");
        // A name sharing no prefix does not match.
        assert!(fib.lookup(&Name::root().child(bin_b)).is_none());
        // Borrowed views agree on binary names too.
        for probe in [&deep, &sibling, &long_child] {
            assert_eq!(
                fib.lookup(probe).map(|e| &e.prefix),
                fib.lookup_components(probe.components()).map(|e| &e.prefix),
            );
        }
    }

    #[test]
    fn length_bounds_track_removals() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(1), 1);
        fib.add_nexthop(name!("/a/b/c/d/e"), f(2), 1);
        let deep = name!("/a/b/c/d/e/f/g");
        assert_eq!(fib.lookup(&deep).unwrap().prefix, name!("/a/b/c/d/e"));
        fib.remove_nexthop(&name!("/a/b/c/d/e"), f(2));
        assert_eq!(fib.lookup(&deep).unwrap().prefix, name!("/a"));
        fib.remove_entry(&name!("/a"));
        assert!(fib.lookup(&deep).is_none());
        assert!(fib.is_empty());
        // Re-adding after emptiness resets the bounds.
        fib.add_nexthop(name!("/x/y"), f(3), 1);
        assert_eq!(fib.lookup(&name!("/x/y/z")).unwrap().prefix, name!("/x/y"));
        assert!(fib.lookup(&name!("/x")).is_none());
    }

    #[test]
    fn lpm_matches_naive_reference_on_random_tables() {
        use lidc_simcore::rng::DetRng;
        let mut rng = DetRng::new(0xF1B);
        let vocab = ["a", "b", "c", "data", "compute"];
        for _ in 0..200 {
            let mut fib = Fib::new();
            let mut entries: Vec<(Name, FaceId)> = Vec::new();
            let n_entries = rng.next_below(12) + 1;
            for i in 0..n_entries {
                let depth = rng.next_below(4) + 1;
                let mut n = Name::root();
                for _ in 0..depth {
                    n = n.child_str(vocab[rng.next_below(vocab.len() as u64) as usize]);
                }
                // Skip duplicate prefixes in the reference to keep it simple.
                if entries.iter().any(|(p, _)| *p == n) {
                    continue;
                }
                fib.add_nexthop(n.clone(), f(i), 1);
                entries.push((n, f(i)));
            }
            for _ in 0..20 {
                let depth = rng.next_below(5);
                let mut lookup = Name::root();
                for _ in 0..depth {
                    lookup = lookup.child_str(vocab[rng.next_below(vocab.len() as u64) as usize]);
                }
                let got = fib.lookup(&lookup).map(|e| &e.prefix);
                let want = naive_lpm(&entries, &lookup);
                assert_eq!(got, want, "lookup {lookup}");
            }
        }
    }
}
