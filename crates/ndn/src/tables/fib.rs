//! Forwarding Information Base: name prefixes → ranked next hops.
//!
//! Lookup is longest-prefix match in the NDN sense (component-granular, not
//! byte-granular). The implementation keeps a `HashMap` keyed by prefix and
//! walks the lookup name's prefixes from longest to shortest — O(k) map
//! probes for a k-component name, which beats a trie for the short names
//! LIDC uses while staying trivially correct (property-tested against a
//! naive reference in this module).

use std::collections::HashMap;

use crate::face::FaceId;
use crate::name::Name;

/// One candidate next hop for a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Outgoing face.
    pub face: FaceId,
    /// Routing cost; lower is preferred.
    pub cost: u32,
}

/// A FIB entry: the prefix plus its next hops sorted by ascending cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibEntry {
    /// Registered prefix.
    pub prefix: Name,
    /// Next hops, ascending cost (ties broken by face id for determinism).
    pub nexthops: Vec<NextHop>,
}

/// The forwarding table.
#[derive(Debug, Default)]
pub struct Fib {
    entries: HashMap<Name, FibEntry>,
}

impl Fib {
    /// Empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Number of entries (prefixes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add (or update the cost of) a next hop for `prefix`.
    pub fn add_nexthop(&mut self, prefix: Name, face: FaceId, cost: u32) {
        let entry = self.entries.entry(prefix.clone()).or_insert_with(|| FibEntry {
            prefix,
            nexthops: Vec::new(),
        });
        match entry.nexthops.iter_mut().find(|nh| nh.face == face) {
            Some(nh) => nh.cost = cost,
            None => entry.nexthops.push(NextHop { face, cost }),
        }
        entry
            .nexthops
            .sort_by_key(|nh| (nh.cost, nh.face.raw()));
    }

    /// Remove one next hop; drops the entry when it was the last hop.
    /// Returns true if something was removed.
    pub fn remove_nexthop(&mut self, prefix: &Name, face: FaceId) -> bool {
        let Some(entry) = self.entries.get_mut(prefix) else {
            return false;
        };
        let before = entry.nexthops.len();
        entry.nexthops.retain(|nh| nh.face != face);
        let removed = entry.nexthops.len() != before;
        if entry.nexthops.is_empty() {
            self.entries.remove(prefix);
        }
        removed
    }

    /// Remove every next hop through `face` (face destruction).
    pub fn remove_face(&mut self, face: FaceId) {
        let prefixes: Vec<Name> = self.entries.keys().cloned().collect();
        for p in prefixes {
            self.remove_nexthop(&p, face);
        }
    }

    /// Remove an entire entry. Returns true if it existed.
    pub fn remove_entry(&mut self, prefix: &Name) -> bool {
        self.entries.remove(prefix).is_some()
    }

    /// Exact-match lookup (management use).
    pub fn entry(&self, prefix: &Name) -> Option<&FibEntry> {
        self.entries.get(prefix)
    }

    /// Longest-prefix-match lookup: the entry with the most components whose
    /// prefix matches `name`.
    pub fn lookup(&self, name: &Name) -> Option<&FibEntry> {
        for k in (0..=name.len()).rev() {
            let prefix = name.prefix(k);
            if let Some(entry) = self.entries.get(&prefix) {
                return Some(entry);
            }
        }
        None
    }

    /// Iterate entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &FibEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64) -> FaceId {
        FaceId::from_raw(id)
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/ndn"), f(1), 10);
        fib.add_nexthop(name!("/ndn/k8s"), f(2), 10);
        fib.add_nexthop(name!("/ndn/k8s/compute"), f(3), 10);
        let hit = fib.lookup(&name!("/ndn/k8s/compute/mem=4")).unwrap();
        assert_eq!(hit.prefix, name!("/ndn/k8s/compute"));
        let hit = fib.lookup(&name!("/ndn/k8s/data/x")).unwrap();
        assert_eq!(hit.prefix, name!("/ndn/k8s"));
        let hit = fib.lookup(&name!("/ndn/other")).unwrap();
        assert_eq!(hit.prefix, name!("/ndn"));
        assert!(fib.lookup(&name!("/web/x")).is_none());
    }

    #[test]
    fn root_prefix_matches_everything() {
        let mut fib = Fib::new();
        fib.add_nexthop(Name::root(), f(9), 1);
        assert_eq!(fib.lookup(&name!("/anything/at/all")).unwrap().prefix, Name::root());
    }

    #[test]
    fn nexthops_sorted_by_cost_then_face() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(3), 20);
        fib.add_nexthop(name!("/a"), f(1), 10);
        fib.add_nexthop(name!("/a"), f(2), 10);
        let hops = &fib.entry(&name!("/a")).unwrap().nexthops;
        assert_eq!(
            hops.iter().map(|nh| nh.face).collect::<Vec<_>>(),
            vec![f(1), f(2), f(3)]
        );
    }

    #[test]
    fn add_same_face_updates_cost() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(1), 10);
        fib.add_nexthop(name!("/a"), f(1), 5);
        let hops = &fib.entry(&name!("/a")).unwrap().nexthops;
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].cost, 5);
    }

    #[test]
    fn remove_last_nexthop_drops_entry() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(1), 10);
        assert!(fib.remove_nexthop(&name!("/a"), f(1)));
        assert!(fib.entry(&name!("/a")).is_none());
        assert!(!fib.remove_nexthop(&name!("/a"), f(1)));
        assert!(fib.is_empty());
    }

    #[test]
    fn remove_face_sweeps_all_entries() {
        let mut fib = Fib::new();
        fib.add_nexthop(name!("/a"), f(1), 10);
        fib.add_nexthop(name!("/a"), f(2), 10);
        fib.add_nexthop(name!("/b"), f(1), 10);
        fib.remove_face(f(1));
        assert_eq!(fib.entry(&name!("/a")).unwrap().nexthops[0].face, f(2));
        assert!(fib.entry(&name!("/b")).is_none());
        assert_eq!(fib.len(), 1);
    }

    /// Naive reference implementation for the property test.
    fn naive_lpm<'a>(entries: &'a [(Name, FaceId)], lookup: &Name) -> Option<&'a Name> {
        entries
            .iter()
            .filter(|(p, _)| p.is_prefix_of(lookup))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, _)| p)
    }

    #[test]
    fn lpm_matches_naive_reference_on_random_tables() {
        use lidc_simcore::rng::DetRng;
        let mut rng = DetRng::new(0xF1B);
        let vocab = ["a", "b", "c", "data", "compute"];
        for _ in 0..200 {
            let mut fib = Fib::new();
            let mut entries: Vec<(Name, FaceId)> = Vec::new();
            let n_entries = rng.next_below(12) + 1;
            for i in 0..n_entries {
                let depth = rng.next_below(4) + 1;
                let mut n = Name::root();
                for _ in 0..depth {
                    n = n.child_str(vocab[rng.next_below(vocab.len() as u64) as usize]);
                }
                // Skip duplicate prefixes in the reference to keep it simple.
                if entries.iter().any(|(p, _)| *p == n) {
                    continue;
                }
                fib.add_nexthop(n.clone(), f(i), 1);
                entries.push((n, f(i)));
            }
            for _ in 0..20 {
                let depth = rng.next_below(5);
                let mut lookup = Name::root();
                for _ in 0..depth {
                    lookup = lookup.child_str(vocab[rng.next_below(vocab.len() as u64) as usize]);
                }
                let got = fib.lookup(&lookup).map(|e| &e.prefix);
                let want = naive_lpm(&entries, &lookup);
                assert_eq!(got, want, "lookup {lookup}");
            }
        }
    }
}
