//! Content Store: the forwarder's in-network cache.
//!
//! # Two-tier budget
//!
//! The store enforces **two** limits at once: an entry-count capacity (how
//! many Data packets may be resident) and a **byte budget** (how much memory
//! they may collectively occupy, payload + name). Count-only budgeting —
//! the seed behaviour — let one multi-GiB BLAST result segment occupy the
//! same "one slot" as a 1 KiB status object, so a bulk transfer could pin
//! gigabytes while tiny hot results were evicted around it. With a byte
//! budget ([`CsConfig::budget_bytes`]; 0 means *no byte limit*), every
//! insert evicts LRU entries until both limits hold, and any single Data
//! whose cost exceeds what its class may ever use is **refused outright**
//! (an admission rejection) instead of mass-evicting live entries it would
//! immediately crowd out.
//!
//! # Segment-aware admission
//!
//! Entries are split into two cost classes by [`CsConfig::bulk_threshold`]:
//! *bulk* entries (cost ≥ threshold — in practice the 1 MiB segments of a
//! segmented lake object, cf. `lidc-datalake`'s `DEFAULT_SEGMENT_SIZE`) and
//! *small* entries (status objects, submit acks, small results). Bulk
//! entries may only use the budget left after a configurable
//! [`CsConfig::protected_fraction`] is reserved for small entries, so a
//! multi-segment bulk transfer saturates its own share and then recycles
//! its *own* LRU segments — it can never flush the store of hot small
//! results while the small class is within its reserve. Each class has its
//! own intrusive LRU list; exact global LRU order (used for count-driven
//! eviction) is recovered by comparing the two tails' recency ticks.
//!
//! # Probe path
//!
//! The probe path is allocation-free: exact lookups hit the name-ordered
//! `BTreeMap` directly, prefix lookups range-scan it with a **borrowed**
//! component slice (no owned `Name` is built), and recency is tracked by
//! intrusive doubly-linked LRU lists over a slab of reusable slots — a
//! cache hit relinks indices instead of allocating. Byte accounting is pure
//! arithmetic ([`ContentStore::cost_of`]) and adds no allocation anywhere.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::name::{Name, NameComponent};
use crate::packet::{name_body_len, Data, Interest};
use lidc_simcore::time::SimTime;

/// Slab slot index; `NONE` marks list ends and free slots.
const NONE: usize = usize::MAX;

/// Cost-class boundary: entries this large or larger are *bulk* (segment
/// class). Matches the data lake's default segment payload size
/// (`lidc_datalake::segment::DEFAULT_SEGMENT_SIZE`, 1 MiB) so a segmented
/// object's full-size segments classify as bulk; a cross-crate test in
/// `lidc-datalake` pins the two constants together.
pub const DEFAULT_BULK_THRESHOLD: u64 = 1 << 20;

/// The byte budget a count-capacity deserves by default: one default-sized
/// segment per entry slot. `ForwarderConfig` and the overlay derive their
/// `cs_budget_bytes` defaults from this.
pub fn default_budget_bytes(capacity: usize) -> u64 {
    (capacity as u64).saturating_mul(DEFAULT_BULK_THRESHOLD)
}

/// Content Store tuning knobs (see the module docs for the policy).
#[derive(Debug, Clone)]
pub struct CsConfig {
    /// Entry capacity in packets. 0 disables the store entirely.
    pub capacity: usize,
    /// Byte budget over payload + name cost. **0 means no byte limit**
    /// (count-only budgeting, the seed behaviour) — it does *not* mean
    /// "reject everything"; disabling the store is `capacity: 0`.
    pub budget_bytes: u64,
    /// Entries with cost ≥ this are the bulk (segment) class.
    pub bulk_threshold: u64,
    /// Fraction of `budget_bytes` reserved for sub-threshold entries; bulk
    /// entries may never occupy more than `(1 - fraction) × budget_bytes`.
    /// Clamped to `[0, 1]`. Irrelevant when `budget_bytes` is 0.
    pub protected_fraction: f64,
}

impl Default for CsConfig {
    fn default() -> Self {
        CsConfig {
            capacity: 4096,
            budget_bytes: default_budget_bytes(4096),
            bulk_threshold: DEFAULT_BULK_THRESHOLD,
            protected_fraction: 0.25,
        }
    }
}

impl CsConfig {
    /// Count-only config: `capacity` entries, no byte limit.
    pub fn count_only(capacity: usize) -> Self {
        CsConfig {
            capacity,
            budget_bytes: 0,
            ..CsConfig::default()
        }
    }
}

#[derive(Debug, Clone)]
struct CsRecord {
    data: Data,
    /// Instant after which this record no longer satisfies MustBeFresh.
    fresh_until: Option<SimTime>,
    /// Index of this record's slot in the LRU slab.
    slot: usize,
}

/// One slab slot: a doubly-linked LRU list node in its class's list. Freed
/// slots are recycled through a free list, so steady-state churn allocates
/// nothing.
#[derive(Debug, Clone)]
struct Slot {
    name: Name,
    prev: usize,
    next: usize,
    /// Monotonic recency stamp; comparing the two class tails' ticks
    /// recovers the exact global LRU entry.
    tick: u64,
    /// Byte cost ([`ContentStore::cost_of`]) charged to the budget.
    cost: u64,
    /// Which class list this slot is linked into.
    bulk: bool,
}

/// The Content Store.
#[derive(Debug)]
pub struct ContentStore {
    config: CsConfig,
    /// `budget_bytes` minus the small-class reserve (0 when unbudgeted).
    bulk_budget: u64,
    /// Name-ordered records (canonical order enables prefix range scans).
    records: BTreeMap<Name, CsRecord>,
    /// LRU slab shared by both class lists.
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Small-class list; `head` is most-recent, `tail` least-recent.
    small_head: usize,
    small_tail: usize,
    /// Bulk-class list.
    bulk_head: usize,
    bulk_tail: usize,
    /// Monotonic recency counter.
    tick: u64,
    /// Bytes held by each class (`bytes_used()` is their sum).
    bytes_small: u64,
    bytes_bulk: u64,
    hits: u64,
    misses: u64,
    /// Slots observed stale during the current MustBeFresh probe; reused
    /// across lookups so eviction stays allocation-free in steady state.
    stale_scratch: Vec<usize>,
    /// Lifetime count of records evicted because a MustBeFresh probe
    /// observed them stale (diagnostics).
    stale_evictions: u64,
    /// Lifetime LRU evictions (count- or byte-driven) and their bytes.
    evictions: u64,
    evicted_bytes: u64,
    /// Subset of `evictions` forced by the byte budget rather than the
    /// entry capacity.
    byte_evictions: u64,
    /// Data refused at admission (cost exceeds what its class may ever
    /// hold).
    admission_rejections: u64,
}

impl ContentStore {
    /// Create a count-only store holding at most `capacity` Data packets
    /// with **no byte limit** (the pre-byte-budget behaviour). A capacity of
    /// zero disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(CsConfig::count_only(capacity))
    }

    /// Create a store with the full two-tier budget configuration.
    pub fn with_config(config: CsConfig) -> Self {
        let protected =
            (config.budget_bytes as f64 * config.protected_fraction.clamp(0.0, 1.0)) as u64;
        let bulk_budget = config.budget_bytes.saturating_sub(protected);
        ContentStore {
            bulk_budget,
            config,
            records: BTreeMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            small_head: NONE,
            small_tail: NONE,
            bulk_head: NONE,
            bulk_tail: NONE,
            tick: 0,
            bytes_small: 0,
            bytes_bulk: 0,
            hits: 0,
            misses: 0,
            stale_scratch: Vec::new(),
            stale_evictions: 0,
            evictions: 0,
            evicted_bytes: 0,
            byte_evictions: 0,
            admission_rejections: 0,
        }
    }

    /// The byte cost an entry for `data` is charged against the budget:
    /// payload length plus encoded name length. Pure arithmetic (no
    /// encoding, no allocation).
    pub fn cost_of(data: &Data) -> u64 {
        data.content.len() as u64 + name_body_len(&data.name) as u64
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Bytes currently held (sum of [`ContentStore::cost_of`] over every
    /// resident record).
    pub fn bytes_used(&self) -> u64 {
        self.bytes_small + self.bytes_bulk
    }

    /// The configured byte budget (0 = no byte limit).
    pub fn budget_bytes(&self) -> u64 {
        self.config.budget_bytes
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime LRU evictions (count- and byte-driven; stale-probe
    /// evictions are counted separately).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total bytes reclaimed by LRU evictions.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }

    /// Lifetime evictions forced by the byte budget specifically.
    pub fn byte_evictions(&self) -> u64 {
        self.byte_evictions
    }

    /// Lifetime Data refused at admission (oversized for their class
    /// budget).
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections
    }

    fn unlink(&mut self, slot: usize) {
        let Slot {
            prev, next, bulk, ..
        // lidc-lint: allow(panic-path) reason="slot indexes come from the records map or the intrusive lists, which only ever hold live arena entries"
        } = self.slots[slot];
        if prev != NONE {
            // lidc-lint: allow(panic-path) reason="prev != NONE is a live neighbor index maintained by this arena's lists"
            self.slots[prev].next = next;
        } else if bulk {
            self.bulk_head = next;
        } else {
            self.small_head = next;
        }
        if next != NONE {
            // lidc-lint: allow(panic-path) reason="next != NONE is a live neighbor index maintained by this arena's lists"
            self.slots[next].prev = prev;
        } else if bulk {
            self.bulk_tail = prev;
        } else {
            self.small_tail = prev;
        }
    }

    fn link_front(&mut self, slot: usize) {
        // lidc-lint: allow(panic-path) reason="slot indexes come from the records map or the intrusive lists, which only ever hold live arena entries"
        let bulk = self.slots[slot].bulk;
        let head = if bulk { self.bulk_head } else { self.small_head };
        // lidc-lint: allow(panic-path) reason="slot indexes come from the records map or the intrusive lists, which only ever hold live arena entries"
        self.slots[slot].prev = NONE;
        // lidc-lint: allow(panic-path) reason="slot indexes come from the records map or the intrusive lists, which only ever hold live arena entries"
        self.slots[slot].next = head;
        if head != NONE {
            // lidc-lint: allow(panic-path) reason="head != NONE is the live list head maintained by this arena"
            self.slots[head].prev = slot;
        }
        if bulk {
            self.bulk_head = slot;
            if self.bulk_tail == NONE {
                self.bulk_tail = slot;
            }
        } else {
            self.small_head = slot;
            if self.small_tail == NONE {
                self.small_tail = slot;
            }
        }
    }

    fn alloc_slot(&mut self, name: Name, cost: u64, bulk: bool) -> usize {
        let slot = Slot {
            name,
            prev: NONE,
            next: NONE,
            tick: self.tick,
            cost,
            bulk,
        };
        match self.free.pop() {
            Some(i) => {
                // lidc-lint: allow(panic-path) reason="the free list only holds indexes of previously allocated slots"
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        }
    }

    /// Whether cost `c` classifies as bulk (segment class).
    fn is_bulk(&self, cost: u64) -> bool {
        cost >= self.config.bulk_threshold
    }

    /// Charge `cost` to a class's byte counter.
    fn charge(&mut self, cost: u64, bulk: bool) {
        if bulk {
            self.bytes_bulk += cost;
        } else {
            self.bytes_small += cost;
        }
    }

    /// Release `cost` from a class's byte counter.
    fn release(&mut self, cost: u64, bulk: bool) {
        if bulk {
            self.bytes_bulk -= cost;
        } else {
            self.bytes_small -= cost;
        }
    }

    /// Insert a Data packet observed at `now`.
    ///
    /// Admission: with a byte budget in force, a Data whose cost exceeds
    /// what its class may ever occupy (the whole budget for small entries,
    /// the unprotected share for bulk ones) is refused without evicting
    /// anything — it could only be admitted by flushing live entries it
    /// would immediately crowd out again. Otherwise the entry is linked
    /// MRU and LRU entries are evicted until the entry capacity, the bulk
    /// class share, and the total byte budget all hold.
    pub fn insert(&mut self, data: Data, now: SimTime) {
        if self.config.capacity == 0 {
            return;
        }
        let cost = Self::cost_of(&data);
        let bulk = self.is_bulk(cost);
        if self.config.budget_bytes > 0 {
            let class_budget = if bulk {
                self.bulk_budget
            } else {
                self.config.budget_bytes
            };
            if cost > class_budget {
                // Refused: any resident entry under this name stays.
                self.admission_rejections += 1;
                return;
            }
        }
        let name = data.name.clone();
        let fresh_until = data.freshness.map(|f| now + f);
        self.tick += 1;
        match self.records.get_mut(&name) {
            Some(rec) => {
                let slot = rec.slot;
                rec.data = data;
                rec.fresh_until = fresh_until;
                // Re-account: the replacement may change cost and class.
                self.unlink(slot);
                // lidc-lint: allow(panic-path) reason="slot was found in the records map for this name just above"
                let (old_cost, old_bulk) = (self.slots[slot].cost, self.slots[slot].bulk);
                self.release(old_cost, old_bulk);
                // lidc-lint: allow(panic-path) reason="slot was found in the records map for this name just above"
                self.slots[slot].cost = cost;
                // lidc-lint: allow(panic-path) reason="slot was found in the records map for this name just above"
                self.slots[slot].bulk = bulk;
                // lidc-lint: allow(panic-path) reason="slot was found in the records map for this name just above"
                self.slots[slot].tick = self.tick;
                self.charge(cost, bulk);
                self.link_front(slot);
            }
            None => {
                let slot = self.alloc_slot(name.clone(), cost, bulk);
                self.link_front(slot);
                self.charge(cost, bulk);
                self.records.insert(
                    name,
                    CsRecord {
                        data,
                        fresh_until,
                        slot,
                    },
                );
            }
        }
        self.enforce_budgets();
    }

    /// The exact global LRU entry: the older of the two class tails.
    fn global_lru(&self) -> usize {
        match (self.small_tail, self.bulk_tail) {
            (NONE, b) => b,
            (s, NONE) => s,
            (s, b) => {
                // lidc-lint: allow(panic-path) reason="both candidate heads were checked against NONE by the match arms"
                if self.slots[s].tick <= self.slots[b].tick {
                    s
                } else {
                    b
                }
            }
        }
    }

    /// Evict LRU entries until the entry capacity, the bulk-class share,
    /// and the total byte budget all hold. Admission pre-checks guarantee
    /// the just-inserted (MRU) entry is never its own victim.
    fn enforce_budgets(&mut self) {
        while self.records.len() > self.config.capacity {
            let victim = self.global_lru();
            if victim == NONE {
                break;
            }
            self.evict_for_pressure(victim, false);
        }
        if self.config.budget_bytes == 0 {
            return;
        }
        // Bulk class share first: a segment stream recycles its own LRU
        // segments instead of touching the small class.
        while self.bytes_bulk > self.bulk_budget {
            let victim = self.bulk_tail;
            if victim == NONE {
                break;
            }
            self.evict_for_pressure(victim, true);
        }
        // Total budget. Reaching here over budget implies the small class
        // exceeds its reserve (bulk is already within its share), so plain
        // global-LRU choice cannot starve a within-reserve small class.
        while self.bytes_used() > self.config.budget_bytes {
            let victim = self.global_lru();
            if victim == NONE {
                break;
            }
            self.evict_for_pressure(victim, true);
        }
    }

    fn evict_for_pressure(&mut self, slot: usize, byte_driven: bool) {
        // lidc-lint: allow(panic-path) reason="slot comes from a list head the caller checked against NONE"
        let cost = self.slots[slot].cost;
        self.evict_slot(slot);
        self.evictions += 1;
        self.evicted_bytes += cost;
        if byte_driven {
            self.byte_evictions += 1;
        }
    }

    /// Remove the record occupying `slot`, release its bytes, and recycle
    /// the slot.
    fn evict_slot(&mut self, slot: usize) {
        self.unlink(slot);
        // lidc-lint: allow(panic-path) reason="slot indexes come from the records map or the intrusive lists, which only ever hold live arena entries"
        let (cost, bulk) = (self.slots[slot].cost, self.slots[slot].bulk);
        self.release(cost, bulk);
        // lidc-lint: allow(panic-path) reason="slot indexes come from the records map or the intrusive lists, which only ever hold live arena entries"
        let name = std::mem::take(&mut self.slots[slot].name);
        self.records.remove(&name);
        self.free.push(slot);
    }

    fn mark_used(&mut self, slot: usize) {
        self.tick += 1;
        // lidc-lint: allow(panic-path) reason="slot comes from the records map lookup performed by the caller"
        self.slots[slot].tick = self.tick;
        // lidc-lint: allow(panic-path) reason="slot comes from the records map lookup performed by the caller"
        let head = if self.slots[slot].bulk {
            self.bulk_head
        } else {
            self.small_head
        };
        if head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Find a cached Data satisfying `interest` at `now`.
    ///
    /// Exact-name match unless `CanBePrefix`; `MustBeFresh` filters records
    /// past their freshness period. The leftmost (canonical-order) match
    /// wins, as in NFD. The probe itself performs no heap allocation; a hit
    /// returns an O(1) clone of the cached packet (refcount bumps).
    ///
    /// Records a `MustBeFresh` probe observes stale are **evicted**: stale
    /// Data can never satisfy a fresh Interest again, and leaving it
    /// resident would pin an LRU slot and lengthen every CanBePrefix range
    /// scan over it until capacity pressure finally wins (the stale-pinning
    /// bug). Eviction frees the slot (and its bytes) for live content
    /// immediately.
    pub fn lookup(&mut self, interest: &Interest, now: SimTime) -> Option<Data> {
        let must_be_fresh = interest.must_be_fresh;
        let mut stale = std::mem::take(&mut self.stale_scratch);
        stale.clear();
        // Capture the packet clone (O(1) refcount bumps) during the probe:
        // one map traversal per hit, no re-find.
        let found: Option<(usize, Data)> = if interest.can_be_prefix {
            // Range-scan from the prefix using the borrowed component
            // slice; `Name: Borrow<[NameComponent]>` makes this key-free.
            let prefix: &[NameComponent] = interest.name.components();
            let mut hit = None;
            for (name, rec) in self
                .records
                .range::<[NameComponent], _>((Bound::Included(prefix), Bound::Unbounded))
            {
                if prefix.len() > name.len() || *prefix != name.components()[..prefix.len()] {
                    break;
                }
                if Self::satisfies_freshness(rec, must_be_fresh, now) {
                    hit = Some((rec.slot, rec.data.clone()));
                    break;
                }
                // Only reachable under MustBeFresh: the record is stale.
                stale.push(rec.slot);
            }
            hit
        } else {
            match self.records.get(&interest.name) {
                Some(rec) if Self::satisfies_freshness(rec, must_be_fresh, now) => {
                    Some((rec.slot, rec.data.clone()))
                }
                Some(rec) => {
                    stale.push(rec.slot);
                    None
                }
                None => None,
            }
        };
        for slot in stale.drain(..) {
            self.evict_slot(slot);
            self.stale_evictions += 1;
        }
        self.stale_scratch = stale;
        match found {
            Some((slot, data)) => {
                self.mark_used(slot);
                self.hits += 1;
                Some(data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Lifetime count of records evicted by stale-observing MustBeFresh
    /// probes.
    pub fn stale_evictions(&self) -> u64 {
        self.stale_evictions
    }

    fn satisfies_freshness(rec: &CsRecord, must_be_fresh: bool, now: SimTime) -> bool {
        if !must_be_fresh {
            return true;
        }
        match rec.fresh_until {
            Some(t) => now < t,
            // No freshness period means "never fresh" under MustBeFresh
            // (spec: FreshnessPeriod absent ⇒ non-fresh immediately).
            None => false,
        }
    }

    /// Canonical-order walk of the records under `prefix`, yielding
    /// `(name, slot, fresh_until, data)`. The sharded store's prefix lookup
    /// k-way-merges these walks across shards so it visits records in
    /// exactly the order a single-shard walk would (same winner, same
    /// stale-eviction set).
    pub(crate) fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [NameComponent],
    ) -> impl Iterator<Item = (&'a Name, usize, Option<SimTime>, &'a Data)> + 'a {
        self.records
            .range::<[NameComponent], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(name, _)| {
                prefix.len() <= name.len() && *prefix == name.components()[..prefix.len()]
            })
            .map(|(name, rec)| (name, rec.slot, rec.fresh_until, &rec.data))
    }

    /// Evict a record a MustBeFresh probe observed stale (sharded-lookup
    /// hook; mirrors the inline stale eviction in [`ContentStore::lookup`]).
    pub(crate) fn evict_stale(&mut self, slot: usize) {
        self.evict_slot(slot);
        self.stale_evictions += 1;
    }

    /// Account a hit landed through the sharded prefix walk.
    pub(crate) fn record_hit(&mut self, slot: usize) {
        self.mark_used(slot);
        self.hits += 1;
    }

    /// Account a miss landed through the sharded prefix walk.
    pub(crate) fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Drop every record (management/diagnostics).
    pub fn clear(&mut self) {
        self.records.clear();
        self.slots.clear();
        self.free.clear();
        self.small_head = NONE;
        self.small_tail = NONE;
        self.bulk_head = NONE;
        self.bulk_tail = NONE;
        self.bytes_small = 0;
        self.bytes_bulk = 0;
    }

    /// Iterate cached names in canonical order (diagnostics).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.records.keys()
    }

    /// Iterate cached `(name, Data)` pairs in canonical order (diagnostics;
    /// lets tests recompute the byte accounting from first principles).
    pub fn entries(&self) -> impl Iterator<Item = (&Name, &Data)> {
        self.records.iter().map(|(name, rec)| (name, &rec.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_simcore::time::SimDuration;

    fn data(uri: &str) -> Data {
        Data::new(name!(uri), &b"content"[..]).sign_digest()
    }

    fn sized_data(uri: &str, bytes: usize) -> Data {
        Data::new(name!(uri), vec![7u8; bytes]).sign_digest()
    }

    fn fresh_data(uri: &str, fresh: SimDuration) -> Data {
        Data::new(name!(uri), &b"content"[..])
            .with_freshness(fresh)
            .sign_digest()
    }

    /// A store with a byte budget sized in small units for readable tests:
    /// bulk threshold 100 bytes, budget `budget` bytes, 25% protected.
    fn budgeted(capacity: usize, budget: u64) -> ContentStore {
        ContentStore::with_config(CsConfig {
            capacity,
            budget_bytes: budget,
            bulk_threshold: 100,
            protected_fraction: 0.25,
        })
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn exact_match_hit_and_miss() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b"), T0);
        assert!(cs.lookup(&Interest::new(name!("/a/b")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/a")), T0).is_none(), "no prefix without CanBePrefix");
        assert!(cs.lookup(&Interest::new(name!("/a/b/c")), T0).is_none());
        assert_eq!(cs.hits(), 1);
        assert_eq!(cs.misses(), 2);
    }

    #[test]
    fn prefix_match_with_can_be_prefix() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b/seg=0"), T0);
        let i = Interest::new(name!("/a/b")).can_be_prefix(true);
        assert!(cs.lookup(&i, T0).is_some());
        // A sibling prefix must not match.
        let i = Interest::new(name!("/a/c")).can_be_prefix(true);
        assert!(cs.lookup(&i, T0).is_none());
    }

    #[test]
    fn prefix_match_returns_leftmost() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b/seg=1"), T0);
        cs.insert(data("/a/b/seg=0"), T0);
        let i = Interest::new(name!("/a/b")).can_be_prefix(true);
        let hit = cs.lookup(&i, T0).unwrap();
        assert_eq!(hit.name, name!("/a/b/seg=0"), "canonical-leftmost wins");
    }

    #[test]
    fn must_be_fresh_semantics() {
        let mut cs = ContentStore::new(10);
        cs.insert(fresh_data("/f", SimDuration::from_secs(10)), T0);
        cs.insert(data("/stale"), T0);
        let fresh_interest = |uri: &str| Interest::new(name!(uri)).must_be_fresh(true);
        // Within the freshness window.
        assert!(cs
            .lookup(&fresh_interest("/f"), T0 + SimDuration::from_secs(5))
            .is_some());
        // Data without FreshnessPeriod is never fresh under MustBeFresh, but
        // matches a plain Interest (probed first: a MustBeFresh miss evicts).
        assert!(cs
            .lookup(&Interest::new(name!("/stale")), T0 + SimDuration::from_hours(1))
            .is_some());
        assert!(cs.lookup(&fresh_interest("/stale"), T0).is_none());
        // Past the freshness window: a MustBeFresh probe misses and evicts
        // the stale record (see `stale_probe_evicts_record`).
        assert!(cs
            .lookup(&fresh_interest("/f"), T0 + SimDuration::from_secs(10))
            .is_none());
        assert_eq!(cs.stale_evictions(), 2);
    }

    #[test]
    fn stale_probe_evicts_record() {
        // Regression (stale pinning): a MustBeFresh probe that observes a
        // stale record must evict it — otherwise the dead entry occupies an
        // LRU slot and is re-walked by every CanBePrefix scan until
        // capacity pressure finally reclaims it.
        let mut cs = ContentStore::new(2);
        cs.insert(fresh_data("/a", SimDuration::from_secs(1)), T0);
        cs.insert(data("/b"), T0);
        assert_eq!(cs.len(), 2);
        // Probe /a after its freshness lapsed: miss, and the slot frees.
        let t = T0 + SimDuration::from_secs(5);
        assert!(cs.lookup(&Interest::new(name!("/a")).must_be_fresh(true), t).is_none());
        assert_eq!(cs.len(), 1, "stale record no longer occupies capacity");
        assert_eq!(cs.stale_evictions(), 1);
        // The freed slot admits new content without evicting live /b.
        cs.insert(fresh_data("/c", SimDuration::from_secs(60)), t);
        assert_eq!(cs.len(), 2);
        assert!(cs.lookup(&Interest::new(name!("/b")), t).is_some(), "/b survived");
        assert!(cs.lookup(&Interest::new(name!("/c")), t).is_some());
        // A later exact lookup for /a misses outright (it was evicted).
        assert!(cs.lookup(&Interest::new(name!("/a")), t).is_none());
    }

    #[test]
    fn prefix_scan_evicts_every_stale_record_it_walks() {
        let mut cs = ContentStore::new(10);
        // Three stale-by-then segments plus one fresh one under /a.
        for seg in 0..3 {
            cs.insert(
                fresh_data(&format!("/a/seg={seg}"), SimDuration::from_secs(1)),
                T0,
            );
        }
        let t = T0 + SimDuration::from_secs(5);
        cs.insert(fresh_data("/a/seg=3", SimDuration::from_secs(60)), t);
        cs.insert(data("/z"), T0);
        // The fresh prefix probe walks the three stale records (canonical
        // order) before hitting seg=3; all three are evicted.
        let i = Interest::new(name!("/a")).can_be_prefix(true).must_be_fresh(true);
        let hit = cs.lookup(&i, t).unwrap();
        assert_eq!(hit.name, name!("/a/seg=3"));
        assert_eq!(cs.len(), 2, "stale seg=0..2 evicted, seg=3 and /z remain");
        assert_eq!(cs.stale_evictions(), 3);
        // A second identical probe walks nothing stale.
        assert!(cs.lookup(&i, t).is_some());
        assert_eq!(cs.stale_evictions(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/one"), T0);
        cs.insert(data("/two"), T0);
        // Touch /one so /two becomes LRU.
        assert!(cs.lookup(&Interest::new(name!("/one")), T0).is_some());
        cs.insert(data("/three"), T0);
        assert_eq!(cs.len(), 2);
        assert!(cs.lookup(&Interest::new(name!("/one")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/two")), T0).is_none(), "/two evicted");
        assert!(cs.lookup(&Interest::new(name!("/three")), T0).is_some());
    }

    #[test]
    fn reinsert_same_name_replaces() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"), T0);
        let newer = Data::new(name!("/a"), &b"v2"[..]).sign_digest();
        cs.insert(newer.clone(), T0);
        assert_eq!(cs.len(), 1);
        let got = cs.lookup(&Interest::new(name!("/a")), T0).unwrap();
        assert_eq!(got.content, newer.content);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut cs = ContentStore::new(0);
        cs.insert(data("/a"), T0);
        assert!(cs.is_empty());
        assert!(cs.lookup(&Interest::new(name!("/a")), T0).is_none());
    }

    #[test]
    fn zero_capacity_disables_even_with_budget() {
        // capacity 0 disables the store regardless of the byte budget —
        // config plumbing must not read "budget set" as "store enabled".
        let mut cs = ContentStore::with_config(CsConfig {
            capacity: 0,
            budget_bytes: 1 << 30,
            ..CsConfig::default()
        });
        cs.insert(data("/a"), T0);
        assert!(cs.is_empty());
        assert_eq!(cs.bytes_used(), 0);
    }

    #[test]
    fn zero_budget_means_no_byte_limit() {
        // budget_bytes 0 is "count-only" (the seed behaviour), NOT "reject
        // everything" — config plumbing must not invert the two zeros.
        let mut cs = ContentStore::new(4);
        assert_eq!(cs.budget_bytes(), 0);
        for i in 0..4 {
            cs.insert(sized_data(&format!("/big/{i}"), 10 << 20), T0);
        }
        assert_eq!(cs.len(), 4, "arbitrarily large Data admitted");
        assert_eq!(cs.admission_rejections(), 0);
        assert_eq!(cs.byte_evictions(), 0);
        assert!(cs.bytes_used() > 40 << 20);
    }

    #[test]
    fn clear_empties() {
        let mut cs = ContentStore::new(4);
        cs.insert(data("/a"), T0);
        cs.insert(data("/b"), T0);
        cs.clear();
        assert!(cs.is_empty());
        assert_eq!(cs.names().count(), 0);
        assert_eq!(cs.bytes_used(), 0);
    }

    // --- byte budget ---------------------------------------------------------

    #[test]
    fn bytes_used_tracks_payload_and_name() {
        let mut cs = budgeted(16, 10_000);
        let d = sized_data("/x", 50);
        let cost = ContentStore::cost_of(&d);
        assert!(cost > 50, "cost includes the name");
        cs.insert(d, T0);
        assert_eq!(cs.bytes_used(), cost);
        // Replacement re-accounts instead of double-charging.
        let d2 = sized_data("/x", 70);
        let cost2 = ContentStore::cost_of(&d2);
        cs.insert(d2, T0);
        assert_eq!(cs.bytes_used(), cost2);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn byte_budget_evicts_lru_until_it_fits() {
        let mut cs = budgeted(100, 200);
        // Three ~66-byte (payload + name) entries fit; the fourth forces
        // LRU eviction by bytes even though the entry capacity (100) is
        // nowhere near.
        for i in 0..3 {
            cs.insert(sized_data(&format!("/s/{i}"), 60), T0);
        }
        assert_eq!(cs.len(), 3);
        assert!(cs.lookup(&Interest::new(name!("/s/0")), T0).is_some(), "refresh /s/0");
        cs.insert(sized_data("/s/3", 60), T0);
        assert!(cs.bytes_used() <= 200, "budget holds");
        assert!(cs.byte_evictions() >= 1);
        assert!(cs.lookup(&Interest::new(name!("/s/1")), T0).is_none(), "LRU /s/1 evicted");
        assert!(cs.lookup(&Interest::new(name!("/s/0")), T0).is_some(), "refreshed entry survives");
    }

    #[test]
    fn oversized_data_refused_without_flushing() {
        let mut cs = budgeted(16, 300);
        cs.insert(sized_data("/small/a", 40), T0);
        cs.insert(sized_data("/small/b", 40), T0);
        let before = cs.len();
        // Larger than the whole budget: refused, nothing evicted.
        cs.insert(sized_data("/huge", 400), T0);
        assert_eq!(cs.len(), before, "live entries untouched");
        assert_eq!(cs.admission_rejections(), 1);
        assert!(cs.lookup(&Interest::new(name!("/huge")), T0).is_none());
        assert!(cs.lookup(&Interest::new(name!("/small/a")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/small/b")), T0).is_some());
    }

    #[test]
    fn bulk_stream_cannot_flush_small_entries() {
        // Budget 1000, threshold 100, 25% protected ⇒ bulk may use ≤ 750.
        let mut cs = budgeted(1000, 1000);
        // Hot small results: ~4 × 50ish bytes, well within the 250 reserve.
        for i in 0..4 {
            cs.insert(sized_data(&format!("/hot/{i}"), 40), T0);
        }
        let small_before = cs.len();
        // A long bulk segment stream (each ≥ threshold).
        for seg in 0..50 {
            cs.insert(sized_data(&format!("/bulk/obj/seg={seg}"), 120), T0);
        }
        // Every hot small entry survived the stream.
        for i in 0..4 {
            assert!(
                cs.lookup(&Interest::new(name!(&format!("/hot/{i}"))), T0).is_some(),
                "/hot/{i} flushed by bulk traffic"
            );
        }
        assert!(cs.bytes_used() <= 1000);
        assert!(cs.byte_evictions() > 0, "bulk stream recycled its own segments");
        assert!(cs.len() >= small_before, "bulk evictions stayed in the bulk class");
    }

    #[test]
    fn bulk_larger_than_bulk_share_is_refused() {
        // Bulk share is 750 of 1000; an 800-byte segment can never fit the
        // bulk class even though it is under the total budget.
        let mut cs = budgeted(16, 1000);
        cs.insert(sized_data("/hot/x", 40), T0);
        cs.insert(sized_data("/bulk/seg=0", 800), T0);
        assert_eq!(cs.admission_rejections(), 1);
        assert!(cs.lookup(&Interest::new(name!("/hot/x")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/bulk/seg=0")), T0).is_none());
    }

    #[test]
    fn small_entries_may_use_whole_budget() {
        // Without bulk pressure the reserve is not a cap on small entries.
        let mut cs = budgeted(100, 1000);
        for i in 0..12 {
            cs.insert(sized_data(&format!("/s/{i}"), 60), T0);
        }
        assert!(cs.bytes_used() <= 1000);
        assert!(cs.bytes_used() > 750, "small class exceeded the 25% reserve");
    }

    // --- LRU/slab invariants ------------------------------------------------

    /// Walk one class list front-to-back, returning the names in recency
    /// order and checking the back-links along the way.
    fn list_order(cs: &ContentStore, head: usize, tail: usize) -> Vec<Name> {
        let mut out = Vec::new();
        let mut prev = NONE;
        let mut cur = head;
        while cur != NONE {
            assert_eq!(cs.slots[cur].prev, prev, "back-link consistent");
            out.push(cs.slots[cur].name.clone());
            prev = cur;
            cur = cs.slots[cur].next;
        }
        assert_eq!(tail, prev, "tail is the last reachable slot");
        out
    }

    fn lru_order(cs: &ContentStore) -> Vec<Name> {
        let mut out = list_order(cs, cs.small_head, cs.small_tail);
        out.extend(list_order(cs, cs.bulk_head, cs.bulk_tail));
        out
    }

    #[test]
    fn lru_invariant_slab_consistent() {
        // Property-style check: after a mixed workload, the linked lists
        // visit exactly the resident records, slots recycle through the
        // free list, every record's slot points back at its name, and the
        // byte counters equal the per-class cost sums.
        use lidc_simcore::rng::DetRng;
        let mut rng = DetRng::new(5);
        let mut cs = budgeted(8, 4000);
        for step in 0..500u64 {
            let id = rng.next_below(20);
            let uri = format!("/obj/{id}");
            if rng.next_bool(0.5) {
                // Mix classes: every third object is bulk-sized.
                let size = if id.is_multiple_of(3) { 150 } else { 30 };
                cs.insert(sized_data(&uri, size), T0);
            } else {
                let _ = cs.lookup(&Interest::new(Name::parse(&uri).unwrap()), T0);
            }
            assert!(cs.len() <= 8, "capacity respected at step {step}");
            assert!(cs.bytes_used() <= 4000, "budget respected at step {step}");
            let order = lru_order(&cs);
            assert_eq!(order.len(), cs.records.len(), "lists cover all records");
            let (mut small_sum, mut bulk_sum) = (0u64, 0u64);
            for name in &order {
                let rec = &cs.records[name];
                assert_eq!(&cs.slots[rec.slot].name, name, "slot back-pointer");
                if cs.slots[rec.slot].bulk {
                    bulk_sum += cs.slots[rec.slot].cost;
                } else {
                    small_sum += cs.slots[rec.slot].cost;
                }
            }
            assert_eq!(cs.bytes_small, small_sum, "small byte counter exact");
            assert_eq!(cs.bytes_bulk, bulk_sum, "bulk byte counter exact");
            assert_eq!(
                cs.slots.len(),
                cs.records.len() + cs.free.len(),
                "every slot is either live or free"
            );
        }
    }

    #[test]
    fn mru_is_list_head_after_hit() {
        let mut cs = ContentStore::new(3);
        cs.insert(data("/a"), T0);
        cs.insert(data("/b"), T0);
        cs.insert(data("/c"), T0);
        let _ = cs.lookup(&Interest::new(name!("/a")), T0);
        assert_eq!(lru_order(&cs)[0], name!("/a"));
        assert_eq!(*lru_order(&cs).last().unwrap(), name!("/b"));
    }

    #[test]
    fn count_eviction_is_global_lru_across_classes() {
        // Capacity pressure picks the globally least-recent entry, whichever
        // class list holds it (tick comparison across the two tails).
        let mut cs = budgeted(3, 0);
        cs.insert(sized_data("/bulk/seg=0", 150), T0); // bulk, oldest
        cs.insert(sized_data("/s/a", 10), T0);
        cs.insert(sized_data("/s/b", 10), T0);
        cs.insert(sized_data("/s/c", 10), T0); // over capacity: evict bulk
        assert!(cs.lookup(&Interest::new(name!("/bulk/seg=0")), T0).is_none());
        assert_eq!(cs.len(), 3);
        // Now the small /s/a is oldest; a bulk insert evicts it by count.
        cs.insert(sized_data("/bulk/seg=1", 150), T0);
        assert!(cs.lookup(&Interest::new(name!("/s/a")), T0).is_none());
        assert!(cs.lookup(&Interest::new(name!("/s/b")), T0).is_some());
    }
}
