//! Content Store: the forwarder's in-network cache.
//!
//! Exact LRU with a configurable entry capacity, freshness-aware lookup, and
//! prefix matching for `CanBePrefix` Interests. The store is one of the two
//! layers behind LIDC's future-work result caching (the other is the
//! gateway-level result cache in `lidc-core::cache`).
//!
//! The probe path is allocation-free: exact lookups hit the name-ordered
//! `BTreeMap` directly, prefix lookups range-scan it with a **borrowed**
//! component slice (no owned `Name` is built), and recency is tracked by an
//! intrusive doubly-linked LRU list over a slab of reusable slots — a cache
//! hit relinks indices instead of allocating.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::name::{Name, NameComponent};
use crate::packet::{Data, Interest};
use lidc_simcore::time::SimTime;

/// Slab slot index; `NONE` marks list ends and free slots.
const NONE: usize = usize::MAX;

#[derive(Debug, Clone)]
struct CsRecord {
    data: Data,
    /// Instant after which this record no longer satisfies MustBeFresh.
    fresh_until: Option<SimTime>,
    /// Index of this record's slot in the LRU slab.
    slot: usize,
}

/// One slab slot: a doubly-linked LRU list node. Freed slots are recycled
/// through a free list, so steady-state churn allocates nothing.
#[derive(Debug, Clone)]
struct Slot {
    name: Name,
    prev: usize,
    next: usize,
}

/// The Content Store.
#[derive(Debug)]
pub struct ContentStore {
    capacity: usize,
    /// Name-ordered records (canonical order enables prefix range scans).
    records: BTreeMap<Name, CsRecord>,
    /// LRU slab; `head` is most-recent, `tail` least-recent.
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    /// Slots observed stale during the current MustBeFresh probe; reused
    /// across lookups so eviction stays allocation-free in steady state.
    stale_scratch: Vec<usize>,
    /// Lifetime count of records evicted because a MustBeFresh probe
    /// observed them stale (diagnostics).
    stale_evictions: u64,
}

impl ContentStore {
    /// Create a store holding at most `capacity` Data packets. A capacity of
    /// zero disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        ContentStore {
            capacity,
            records: BTreeMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            hits: 0,
            misses: 0,
            stale_scratch: Vec::new(),
            stale_evictions: 0,
        }
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NONE {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NONE;
        self.slots[slot].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    fn alloc_slot(&mut self, name: Name) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    name,
                    prev: NONE,
                    next: NONE,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    name,
                    prev: NONE,
                    next: NONE,
                });
                self.slots.len() - 1
            }
        }
    }

    /// Insert a Data packet observed at `now`.
    pub fn insert(&mut self, data: Data, now: SimTime) {
        if self.capacity == 0 {
            return;
        }
        let name = data.name.clone();
        let fresh_until = data.freshness.map(|f| now + f);
        match self.records.get_mut(&name) {
            Some(rec) => {
                let slot = rec.slot;
                rec.data = data;
                rec.fresh_until = fresh_until;
                self.unlink(slot);
                self.link_front(slot);
            }
            None => {
                let slot = self.alloc_slot(name.clone());
                self.link_front(slot);
                self.records.insert(
                    name,
                    CsRecord {
                        data,
                        fresh_until,
                        slot,
                    },
                );
                while self.records.len() > self.capacity {
                    self.evict_lru();
                }
            }
        }
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        if victim == NONE {
            return;
        }
        self.evict_slot(victim);
    }

    /// Remove the record occupying `slot` and recycle the slot.
    fn evict_slot(&mut self, slot: usize) {
        self.unlink(slot);
        let name = std::mem::take(&mut self.slots[slot].name);
        self.records.remove(&name);
        self.free.push(slot);
    }

    fn mark_used(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Find a cached Data satisfying `interest` at `now`.
    ///
    /// Exact-name match unless `CanBePrefix`; `MustBeFresh` filters records
    /// past their freshness period. The leftmost (canonical-order) match
    /// wins, as in NFD. The probe itself performs no heap allocation; a hit
    /// returns an O(1) clone of the cached packet (refcount bumps).
    ///
    /// Records a `MustBeFresh` probe observes stale are **evicted**: stale
    /// Data can never satisfy a fresh Interest again, and leaving it
    /// resident would pin an LRU slot and lengthen every CanBePrefix range
    /// scan over it until capacity pressure finally wins (the stale-pinning
    /// bug). Eviction frees the slot for live content immediately.
    pub fn lookup(&mut self, interest: &Interest, now: SimTime) -> Option<Data> {
        let must_be_fresh = interest.must_be_fresh;
        let mut stale = std::mem::take(&mut self.stale_scratch);
        stale.clear();
        // Capture the packet clone (O(1) refcount bumps) during the probe:
        // one map traversal per hit, no re-find.
        let found: Option<(usize, Data)> = if interest.can_be_prefix {
            // Range-scan from the prefix using the borrowed component
            // slice; `Name: Borrow<[NameComponent]>` makes this key-free.
            let prefix: &[NameComponent] = interest.name.components();
            let mut hit = None;
            for (name, rec) in self
                .records
                .range::<[NameComponent], _>((Bound::Included(prefix), Bound::Unbounded))
            {
                if prefix.len() > name.len() || *prefix != name.components()[..prefix.len()] {
                    break;
                }
                if Self::satisfies_freshness(rec, must_be_fresh, now) {
                    hit = Some((rec.slot, rec.data.clone()));
                    break;
                }
                // Only reachable under MustBeFresh: the record is stale.
                stale.push(rec.slot);
            }
            hit
        } else {
            match self.records.get(&interest.name) {
                Some(rec) if Self::satisfies_freshness(rec, must_be_fresh, now) => {
                    Some((rec.slot, rec.data.clone()))
                }
                Some(rec) => {
                    stale.push(rec.slot);
                    None
                }
                None => None,
            }
        };
        for slot in stale.drain(..) {
            self.evict_slot(slot);
            self.stale_evictions += 1;
        }
        self.stale_scratch = stale;
        match found {
            Some((slot, data)) => {
                self.mark_used(slot);
                self.hits += 1;
                Some(data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Lifetime count of records evicted by stale-observing MustBeFresh
    /// probes.
    pub fn stale_evictions(&self) -> u64 {
        self.stale_evictions
    }

    fn satisfies_freshness(rec: &CsRecord, must_be_fresh: bool, now: SimTime) -> bool {
        if !must_be_fresh {
            return true;
        }
        match rec.fresh_until {
            Some(t) => now < t,
            // No freshness period means "never fresh" under MustBeFresh
            // (spec: FreshnessPeriod absent ⇒ non-fresh immediately).
            None => false,
        }
    }

    /// Drop every record (management/diagnostics).
    pub fn clear(&mut self) {
        self.records.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
    }

    /// Iterate cached names in canonical order (diagnostics).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.records.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_simcore::time::SimDuration;

    fn data(uri: &str) -> Data {
        Data::new(name!(uri), &b"content"[..]).sign_digest()
    }

    fn fresh_data(uri: &str, fresh: SimDuration) -> Data {
        Data::new(name!(uri), &b"content"[..])
            .with_freshness(fresh)
            .sign_digest()
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn exact_match_hit_and_miss() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b"), T0);
        assert!(cs.lookup(&Interest::new(name!("/a/b")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/a")), T0).is_none(), "no prefix without CanBePrefix");
        assert!(cs.lookup(&Interest::new(name!("/a/b/c")), T0).is_none());
        assert_eq!(cs.hits(), 1);
        assert_eq!(cs.misses(), 2);
    }

    #[test]
    fn prefix_match_with_can_be_prefix() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b/seg=0"), T0);
        let i = Interest::new(name!("/a/b")).can_be_prefix(true);
        assert!(cs.lookup(&i, T0).is_some());
        // A sibling prefix must not match.
        let i = Interest::new(name!("/a/c")).can_be_prefix(true);
        assert!(cs.lookup(&i, T0).is_none());
    }

    #[test]
    fn prefix_match_returns_leftmost() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b/seg=1"), T0);
        cs.insert(data("/a/b/seg=0"), T0);
        let i = Interest::new(name!("/a/b")).can_be_prefix(true);
        let hit = cs.lookup(&i, T0).unwrap();
        assert_eq!(hit.name, name!("/a/b/seg=0"), "canonical-leftmost wins");
    }

    #[test]
    fn must_be_fresh_semantics() {
        let mut cs = ContentStore::new(10);
        cs.insert(fresh_data("/f", SimDuration::from_secs(10)), T0);
        cs.insert(data("/stale"), T0);
        let fresh_interest = |uri: &str| Interest::new(name!(uri)).must_be_fresh(true);
        // Within the freshness window.
        assert!(cs
            .lookup(&fresh_interest("/f"), T0 + SimDuration::from_secs(5))
            .is_some());
        // Data without FreshnessPeriod is never fresh under MustBeFresh, but
        // matches a plain Interest (probed first: a MustBeFresh miss evicts).
        assert!(cs
            .lookup(&Interest::new(name!("/stale")), T0 + SimDuration::from_hours(1))
            .is_some());
        assert!(cs.lookup(&fresh_interest("/stale"), T0).is_none());
        // Past the freshness window: a MustBeFresh probe misses and evicts
        // the stale record (see `stale_probe_evicts_record`).
        assert!(cs
            .lookup(&fresh_interest("/f"), T0 + SimDuration::from_secs(10))
            .is_none());
        assert_eq!(cs.stale_evictions(), 2);
    }

    #[test]
    fn stale_probe_evicts_record() {
        // Regression (stale pinning): a MustBeFresh probe that observes a
        // stale record must evict it — otherwise the dead entry occupies an
        // LRU slot and is re-walked by every CanBePrefix scan until
        // capacity pressure finally reclaims it.
        let mut cs = ContentStore::new(2);
        cs.insert(fresh_data("/a", SimDuration::from_secs(1)), T0);
        cs.insert(data("/b"), T0);
        assert_eq!(cs.len(), 2);
        // Probe /a after its freshness lapsed: miss, and the slot frees.
        let t = T0 + SimDuration::from_secs(5);
        assert!(cs.lookup(&Interest::new(name!("/a")).must_be_fresh(true), t).is_none());
        assert_eq!(cs.len(), 1, "stale record no longer occupies capacity");
        assert_eq!(cs.stale_evictions(), 1);
        // The freed slot admits new content without evicting live /b.
        cs.insert(fresh_data("/c", SimDuration::from_secs(60)), t);
        assert_eq!(cs.len(), 2);
        assert!(cs.lookup(&Interest::new(name!("/b")), t).is_some(), "/b survived");
        assert!(cs.lookup(&Interest::new(name!("/c")), t).is_some());
        // A later exact lookup for /a misses outright (it was evicted).
        assert!(cs.lookup(&Interest::new(name!("/a")), t).is_none());
    }

    #[test]
    fn prefix_scan_evicts_every_stale_record_it_walks() {
        let mut cs = ContentStore::new(10);
        // Three stale-by-then segments plus one fresh one under /a.
        for seg in 0..3 {
            cs.insert(
                fresh_data(&format!("/a/seg={seg}"), SimDuration::from_secs(1)),
                T0,
            );
        }
        let t = T0 + SimDuration::from_secs(5);
        cs.insert(fresh_data("/a/seg=3", SimDuration::from_secs(60)), t);
        cs.insert(data("/z"), T0);
        // The fresh prefix probe walks the three stale records (canonical
        // order) before hitting seg=3; all three are evicted.
        let i = Interest::new(name!("/a")).can_be_prefix(true).must_be_fresh(true);
        let hit = cs.lookup(&i, t).unwrap();
        assert_eq!(hit.name, name!("/a/seg=3"));
        assert_eq!(cs.len(), 2, "stale seg=0..2 evicted, seg=3 and /z remain");
        assert_eq!(cs.stale_evictions(), 3);
        // A second identical probe walks nothing stale.
        assert!(cs.lookup(&i, t).is_some());
        assert_eq!(cs.stale_evictions(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/one"), T0);
        cs.insert(data("/two"), T0);
        // Touch /one so /two becomes LRU.
        assert!(cs.lookup(&Interest::new(name!("/one")), T0).is_some());
        cs.insert(data("/three"), T0);
        assert_eq!(cs.len(), 2);
        assert!(cs.lookup(&Interest::new(name!("/one")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/two")), T0).is_none(), "/two evicted");
        assert!(cs.lookup(&Interest::new(name!("/three")), T0).is_some());
    }

    #[test]
    fn reinsert_same_name_replaces() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"), T0);
        let newer = Data::new(name!("/a"), &b"v2"[..]).sign_digest();
        cs.insert(newer.clone(), T0);
        assert_eq!(cs.len(), 1);
        let got = cs.lookup(&Interest::new(name!("/a")), T0).unwrap();
        assert_eq!(got.content, newer.content);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut cs = ContentStore::new(0);
        cs.insert(data("/a"), T0);
        assert!(cs.is_empty());
        assert!(cs.lookup(&Interest::new(name!("/a")), T0).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut cs = ContentStore::new(4);
        cs.insert(data("/a"), T0);
        cs.insert(data("/b"), T0);
        cs.clear();
        assert!(cs.is_empty());
        assert_eq!(cs.names().count(), 0);
    }

    /// Walk the LRU list front-to-back, returning the names in recency
    /// order and checking the back-links along the way.
    fn lru_order(cs: &ContentStore) -> Vec<Name> {
        let mut out = Vec::new();
        let mut prev = NONE;
        let mut cur = cs.head;
        while cur != NONE {
            assert_eq!(cs.slots[cur].prev, prev, "back-link consistent");
            out.push(cs.slots[cur].name.clone());
            prev = cur;
            cur = cs.slots[cur].next;
        }
        assert_eq!(cs.tail, prev, "tail is the last reachable slot");
        out
    }

    #[test]
    fn lru_invariant_slab_consistent() {
        // Property-style check: after a mixed workload, the linked list
        // visits exactly the resident records, slots recycle through the
        // free list, and every record's slot points back at its name.
        use lidc_simcore::rng::DetRng;
        let mut rng = DetRng::new(5);
        let mut cs = ContentStore::new(8);
        for step in 0..500u64 {
            let id = rng.next_below(20);
            let uri = format!("/obj/{id}");
            if rng.next_bool(0.5) {
                cs.insert(data(&uri), T0);
            } else {
                let _ = cs.lookup(&Interest::new(Name::parse(&uri).unwrap()), T0);
            }
            assert!(cs.len() <= 8, "capacity respected at step {step}");
            let order = lru_order(&cs);
            assert_eq!(order.len(), cs.records.len(), "list covers all records");
            for name in &order {
                let rec = &cs.records[name];
                assert_eq!(&cs.slots[rec.slot].name, name, "slot back-pointer");
            }
            assert_eq!(
                cs.slots.len(),
                cs.records.len() + cs.free.len(),
                "every slot is either live or free"
            );
        }
    }

    #[test]
    fn mru_is_list_head_after_hit() {
        let mut cs = ContentStore::new(3);
        cs.insert(data("/a"), T0);
        cs.insert(data("/b"), T0);
        cs.insert(data("/c"), T0);
        let _ = cs.lookup(&Interest::new(name!("/a")), T0);
        assert_eq!(lru_order(&cs)[0], name!("/a"));
        assert_eq!(*lru_order(&cs).last().unwrap(), name!("/b"));
    }
}
