//! Content Store: the forwarder's in-network cache.
//!
//! Exact LRU with a configurable entry capacity, freshness-aware lookup, and
//! prefix matching for `CanBePrefix` Interests. The store is one of the two
//! layers behind LIDC's future-work result caching (the other is the
//! gateway-level result cache in `lidc-core::cache`).

use std::collections::{BTreeMap, HashMap};

use crate::name::Name;
use crate::packet::{Data, Interest};
use lidc_simcore::time::SimTime;

#[derive(Debug, Clone)]
struct CsRecord {
    data: Data,
    /// Instant after which this record no longer satisfies MustBeFresh.
    fresh_until: Option<SimTime>,
    /// LRU tick of the last use.
    last_used: u64,
}

/// The Content Store.
#[derive(Debug)]
pub struct ContentStore {
    capacity: usize,
    /// Name-ordered records (canonical order enables prefix range scans).
    records: BTreeMap<Name, CsRecord>,
    /// Reverse LRU index: tick → name.
    lru: BTreeMap<u64, Name>,
    /// Fast tick lookup per name (avoids storing the tick twice).
    ticks: HashMap<Name, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ContentStore {
    /// Create a store holding at most `capacity` Data packets. A capacity of
    /// zero disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        ContentStore {
            capacity,
            records: BTreeMap::new(),
            lru: BTreeMap::new(),
            ticks: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Insert a Data packet observed at `now`.
    pub fn insert(&mut self, data: Data, now: SimTime) {
        if self.capacity == 0 {
            return;
        }
        let name = data.name.clone();
        let fresh_until = data.freshness.map(|f| now + f);
        self.touch(&name);
        let tick = self.tick;
        if let Some(old_tick) = self.ticks.insert(name.clone(), tick) {
            self.lru.remove(&old_tick);
        }
        self.lru.insert(tick, name.clone());
        self.records.insert(
            name,
            CsRecord {
                data,
                fresh_until,
                last_used: tick,
            },
        );
        while self.records.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn touch(&mut self, _name: &Name) {
        self.tick += 1;
    }

    fn evict_lru(&mut self) {
        if let Some((&tick, _)) = self.lru.iter().next() {
            if let Some(name) = self.lru.remove(&tick) {
                self.records.remove(&name);
                self.ticks.remove(&name);
            }
        }
    }

    fn mark_used(&mut self, name: &Name) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.ticks.insert(name.clone(), tick) {
            self.lru.remove(&old);
        }
        self.lru.insert(tick, name.clone());
        if let Some(rec) = self.records.get_mut(name) {
            rec.last_used = tick;
        }
    }

    /// Find a cached Data satisfying `interest` at `now`.
    ///
    /// Exact-name match unless `CanBePrefix`; `MustBeFresh` filters records
    /// past their freshness period. The leftmost (canonical-order) match
    /// wins, as in NFD.
    pub fn lookup(&mut self, interest: &Interest, now: SimTime) -> Option<Data> {
        let found: Option<Name> = if interest.can_be_prefix {
            self.records
                .range(interest.name.clone()..)
                .take_while(|(name, _)| interest.name.is_prefix_of(name))
                .find(|(_, rec)| Self::satisfies_freshness(rec, interest.must_be_fresh, now))
                .map(|(name, _)| name.clone())
        } else {
            self.records
                .get(&interest.name)
                .filter(|rec| Self::satisfies_freshness(rec, interest.must_be_fresh, now))
                .map(|_| interest.name.clone())
        };
        match found {
            Some(name) => {
                self.mark_used(&name);
                self.hits += 1;
                Some(self.records[&name].data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn satisfies_freshness(rec: &CsRecord, must_be_fresh: bool, now: SimTime) -> bool {
        if !must_be_fresh {
            return true;
        }
        match rec.fresh_until {
            Some(t) => now < t,
            // No freshness period means "never fresh" under MustBeFresh
            // (spec: FreshnessPeriod absent ⇒ non-fresh immediately).
            None => false,
        }
    }

    /// Drop every record (management/diagnostics).
    pub fn clear(&mut self) {
        self.records.clear();
        self.lru.clear();
        self.ticks.clear();
    }

    /// Iterate cached names in canonical order (diagnostics).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.records.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_simcore::time::SimDuration;

    fn data(uri: &str) -> Data {
        Data::new(name!(uri), &b"content"[..]).sign_digest()
    }

    fn fresh_data(uri: &str, fresh: SimDuration) -> Data {
        Data::new(name!(uri), &b"content"[..])
            .with_freshness(fresh)
            .sign_digest()
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn exact_match_hit_and_miss() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b"), T0);
        assert!(cs.lookup(&Interest::new(name!("/a/b")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/a")), T0).is_none(), "no prefix without CanBePrefix");
        assert!(cs.lookup(&Interest::new(name!("/a/b/c")), T0).is_none());
        assert_eq!(cs.hits(), 1);
        assert_eq!(cs.misses(), 2);
    }

    #[test]
    fn prefix_match_with_can_be_prefix() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b/seg=0"), T0);
        let i = Interest::new(name!("/a/b")).can_be_prefix(true);
        assert!(cs.lookup(&i, T0).is_some());
        // A sibling prefix must not match.
        let i = Interest::new(name!("/a/c")).can_be_prefix(true);
        assert!(cs.lookup(&i, T0).is_none());
    }

    #[test]
    fn prefix_match_returns_leftmost() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a/b/seg=1"), T0);
        cs.insert(data("/a/b/seg=0"), T0);
        let i = Interest::new(name!("/a/b")).can_be_prefix(true);
        let hit = cs.lookup(&i, T0).unwrap();
        assert_eq!(hit.name, name!("/a/b/seg=0"), "canonical-leftmost wins");
    }

    #[test]
    fn must_be_fresh_semantics() {
        let mut cs = ContentStore::new(10);
        cs.insert(fresh_data("/f", SimDuration::from_secs(10)), T0);
        cs.insert(data("/stale"), T0);
        let fresh_interest = |uri: &str| Interest::new(name!(uri)).must_be_fresh(true);
        // Within the freshness window.
        assert!(cs
            .lookup(&fresh_interest("/f"), T0 + SimDuration::from_secs(5))
            .is_some());
        // Past it.
        assert!(cs
            .lookup(&fresh_interest("/f"), T0 + SimDuration::from_secs(10))
            .is_none());
        // Data without FreshnessPeriod is never fresh…
        assert!(cs.lookup(&fresh_interest("/stale"), T0).is_none());
        // …but still matches without MustBeFresh.
        assert!(cs
            .lookup(&Interest::new(name!("/stale")), T0 + SimDuration::from_hours(1))
            .is_some());
    }

    #[test]
    fn lru_eviction_order() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/one"), T0);
        cs.insert(data("/two"), T0);
        // Touch /one so /two becomes LRU.
        assert!(cs.lookup(&Interest::new(name!("/one")), T0).is_some());
        cs.insert(data("/three"), T0);
        assert_eq!(cs.len(), 2);
        assert!(cs.lookup(&Interest::new(name!("/one")), T0).is_some());
        assert!(cs.lookup(&Interest::new(name!("/two")), T0).is_none(), "/two evicted");
        assert!(cs.lookup(&Interest::new(name!("/three")), T0).is_some());
    }

    #[test]
    fn reinsert_same_name_replaces() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"), T0);
        let newer = Data::new(name!("/a"), &b"v2"[..]).sign_digest();
        cs.insert(newer.clone(), T0);
        assert_eq!(cs.len(), 1);
        let got = cs.lookup(&Interest::new(name!("/a")), T0).unwrap();
        assert_eq!(got.content, newer.content);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut cs = ContentStore::new(0);
        cs.insert(data("/a"), T0);
        assert!(cs.is_empty());
        assert!(cs.lookup(&Interest::new(name!("/a")), T0).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut cs = ContentStore::new(4);
        cs.insert(data("/a"), T0);
        cs.insert(data("/b"), T0);
        cs.clear();
        assert!(cs.is_empty());
        assert_eq!(cs.names().count(), 0);
    }

    #[test]
    fn lru_invariant_indices_consistent() {
        // Property-style check: after a mixed workload, every record has a
        // tick entry and vice versa.
        use lidc_simcore::rng::DetRng;
        let mut rng = DetRng::new(5);
        let mut cs = ContentStore::new(8);
        for step in 0..500u64 {
            let id = rng.next_below(20);
            let uri = format!("/obj/{id}");
            if rng.next_bool(0.5) {
                cs.insert(data(&uri), T0);
            } else {
                let _ = cs.lookup(&Interest::new(Name::parse(&uri).unwrap()), T0);
            }
            assert!(cs.len() <= 8, "capacity respected at step {step}");
            assert_eq!(cs.records.len(), cs.ticks.len());
            assert_eq!(cs.records.len(), cs.lru.len());
            for (tick, name) in &cs.lru {
                assert_eq!(cs.ticks.get(name), Some(tick));
            }
        }
    }
}
