//! Pending Interest Table.
//!
//! The PIT is what makes NDN request routing stateful: it aggregates
//! identical Interests from many consumers (one upstream transmission serves
//! them all — the `ablate_aggregation` experiment measures this) and routes
//! returning Data back along the reverse paths.

use crate::face::FaceId;
use crate::fxhash::FxHashMap;
use crate::name::Name;
use crate::packet::Interest;
use lidc_simcore::time::{SimDuration, SimTime};

/// PIT entries are keyed on the Interest name plus the selectors that change
/// matching semantics (mirrors NFD, which keys on the whole Interest minus
/// the nonce).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PitKey {
    /// Interest name.
    pub name: Name,
    /// CanBePrefix selector.
    pub can_be_prefix: bool,
    /// MustBeFresh selector.
    pub must_be_fresh: bool,
}

impl PitKey {
    /// Key for an Interest.
    pub fn of(interest: &Interest) -> Self {
        PitKey {
            name: interest.name.clone(),
            can_be_prefix: interest.can_be_prefix,
            must_be_fresh: interest.must_be_fresh,
        }
    }
}

/// A downstream (requester) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InRecord {
    /// Face the Interest arrived on.
    pub face: FaceId,
    /// Its nonce (for loop suppression on the return path).
    pub nonce: Option<u32>,
    /// When this record lapses.
    pub expiry: SimTime,
}

/// An upstream (forwarded-to) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutRecord {
    /// Face the Interest was sent out of.
    pub face: FaceId,
    /// When it was sent (for RTT measurement).
    pub sent_at: SimTime,
    /// Nonce used upstream.
    pub nonce: Option<u32>,
}

/// Marker for "this entry is not in `prefix_keys`".
const NO_PREFIX_IDX: usize = usize::MAX;

/// One pending Interest.
#[derive(Debug, Clone)]
pub struct PitEntry {
    /// The representative Interest (first to create the entry). Its name
    /// and selectors are the entry's key — see [`PitEntry::key`].
    pub interest: Interest,
    /// Downstream records.
    pub in_records: Vec<InRecord>,
    /// Upstream records.
    pub out_records: Vec<OutRecord>,
    /// Entry expiry = max over in-record expiries.
    pub expiry: SimTime,
    /// Version stamp: incremented on every refresh so stale expiry timers
    /// can be recognised and ignored.
    pub version: u64,
    /// This entry's position in the PIT's `prefix_keys` list
    /// ([`NO_PREFIX_IDX`] for exact-match entries), maintained via
    /// `swap_remove` fix-up so removal is O(1) instead of an O(n) scan.
    prefix_idx: usize,
}

impl PitEntry {
    /// True if `face` already has an in-record with the same nonce (i.e.
    /// this arrival is a duplicate rather than a retransmission).
    pub fn is_duplicate_from(&self, face: FaceId, nonce: Option<u32>) -> bool {
        self.in_records
            .iter()
            .any(|r| r.face == face && r.nonce == nonce && nonce.is_some())
    }

    /// Downstream faces to return Data to (excluding `except`, typically the
    /// face the Data arrived on).
    pub fn return_faces(&self, except: FaceId) -> Vec<FaceId> {
        let mut faces: Vec<FaceId> = self
            .in_records
            .iter()
            .map(|r| r.face)
            .filter(|f| *f != except)
            .collect();
        faces.sort_unstable();
        faces.dedup();
        faces
    }

    /// The out-record for `face`, if any.
    pub fn out_record(&self, face: FaceId) -> Option<&OutRecord> {
        self.out_records.iter().find(|r| r.face == face)
    }

    /// This entry's key (constructed on demand; an O(1) name clone).
    pub fn key(&self) -> PitKey {
        PitKey::of(&self.interest)
    }
}

/// Outcome of inserting an Interest.
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new entry was created: the Interest should be forwarded.
    New,
    /// Aggregated into an existing entry that already has an outstanding
    /// upstream transmission: do not forward again.
    Aggregated,
    /// Same downstream retransmitted (same face, new nonce): the strategy
    /// may choose to try another upstream.
    Retransmission,
    /// Exact duplicate (same face, same nonce): drop / NACK as a loop.
    DuplicateNonce,
}

/// The Pending Interest Table.
///
/// Data matching is split by selector: exact-name entries are found with
/// two O(1) map probes (cheap `Name` clones — refcount bumps, no heap
/// allocation), and only the usually-tiny population of `CanBePrefix`
/// entries is scanned.
#[derive(Debug, Default)]
pub struct Pit {
    entries: FxHashMap<PitKey, PitEntry>,
    /// Keys of entries with `can_be_prefix` set — the only ones that need a
    /// scan on Data arrival. Kept in sync by insert/take/expire.
    prefix_keys: Vec<PitKey>,
}

impl Pit {
    /// Empty PIT.
    pub fn new() -> Self {
        Pit::default()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record the arrival of `interest` on `face` at `now`.
    ///
    /// Returns the outcome plus the entry's new version (for scheduling the
    /// expiry timer).
    pub fn insert(
        &mut self,
        interest: &Interest,
        face: FaceId,
        now: SimTime,
    ) -> (InsertOutcome, u64) {
        let key = PitKey::of(interest);
        let expiry = now + interest.lifetime;
        // Entry API: the probe key is moved into the map on the New path,
        // so insertion costs exactly one key construction.
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                let prefix_idx = if interest.can_be_prefix {
                    self.prefix_keys.push(slot.key().clone());
                    self.prefix_keys.len() - 1
                } else {
                    NO_PREFIX_IDX
                };
                slot.insert(PitEntry {
                    interest: interest.clone(),
                    in_records: vec![InRecord {
                        face,
                        nonce: interest.nonce,
                        expiry,
                    }],
                    out_records: Vec::new(),
                    expiry,
                    version: 0,
                    prefix_idx,
                });
                (InsertOutcome::New, 0)
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                let entry = slot.into_mut();
                if entry.is_duplicate_from(face, interest.nonce) {
                    return (InsertOutcome::DuplicateNonce, entry.version);
                }
                let from_same_face = entry.in_records.iter().any(|r| r.face == face);
                match entry.in_records.iter_mut().find(|r| r.face == face) {
                    Some(rec) => {
                        rec.nonce = interest.nonce;
                        rec.expiry = expiry;
                    }
                    None => entry.in_records.push(InRecord {
                        face,
                        nonce: interest.nonce,
                        expiry,
                    }),
                }
                entry.expiry = entry.expiry.max(expiry);
                entry.version += 1;
                if from_same_face {
                    (InsertOutcome::Retransmission, entry.version)
                } else {
                    (InsertOutcome::Aggregated, entry.version)
                }
            }
        }
    }

    /// Record that the Interest was forwarded out `face`.
    pub fn add_out_record(&mut self, key: &PitKey, face: FaceId, nonce: Option<u32>, now: SimTime) {
        if let Some(entry) = self.entries.get_mut(key) {
            match entry.out_records.iter_mut().find(|r| r.face == face) {
                Some(rec) => {
                    rec.sent_at = now;
                    rec.nonce = nonce;
                }
                None => entry.out_records.push(OutRecord {
                    face,
                    sent_at: now,
                    nonce,
                }),
            }
        }
    }

    /// Find the entry a Data packet satisfies. NDN matching: the Data name
    /// must equal the Interest name, or extend it when CanBePrefix is set.
    /// When several entries match, all are returned (e.g. a prefix Interest
    /// and an exact Interest for the same object).
    pub fn match_data(&self, data_name: &Name) -> Vec<PitKey> {
        let mut keys = Vec::new();
        self.match_data_into(data_name, &mut keys);
        keys
    }

    /// [`Pit::match_data`] into a caller-owned buffer (cleared first), so a
    /// steady-state forwarder reuses one allocation across all Data
    /// arrivals. Exact entries cost two hash probes (the key holds an O(1)
    /// `Name` clone); only `CanBePrefix` entries are scanned.
    pub fn match_data_into(&self, data_name: &Name, out: &mut Vec<PitKey>) {
        out.clear();
        self.match_exact_append(data_name, out);
        self.match_prefix_append(data_name, out);
        sort_match_keys(out);
    }

    /// Append the (up to two) exact-name entry keys matching `data_name`
    /// without clearing or sorting `out` — the sharded PIT composes this
    /// with prefix scans over every shard before one final sort.
    pub fn match_exact_append(&self, data_name: &Name, out: &mut Vec<PitKey>) {
        // One probe key serves both selector variants (flip the bool
        // between probes) — a single O(1) Name clone for the common case.
        let mut probe = PitKey {
            name: data_name.clone(),
            can_be_prefix: false,
            must_be_fresh: false,
        };
        let hit_plain = self.entries.contains_key(&probe);
        probe.must_be_fresh = true;
        let hit_fresh = self.entries.contains_key(&probe);
        if hit_plain && hit_fresh {
            let mut plain = probe.clone();
            plain.must_be_fresh = false;
            out.push(plain);
            out.push(probe);
        } else if hit_plain {
            probe.must_be_fresh = false;
            out.push(probe);
        } else if hit_fresh {
            out.push(probe);
        }
    }

    /// Append every `CanBePrefix` entry key whose name prefixes `data_name`
    /// (no clear, no sort — see [`Pit::match_exact_append`]).
    pub fn match_prefix_append(&self, data_name: &Name, out: &mut Vec<PitKey>) {
        for key in &self.prefix_keys {
            if key.name.is_prefix_of(data_name) {
                out.push(key.clone());
            }
        }
    }

    /// Number of resident `CanBePrefix` entries (the ones Data matching
    /// must scan; the forwarder's parallel ingress gates on this being 0).
    pub fn prefix_entry_count(&self) -> usize {
        self.prefix_keys.len()
    }

    /// Look up an entry.
    pub fn get(&self, key: &PitKey) -> Option<&PitEntry> {
        self.entries.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &PitKey) -> Option<&mut PitEntry> {
        self.entries.get_mut(key)
    }

    /// Remove and return an entry (when satisfied by Data or fully NACKed).
    pub fn take(&mut self, key: &PitKey) -> Option<PitEntry> {
        let entry = self.entries.remove(key)?;
        self.forget_prefix_key(&entry);
        Some(entry)
    }

    /// Expire the entry if `version` is still current and its expiry has
    /// passed. Returns the entry when it was expired.
    pub fn expire_if_stale(&mut self, key: &PitKey, version: u64, now: SimTime) -> Option<PitEntry> {
        let entry = self.entries.get(key)?;
        if entry.version != version || entry.expiry > now {
            return None;
        }
        let entry = self.entries.remove(key)?;
        self.forget_prefix_key(&entry);
        Some(entry)
    }

    /// Drop the removed entry's `prefix_keys` slot in O(1): `swap_remove`
    /// at its recorded index, then repoint the entry whose key was swapped
    /// into that index. (The old implementation `position()`-scanned the
    /// whole list per removal, turning Data arrival handling quadratic
    /// under prefix-heavy workloads.)
    fn forget_prefix_key(&mut self, removed: &PitEntry) {
        let idx = removed.prefix_idx;
        if idx == NO_PREFIX_IDX {
            return;
        }
        debug_assert!(removed.interest.can_be_prefix);
        self.prefix_keys.swap_remove(idx);
        if let Some(moved_key) = self.prefix_keys.get(idx) {
            // O(1) Name clone; the moved entry must still exist.
            let moved_key = moved_key.clone();
            if let Some(entry) = self.entries.get_mut(&moved_key) {
                entry.prefix_idx = idx;
            } else {
                debug_assert!(false, "prefix_keys points at a live entry");
            }
        }
    }

    /// Check the `prefix_keys` ↔ entry index invariant (test support).
    #[doc(hidden)]
    pub fn debug_check_prefix_invariant(&self) -> Result<(), String> {
        let prefix_entries = self
            .entries
            .values()
            .filter(|e| e.interest.can_be_prefix)
            .count();
        if prefix_entries != self.prefix_keys.len() {
            return Err(format!(
                "{} CanBePrefix entries but {} prefix keys",
                prefix_entries,
                self.prefix_keys.len()
            ));
        }
        for (i, key) in self.prefix_keys.iter().enumerate() {
            match self.entries.get(key) {
                None => return Err(format!("prefix_keys[{i}] has no entry: {key:?}")),
                Some(entry) if entry.prefix_idx != i => {
                    return Err(format!(
                        "prefix_keys[{i}] entry records index {}",
                        entry.prefix_idx
                    ));
                }
                Some(_) => {}
            }
        }
        if self
            .entries
            .values()
            .any(|e| !e.interest.can_be_prefix && e.prefix_idx != NO_PREFIX_IDX)
        {
            return Err("exact entry carries a prefix index".to_owned());
        }
        Ok(())
    }

    /// The time until `key`'s entry expires (for scheduling).
    pub fn time_to_expiry(&self, key: &PitKey, now: SimTime) -> Option<SimDuration> {
        self.entries.get(key).map(|e| e.expiry.since(now))
    }

    /// Iterate entry keys in unspecified order (diagnostics/tests).
    pub fn keys(&self) -> impl Iterator<Item = &PitKey> {
        // lidc-lint: allow(unordered-iter) reason="order-unspecified accessor by contract; behaviour-affecting consumers must sort (the face-down sweep collects and sorts canonically)"
        self.entries.keys()
    }
}

/// The deterministic ordering of data-match results: by name, exact
/// matches before prefix matches, plain before MustBeFresh.
pub(crate) fn sort_match_keys(out: &mut [PitKey]) {
    out.sort_by(|a, b| {
        a.name
            .cmp(&b.name)
            .then(a.can_be_prefix.cmp(&b.can_be_prefix))
            .then(a.must_be_fresh.cmp(&b.must_be_fresh))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64) -> FaceId {
        FaceId::from_raw(id)
    }

    fn interest(uri: &str, nonce: u32) -> Interest {
        Interest::new(name!(uri)).with_nonce(nonce)
    }

    #[test]
    fn first_arrival_is_new() {
        let mut pit = Pit::new();
        let i = interest("/a/b", 1);
        let (outcome, _) = pit.insert(&i, f(1), SimTime::ZERO);
        assert_eq!(outcome, InsertOutcome::New);
        assert_eq!(pit.len(), 1);
    }

    #[test]
    fn second_consumer_aggregates() {
        let mut pit = Pit::new();
        let now = SimTime::ZERO;
        pit.insert(&interest("/a/b", 1), f(1), now);
        let (outcome, _) = pit.insert(&interest("/a/b", 2), f(2), now);
        assert_eq!(outcome, InsertOutcome::Aggregated);
        assert_eq!(pit.len(), 1, "one entry for both consumers");
        let key = PitKey::of(&interest("/a/b", 1));
        assert_eq!(pit.get(&key).unwrap().in_records.len(), 2);
    }

    #[test]
    fn same_face_new_nonce_is_retransmission() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a", 1), f(1), SimTime::ZERO);
        let (outcome, _) = pit.insert(&interest("/a", 99), f(1), SimTime::ZERO);
        assert_eq!(outcome, InsertOutcome::Retransmission);
    }

    #[test]
    fn same_face_same_nonce_is_duplicate() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a", 7), f(1), SimTime::ZERO);
        let (outcome, _) = pit.insert(&interest("/a", 7), f(1), SimTime::ZERO);
        assert_eq!(outcome, InsertOutcome::DuplicateNonce);
    }

    #[test]
    fn selectors_separate_entries() {
        let mut pit = Pit::new();
        let exact = interest("/a", 1);
        let prefix = interest("/a", 2).can_be_prefix(true);
        pit.insert(&exact, f(1), SimTime::ZERO);
        pit.insert(&prefix, f(1), SimTime::ZERO);
        assert_eq!(pit.len(), 2, "different selectors, different entries");
    }

    #[test]
    fn data_matching_exact_and_prefix() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a/b", 1), f(1), SimTime::ZERO);
        pit.insert(&interest("/a", 2).can_be_prefix(true), f(2), SimTime::ZERO);
        pit.insert(&interest("/a", 3), f(3), SimTime::ZERO); // exact /a
        let matched = pit.match_data(&name!("/a/b"));
        assert_eq!(matched.len(), 2, "exact /a/b and prefix /a match");
        assert!(matched.iter().any(|k| k.name == name!("/a/b") && !k.can_be_prefix));
        assert!(matched.iter().any(|k| k.name == name!("/a") && k.can_be_prefix));
        let matched = pit.match_data(&name!("/a"));
        assert_eq!(matched.len(), 2, "exact /a and prefix /a");
    }

    #[test]
    fn return_faces_excludes_arrival_face() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a", 1), f(1), SimTime::ZERO);
        pit.insert(&interest("/a", 2), f(2), SimTime::ZERO);
        let key = PitKey::of(&interest("/a", 1));
        let entry = pit.get(&key).unwrap();
        assert_eq!(entry.return_faces(f(2)), vec![f(1)]);
        assert_eq!(entry.return_faces(f(9)), vec![f(1), f(2)]);
    }

    #[test]
    fn out_records_updated_not_duplicated() {
        let mut pit = Pit::new();
        let i = interest("/a", 1);
        pit.insert(&i, f(1), SimTime::ZERO);
        let key = PitKey::of(&i);
        pit.add_out_record(&key, f(5), Some(1), SimTime::ZERO);
        pit.add_out_record(&key, f(5), Some(2), SimTime::ZERO + SimDuration::from_secs(1));
        let entry = pit.get(&key).unwrap();
        assert_eq!(entry.out_records.len(), 1);
        assert_eq!(entry.out_records[0].nonce, Some(2));
        assert!(entry.out_record(f(5)).is_some());
        assert!(entry.out_record(f(6)).is_none());
    }

    #[test]
    fn expiry_respects_version() {
        let mut pit = Pit::new();
        let i = interest("/a", 1);
        let (_, v0) = pit.insert(&i, f(1), SimTime::ZERO);
        let key = PitKey::of(&i);
        let t_exp = SimTime::ZERO + i.lifetime;
        // A refresh bumps the version; the old timer must not fire.
        let (_, v1) = pit.insert(&interest("/a", 2), f(2), SimTime::ZERO + SimDuration::from_secs(1));
        assert_ne!(v0, v1);
        assert!(pit.expire_if_stale(&key, v0, t_exp).is_none(), "stale timer ignored");
        // Current-version timer before expiry: also ignored.
        assert!(pit.expire_if_stale(&key, v1, SimTime::ZERO).is_none());
        // Current-version timer at/after expiry: entry removed.
        let t_exp2 = SimTime::ZERO + SimDuration::from_secs(1) + i.lifetime;
        assert!(pit.expire_if_stale(&key, v1, t_exp2).is_some());
        assert!(pit.is_empty());
    }

    #[test]
    fn prefix_index_invariant_across_churn() {
        // Interleave inserts (mixed selectors), takes, and expiries and
        // assert the prefix_keys ↔ entry index bookkeeping stays exact —
        // the swap_remove fix-up must repoint the moved key every time.
        use lidc_simcore::rng::DetRng;
        let mut rng = DetRng::new(11);
        let mut pit = Pit::new();
        let mut step_time = SimTime::ZERO;
        for step in 0..2000u64 {
            let id = rng.next_below(24);
            let prefixy = rng.next_bool(0.5);
            let uri = format!("/churn/{id}");
            let i = Interest::new(Name::parse(&uri).unwrap())
                .with_nonce(step as u32)
                .can_be_prefix(prefixy);
            let key = PitKey::of(&i);
            match rng.next_below(4) {
                0 | 1 => {
                    let (_, _) = pit.insert(&i, f(rng.next_below(4)), step_time);
                }
                2 => {
                    let _ = pit.take(&key);
                }
                _ => {
                    // Expire with the entry's current version (if present);
                    // far-future `now` guarantees the expiry has passed.
                    if let Some(version) = pit.get(&key).map(|e| e.version) {
                        let far = step_time + SimDuration::from_secs(3600);
                        let _ = pit.expire_if_stale(&key, version, far);
                    }
                }
            }
            // Matching must agree with the invariant at every step.
            pit.debug_check_prefix_invariant()
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
            if step % 7 == 0 {
                step_time += SimDuration::from_millis(250);
            }
        }
        // Drain everything through take and re-check.
        let keys: Vec<PitKey> = pit.entries.keys().cloned().collect();
        for key in keys {
            pit.take(&key);
            pit.debug_check_prefix_invariant().unwrap();
        }
        assert!(pit.is_empty());
        assert!(pit.prefix_keys.is_empty());
    }

    #[test]
    fn take_removes() {
        let mut pit = Pit::new();
        let i = interest("/a", 1);
        pit.insert(&i, f(1), SimTime::ZERO);
        let key = PitKey::of(&i);
        assert!(pit.take(&key).is_some());
        assert!(pit.take(&key).is_none());
    }
}
