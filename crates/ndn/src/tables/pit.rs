//! Pending Interest Table.
//!
//! The PIT is what makes NDN request routing stateful: it aggregates
//! identical Interests from many consumers (one upstream transmission serves
//! them all — the `ablate_aggregation` experiment measures this) and routes
//! returning Data back along the reverse paths.

use std::collections::HashMap;

use crate::face::FaceId;
use crate::name::Name;
use crate::packet::Interest;
use lidc_simcore::time::{SimDuration, SimTime};

/// PIT entries are keyed on the Interest name plus the selectors that change
/// matching semantics (mirrors NFD, which keys on the whole Interest minus
/// the nonce).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PitKey {
    /// Interest name.
    pub name: Name,
    /// CanBePrefix selector.
    pub can_be_prefix: bool,
    /// MustBeFresh selector.
    pub must_be_fresh: bool,
}

impl PitKey {
    /// Key for an Interest.
    pub fn of(interest: &Interest) -> Self {
        PitKey {
            name: interest.name.clone(),
            can_be_prefix: interest.can_be_prefix,
            must_be_fresh: interest.must_be_fresh,
        }
    }
}

/// A downstream (requester) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InRecord {
    /// Face the Interest arrived on.
    pub face: FaceId,
    /// Its nonce (for loop suppression on the return path).
    pub nonce: Option<u32>,
    /// When this record lapses.
    pub expiry: SimTime,
}

/// An upstream (forwarded-to) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutRecord {
    /// Face the Interest was sent out of.
    pub face: FaceId,
    /// When it was sent (for RTT measurement).
    pub sent_at: SimTime,
    /// Nonce used upstream.
    pub nonce: Option<u32>,
}

/// One pending Interest.
#[derive(Debug, Clone)]
pub struct PitEntry {
    /// Key (name + selectors).
    pub key: PitKey,
    /// The representative Interest (first to create the entry).
    pub interest: Interest,
    /// Downstream records.
    pub in_records: Vec<InRecord>,
    /// Upstream records.
    pub out_records: Vec<OutRecord>,
    /// Entry expiry = max over in-record expiries.
    pub expiry: SimTime,
    /// Version stamp: incremented on every refresh so stale expiry timers
    /// can be recognised and ignored.
    pub version: u64,
}

impl PitEntry {
    /// True if `face` already has an in-record with the same nonce (i.e.
    /// this arrival is a duplicate rather than a retransmission).
    pub fn is_duplicate_from(&self, face: FaceId, nonce: Option<u32>) -> bool {
        self.in_records
            .iter()
            .any(|r| r.face == face && r.nonce == nonce && nonce.is_some())
    }

    /// Downstream faces to return Data to (excluding `except`, typically the
    /// face the Data arrived on).
    pub fn return_faces(&self, except: FaceId) -> Vec<FaceId> {
        let mut faces: Vec<FaceId> = self
            .in_records
            .iter()
            .map(|r| r.face)
            .filter(|f| *f != except)
            .collect();
        faces.sort_unstable();
        faces.dedup();
        faces
    }

    /// The out-record for `face`, if any.
    pub fn out_record(&self, face: FaceId) -> Option<&OutRecord> {
        self.out_records.iter().find(|r| r.face == face)
    }
}

/// Outcome of inserting an Interest.
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new entry was created: the Interest should be forwarded.
    New,
    /// Aggregated into an existing entry that already has an outstanding
    /// upstream transmission: do not forward again.
    Aggregated,
    /// Same downstream retransmitted (same face, new nonce): the strategy
    /// may choose to try another upstream.
    Retransmission,
    /// Exact duplicate (same face, same nonce): drop / NACK as a loop.
    DuplicateNonce,
}

/// The Pending Interest Table.
#[derive(Debug, Default)]
pub struct Pit {
    entries: HashMap<PitKey, PitEntry>,
}

impl Pit {
    /// Empty PIT.
    pub fn new() -> Self {
        Pit::default()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record the arrival of `interest` on `face` at `now`.
    ///
    /// Returns the outcome plus the entry's new version (for scheduling the
    /// expiry timer).
    pub fn insert(
        &mut self,
        interest: &Interest,
        face: FaceId,
        now: SimTime,
    ) -> (InsertOutcome, u64) {
        let key = PitKey::of(interest);
        let expiry = now + interest.lifetime;
        match self.entries.get_mut(&key) {
            None => {
                let entry = PitEntry {
                    key: key.clone(),
                    interest: interest.clone(),
                    in_records: vec![InRecord {
                        face,
                        nonce: interest.nonce,
                        expiry,
                    }],
                    out_records: Vec::new(),
                    expiry,
                    version: 0,
                };
                self.entries.insert(key, entry);
                (InsertOutcome::New, 0)
            }
            Some(entry) => {
                if entry.is_duplicate_from(face, interest.nonce) {
                    return (InsertOutcome::DuplicateNonce, entry.version);
                }
                let from_same_face = entry.in_records.iter().any(|r| r.face == face);
                match entry.in_records.iter_mut().find(|r| r.face == face) {
                    Some(rec) => {
                        rec.nonce = interest.nonce;
                        rec.expiry = expiry;
                    }
                    None => entry.in_records.push(InRecord {
                        face,
                        nonce: interest.nonce,
                        expiry,
                    }),
                }
                entry.expiry = entry.expiry.max(expiry);
                entry.version += 1;
                if from_same_face {
                    (InsertOutcome::Retransmission, entry.version)
                } else {
                    (InsertOutcome::Aggregated, entry.version)
                }
            }
        }
    }

    /// Record that the Interest was forwarded out `face`.
    pub fn add_out_record(&mut self, key: &PitKey, face: FaceId, nonce: Option<u32>, now: SimTime) {
        if let Some(entry) = self.entries.get_mut(key) {
            match entry.out_records.iter_mut().find(|r| r.face == face) {
                Some(rec) => {
                    rec.sent_at = now;
                    rec.nonce = nonce;
                }
                None => entry.out_records.push(OutRecord {
                    face,
                    sent_at: now,
                    nonce,
                }),
            }
        }
    }

    /// Find the entry a Data packet satisfies. NDN matching: the Data name
    /// must equal the Interest name, or extend it when CanBePrefix is set.
    /// When several entries match, all are returned (e.g. a prefix Interest
    /// and an exact Interest for the same object).
    pub fn match_data(&self, data_name: &Name) -> Vec<PitKey> {
        let mut keys: Vec<PitKey> = self
            .entries
            .values()
            .filter(|e| {
                if e.key.can_be_prefix {
                    e.key.name.is_prefix_of(data_name)
                } else {
                    &e.key.name == data_name
                }
            })
            .map(|e| e.key.clone())
            .collect();
        // Deterministic order: by name, exact matches first.
        keys.sort_by(|a, b| a.name.cmp(&b.name).then(a.can_be_prefix.cmp(&b.can_be_prefix)));
        keys
    }

    /// Look up an entry.
    pub fn get(&self, key: &PitKey) -> Option<&PitEntry> {
        self.entries.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &PitKey) -> Option<&mut PitEntry> {
        self.entries.get_mut(key)
    }

    /// Remove and return an entry (when satisfied by Data or fully NACKed).
    pub fn take(&mut self, key: &PitKey) -> Option<PitEntry> {
        self.entries.remove(key)
    }

    /// Expire the entry if `version` is still current and its expiry has
    /// passed. Returns the entry when it was expired.
    pub fn expire_if_stale(&mut self, key: &PitKey, version: u64, now: SimTime) -> Option<PitEntry> {
        let entry = self.entries.get(key)?;
        if entry.version != version || entry.expiry > now {
            return None;
        }
        self.entries.remove(key)
    }

    /// The time until `key`'s entry expires (for scheduling).
    pub fn time_to_expiry(&self, key: &PitKey, now: SimTime) -> Option<SimDuration> {
        self.entries.get(key).map(|e| e.expiry.since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64) -> FaceId {
        FaceId::from_raw(id)
    }

    fn interest(uri: &str, nonce: u32) -> Interest {
        Interest::new(name!(uri)).with_nonce(nonce)
    }

    #[test]
    fn first_arrival_is_new() {
        let mut pit = Pit::new();
        let i = interest("/a/b", 1);
        let (outcome, _) = pit.insert(&i, f(1), SimTime::ZERO);
        assert_eq!(outcome, InsertOutcome::New);
        assert_eq!(pit.len(), 1);
    }

    #[test]
    fn second_consumer_aggregates() {
        let mut pit = Pit::new();
        let now = SimTime::ZERO;
        pit.insert(&interest("/a/b", 1), f(1), now);
        let (outcome, _) = pit.insert(&interest("/a/b", 2), f(2), now);
        assert_eq!(outcome, InsertOutcome::Aggregated);
        assert_eq!(pit.len(), 1, "one entry for both consumers");
        let key = PitKey::of(&interest("/a/b", 1));
        assert_eq!(pit.get(&key).unwrap().in_records.len(), 2);
    }

    #[test]
    fn same_face_new_nonce_is_retransmission() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a", 1), f(1), SimTime::ZERO);
        let (outcome, _) = pit.insert(&interest("/a", 99), f(1), SimTime::ZERO);
        assert_eq!(outcome, InsertOutcome::Retransmission);
    }

    #[test]
    fn same_face_same_nonce_is_duplicate() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a", 7), f(1), SimTime::ZERO);
        let (outcome, _) = pit.insert(&interest("/a", 7), f(1), SimTime::ZERO);
        assert_eq!(outcome, InsertOutcome::DuplicateNonce);
    }

    #[test]
    fn selectors_separate_entries() {
        let mut pit = Pit::new();
        let exact = interest("/a", 1);
        let prefix = interest("/a", 2).can_be_prefix(true);
        pit.insert(&exact, f(1), SimTime::ZERO);
        pit.insert(&prefix, f(1), SimTime::ZERO);
        assert_eq!(pit.len(), 2, "different selectors, different entries");
    }

    #[test]
    fn data_matching_exact_and_prefix() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a/b", 1), f(1), SimTime::ZERO);
        pit.insert(&interest("/a", 2).can_be_prefix(true), f(2), SimTime::ZERO);
        pit.insert(&interest("/a", 3), f(3), SimTime::ZERO); // exact /a
        let matched = pit.match_data(&name!("/a/b"));
        assert_eq!(matched.len(), 2, "exact /a/b and prefix /a match");
        assert!(matched.iter().any(|k| k.name == name!("/a/b") && !k.can_be_prefix));
        assert!(matched.iter().any(|k| k.name == name!("/a") && k.can_be_prefix));
        let matched = pit.match_data(&name!("/a"));
        assert_eq!(matched.len(), 2, "exact /a and prefix /a");
    }

    #[test]
    fn return_faces_excludes_arrival_face() {
        let mut pit = Pit::new();
        pit.insert(&interest("/a", 1), f(1), SimTime::ZERO);
        pit.insert(&interest("/a", 2), f(2), SimTime::ZERO);
        let key = PitKey::of(&interest("/a", 1));
        let entry = pit.get(&key).unwrap();
        assert_eq!(entry.return_faces(f(2)), vec![f(1)]);
        assert_eq!(entry.return_faces(f(9)), vec![f(1), f(2)]);
    }

    #[test]
    fn out_records_updated_not_duplicated() {
        let mut pit = Pit::new();
        let i = interest("/a", 1);
        pit.insert(&i, f(1), SimTime::ZERO);
        let key = PitKey::of(&i);
        pit.add_out_record(&key, f(5), Some(1), SimTime::ZERO);
        pit.add_out_record(&key, f(5), Some(2), SimTime::ZERO + SimDuration::from_secs(1));
        let entry = pit.get(&key).unwrap();
        assert_eq!(entry.out_records.len(), 1);
        assert_eq!(entry.out_records[0].nonce, Some(2));
        assert!(entry.out_record(f(5)).is_some());
        assert!(entry.out_record(f(6)).is_none());
    }

    #[test]
    fn expiry_respects_version() {
        let mut pit = Pit::new();
        let i = interest("/a", 1);
        let (_, v0) = pit.insert(&i, f(1), SimTime::ZERO);
        let key = PitKey::of(&i);
        let t_exp = SimTime::ZERO + i.lifetime;
        // A refresh bumps the version; the old timer must not fire.
        let (_, v1) = pit.insert(&interest("/a", 2), f(2), SimTime::ZERO + SimDuration::from_secs(1));
        assert_ne!(v0, v1);
        assert!(pit.expire_if_stale(&key, v0, t_exp).is_none(), "stale timer ignored");
        // Current-version timer before expiry: also ignored.
        assert!(pit.expire_if_stale(&key, v1, SimTime::ZERO).is_none());
        // Current-version timer at/after expiry: entry removed.
        let t_exp2 = SimTime::ZERO + SimDuration::from_secs(1) + i.lifetime;
        assert!(pit.expire_if_stale(&key, v1, t_exp2).is_some());
        assert!(pit.is_empty());
    }

    #[test]
    fn take_removes() {
        let mut pit = Pit::new();
        let i = interest("/a", 1);
        pit.insert(&i, f(1), SimTime::ZERO);
        let key = PitKey::of(&i);
        assert!(pit.take(&key).is_some());
        assert!(pit.take(&key).is_none());
    }
}
