//! Name-hash-sharded PIT and Content Store.
//!
//! One forwarder's tables become `N` independent shards keyed by the
//! forwarder's existing FxHash of the name, so a batched ingress can
//! partition a burst by shard and probe/mutate the shards concurrently —
//! every operation on one name lands in one shard, in arrival order.
//!
//! # Semantics relative to the single-shard tables
//!
//! Probe **results** are identical to the single-shard tables as long as no
//! capacity or byte budget binds (pinned by proptests in
//! `crates/ndn/tests/props.rs`):
//!
//! * exact-name operations route to `shard(name)` and hit the same
//!   single-shard code;
//! * PIT data matching composes per-shard exact probes with a scan of every
//!   shard's (usually empty) `CanBePrefix` key list and applies the same
//!   final deterministic sort;
//! * CS `CanBePrefix` lookups k-way-merge the shards' canonical-order range
//!   walks, visiting records in exactly the global canonical order — same
//!   winner, same stale-eviction set as one store.
//!
//! What sharding **does** change: eviction locality. Capacity and byte
//! budgets are split across shards (each shard runs its own LRU), so under
//! pressure the evicted *victims* can differ from a single global LRU. The
//! default everywhere remains 1 shard; multi-shard configurations trade
//! exact global LRU for intra-node parallelism, which is the explicit
//! point of the configuration.
//!
//! The per-probe zero-allocation guarantee carries over per shard: routing
//! hashes a borrowed name view and delegates to the allocation-free
//! single-shard probes (`crates/ndn/tests/alloc_probes.rs` runs the same
//! counting-allocator checks against 4-shard tables).

use std::hash::{Hash, Hasher};

use crate::fxhash::FxHasher;
use crate::name::Name;
use crate::packet::{Data, Interest};
use crate::tables::cs::{ContentStore, CsConfig};
use crate::tables::pit::{sort_match_keys, InsertOutcome, Pit, PitKey};
use lidc_simcore::time::{SimDuration, SimTime};

use crate::face::FaceId;

/// The shard an operation on `name` routes to: the forwarder's FxHash of
/// the name's components, reduced mod `shards`. Allocation-free (hashes the
/// borrowed component view). With one shard no hash is computed at all.
#[inline]
pub fn shard_of(name: &Name, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut hasher = FxHasher::default();
    name.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// Split a total entry capacity into per-shard capacities that sum to the
/// total, except that a nonzero total never produces a zero shard (a
/// 0-capacity shard would silently refuse its names' inserts). Shared with
/// the forwarder's per-shard dead-nonce lists.
pub(crate) fn split_capacity(total: usize, shards: usize) -> Vec<usize> {
    (0..shards)
        .map(|i| {
            // lidc-lint: allow(panic-path) reason="every constructor clamps the shard count with max(1), so shards is nonzero"
            let base = total / shards + usize::from(i < total % shards);
            if total > 0 {
                base.max(1)
            } else {
                0
            }
        })
        .collect()
}

/// Split a byte budget per shard (0 stays 0 = no byte limit).
fn split_budget(total: u64, shards: u64) -> Vec<u64> {
    (0..shards)
        // lidc-lint: allow(panic-path) reason="every constructor clamps the shard count with max(1), so shards is nonzero"
        .map(|i| total / shards + u64::from(i < total % shards))
        .collect()
}

/// Shard storage that keeps the overwhelmingly common single-shard case
/// **inline** (no heap indirection on the default configuration's probe
/// path — the PR-1 zero-alloc fast path must not gain a pointer chase).
#[derive(Debug)]
enum Shards<T> {
    One(T),
    Many(Vec<T>),
}

impl<T> Shards<T> {
    fn build(n: usize, mut make: impl FnMut() -> T) -> Self {
        if n <= 1 {
            Shards::One(make())
        } else {
            Shards::Many((0..n).map(|_| make()).collect())
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Shards::One(_) => 1,
            Shards::Many(v) => v.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> &T {
        match self {
            Shards::One(t) => t,
            // lidc-lint: allow(panic-path) reason="Many is only built with the configured shard count and shard_of reduces i modulo that count"
            Shards::Many(v) => &v[i],
        }
    }

    #[inline]
    fn get_mut(&mut self, i: usize) -> &mut T {
        match self {
            Shards::One(t) => t,
            // lidc-lint: allow(panic-path) reason="Many is only built with the configured shard count and shard_of reduces i modulo that count"
            Shards::Many(v) => &mut v[i],
        }
    }

    #[inline]
    fn as_slice(&self) -> &[T] {
        match self {
            Shards::One(t) => std::slice::from_ref(t),
            Shards::Many(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            Shards::One(t) => std::slice::from_mut(t),
            Shards::Many(v) => v,
        }
    }
}

/// An `N`-way name-hash-sharded Pending Interest Table.
#[derive(Debug)]
pub struct ShardedPit {
    shards: Shards<Pit>,
}

impl ShardedPit {
    /// A PIT with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        ShardedPit {
            shards: Shards::build(shards.max(1), Pit::new),
        }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `name` routes to.
    #[inline]
    pub fn shard_of(&self, name: &Name) -> usize {
        shard_of(name, self.shards.len())
    }

    /// Borrow all shards (parallel ingress hands disjoint `&mut` shards to
    /// workers via `iter_mut`).
    pub fn shards(&self) -> &[Pit] {
        self.shards.as_slice()
    }

    /// Mutably borrow all shards.
    pub fn shards_mut(&mut self) -> &mut [Pit] {
        self.shards.as_mut_slice()
    }

    /// Total pending entries across shards.
    pub fn len(&self) -> usize {
        self.shards.as_slice().iter().map(Pit::len).sum()
    }

    /// True when nothing is pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.as_slice().iter().all(Pit::is_empty)
    }

    /// Total `CanBePrefix` entries across shards (0 ⇒ Data matching never
    /// crosses shards, the precondition for parallel ingress).
    pub fn prefix_entry_count(&self) -> usize {
        self.shards.as_slice().iter().map(Pit::prefix_entry_count).sum()
    }

    /// See [`Pit::insert`]; routes to `shard(interest.name)`.
    pub fn insert(
        &mut self,
        interest: &Interest,
        face: FaceId,
        now: SimTime,
    ) -> (InsertOutcome, u64) {
        let s = self.shard_of(&interest.name);
        self.shards.get_mut(s).insert(interest, face, now)
    }

    /// See [`Pit::add_out_record`].
    pub fn add_out_record(&mut self, key: &PitKey, face: FaceId, nonce: Option<u32>, now: SimTime) {
        let s = self.shard_of(&key.name);
        self.shards.get_mut(s).add_out_record(key, face, nonce, now);
    }

    /// See [`Pit::match_data_into`]: exact probes in `shard(data_name)`,
    /// prefix scans over every shard, one final deterministic sort — the
    /// result is byte-identical to the single-shard match.
    pub fn match_data_into(&self, data_name: &Name, out: &mut Vec<PitKey>) {
        out.clear();
        self.shards
            .get(self.shard_of(data_name))
            .match_exact_append(data_name, out);
        for shard in self.shards.as_slice() {
            shard.match_prefix_append(data_name, out);
        }
        sort_match_keys(out);
    }

    /// See [`Pit::get`].
    pub fn get(&self, key: &PitKey) -> Option<&crate::tables::pit::PitEntry> {
        self.shards.get(self.shard_of(&key.name)).get(key)
    }

    /// See [`Pit::get_mut`].
    pub fn get_mut(&mut self, key: &PitKey) -> Option<&mut crate::tables::pit::PitEntry> {
        let s = self.shard_of(&key.name);
        self.shards.get_mut(s).get_mut(key)
    }

    /// See [`Pit::take`].
    pub fn take(&mut self, key: &PitKey) -> Option<crate::tables::pit::PitEntry> {
        let s = self.shard_of(&key.name);
        self.shards.get_mut(s).take(key)
    }

    /// See [`Pit::expire_if_stale`].
    pub fn expire_if_stale(
        &mut self,
        key: &PitKey,
        version: u64,
        now: SimTime,
    ) -> Option<crate::tables::pit::PitEntry> {
        let s = self.shard_of(&key.name);
        self.shards.get_mut(s).expire_if_stale(key, version, now)
    }

    /// See [`Pit::time_to_expiry`].
    pub fn time_to_expiry(&self, key: &PitKey, now: SimTime) -> Option<SimDuration> {
        self.shards.get(self.shard_of(&key.name)).time_to_expiry(key, now)
    }
}

/// An `N`-way name-hash-sharded Content Store.
#[derive(Debug)]
pub struct ShardedCs {
    shards: Shards<ContentStore>,
}

impl ShardedCs {
    /// A store with `shards` shards splitting `config`'s entry capacity and
    /// byte budget (each shard keeps the same bulk threshold and protected
    /// fraction, applied to its share).
    pub fn with_config(config: CsConfig, shards: usize) -> Self {
        let n = shards.max(1);
        if n == 1 {
            return ShardedCs {
                shards: Shards::One(ContentStore::with_config(config)),
            };
        }
        let caps = split_capacity(config.capacity, n);
        let budgets = split_budget(config.budget_bytes, n as u64);
        ShardedCs {
            shards: Shards::Many(
                caps.into_iter()
                    .zip(budgets)
                    .map(|(capacity, budget_bytes)| {
                        ContentStore::with_config(CsConfig {
                            capacity,
                            budget_bytes,
                            ..config.clone()
                        })
                    })
                    .collect(),
            ),
        }
    }

    /// A count-only sharded store (no byte limit).
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_config(CsConfig::count_only(capacity), shards)
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `name` routes to.
    #[inline]
    pub fn shard_of(&self, name: &Name) -> usize {
        shard_of(name, self.shards.len())
    }

    /// Borrow all shards.
    pub fn shards(&self) -> &[ContentStore] {
        self.shards.as_slice()
    }

    /// Mutably borrow all shards.
    pub fn shards_mut(&mut self) -> &mut [ContentStore] {
        self.shards.as_mut_slice()
    }

    /// Total cached packets.
    pub fn len(&self) -> usize {
        self.shards.as_slice().iter().map(ContentStore::len).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.as_slice().iter().all(ContentStore::is_empty)
    }

    /// Total bytes held across shards.
    pub fn bytes_used(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::bytes_used).sum()
    }

    /// Lifetime hits across shards.
    pub fn hits(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::hits).sum()
    }

    /// Lifetime misses across shards.
    pub fn misses(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::misses).sum()
    }

    /// Lifetime LRU evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::evictions).sum()
    }

    /// Bytes reclaimed by LRU evictions across shards.
    pub fn evicted_bytes(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::evicted_bytes).sum()
    }

    /// Byte-budget-driven evictions across shards.
    pub fn byte_evictions(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::byte_evictions).sum()
    }

    /// Admission rejections across shards.
    pub fn admission_rejections(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::admission_rejections).sum()
    }

    /// Stale-probe evictions across shards.
    pub fn stale_evictions(&self) -> u64 {
        self.shards.as_slice().iter().map(ContentStore::stale_evictions).sum()
    }

    /// See [`ContentStore::insert`]; routes to `shard(data.name)`.
    pub fn insert(&mut self, data: Data, now: SimTime) {
        let s = self.shard_of(&data.name);
        self.shards.get_mut(s).insert(data, now);
    }

    /// See [`ContentStore::lookup`]. Exact probes route to one shard;
    /// `CanBePrefix` probes k-way-merge the shards' canonical range walks so
    /// the winner and the stale-eviction side effects are exactly those of a
    /// single-shard walk.
    pub fn lookup(&mut self, interest: &Interest, now: SimTime) -> Option<Data> {
        if self.shards.len() == 1 || !interest.can_be_prefix {
            let s = self.shard_of(&interest.name);
            return self.shards.get_mut(s).lookup(interest, now);
        }
        let must_be_fresh = interest.must_be_fresh;
        let mut stale: Vec<(usize, usize)> = Vec::new();
        let mut winner: Option<(usize, usize, Data)> = None;
        {
            let prefix = interest.name.components();
            let mut walks: Vec<_> = self
                .shards
                .as_slice()
                .iter()
                .map(|shard| shard.scan_prefix(prefix).peekable())
                .collect();
            loop {
                // The shard whose next record is canonical-least.
                let mut best: Option<(usize, &Name)> = None;
                for (i, walk) in walks.iter_mut().enumerate() {
                    if let Some((name, _, _, _)) = walk.peek() {
                        if best.map(|(_, b)| *name < b).unwrap_or(true) {
                            best = Some((i, name));
                        }
                    }
                }
                let Some((i, _)) = best else {
                    break;
                };
                // lidc-lint: allow(panic-path) reason="best was set from a peek on walks[i] that returned Some this iteration"
                let (_, slot, fresh_until, data) = walks[i].next().expect("peeked");
                let fresh = !must_be_fresh || fresh_until.map(|t| now < t).unwrap_or(false);
                if fresh {
                    winner = Some((i, slot, data.clone()));
                    break;
                }
                // Only reachable under MustBeFresh: the record is stale.
                stale.push((i, slot));
            }
        }
        for (i, slot) in stale {
            self.shards.get_mut(i).evict_stale(slot);
        }
        match winner {
            Some((i, slot, data)) => {
                self.shards.get_mut(i).record_hit(slot);
                Some(data)
            }
            None => {
                // Account the miss on the probed prefix's home shard so the
                // aggregate hit/miss totals match a single store exactly.
                let s = self.shard_of(&interest.name);
                self.shards.get_mut(s).record_miss();
                None
            }
        }
    }

    /// All cached names in canonical order (diagnostics; allocates).
    pub fn names(&self) -> Vec<Name> {
        let mut names: Vec<Name> = self
            .shards
            .as_slice()
            .iter()
            .flat_map(|s| s.names().cloned())
            .collect();
        names.sort();
        names
    }

    /// Drop every record in every shard.
    pub fn clear(&mut self) {
        for shard in self.shards.as_mut_slice() {
            shard.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(uri: &str) -> Data {
        Data::new(Name::parse(uri).unwrap(), &b"content"[..]).sign_digest()
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let n = Name::parse("/ndn/k8s/compute/app=BLAST").unwrap();
        for shards in [1usize, 2, 4, 7] {
            let s = shard_of(&n, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(&n, shards), "stable");
        }
        assert_eq!(shard_of(&n, 1), 0, "single shard skips hashing");
    }

    #[test]
    fn capacity_split_sums_and_never_zeroes_a_shard() {
        assert_eq!(split_capacity(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(split_capacity(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_capacity(2, 4), vec![1, 1, 1, 1], "floored at 1");
        assert_eq!(split_capacity(0, 4), vec![0, 0, 0, 0], "0 stays disabled");
        assert_eq!(split_budget(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_budget(0, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn sharded_pit_routes_and_aggregates() {
        let mut pit = ShardedPit::new(4);
        let now = SimTime::ZERO;
        for i in 0..32 {
            let interest = Interest::new(Name::parse(&format!("/svc/job-{i}")).unwrap())
                .with_nonce(i);
            let (outcome, _) = pit.insert(&interest, FaceId::from_raw(1), now);
            assert_eq!(outcome, InsertOutcome::New);
        }
        assert_eq!(pit.len(), 32);
        assert!(pit.shards().iter().filter(|s| !s.is_empty()).count() > 1, "names spread");
        let name = Name::parse("/svc/job-7").unwrap();
        let mut keys = Vec::new();
        pit.match_data_into(&name, &mut keys);
        assert_eq!(keys.len(), 1);
        assert!(pit.take(&keys[0]).is_some());
        assert_eq!(pit.len(), 31);
    }

    #[test]
    fn sharded_cs_prefix_walk_matches_canonical_order() {
        let now = SimTime::ZERO;
        let mut cs = ShardedCs::new(64, 4);
        cs.insert(data("/a/b/seg=1"), now);
        cs.insert(data("/a/b/seg=0"), now);
        cs.insert(data("/z/unrelated"), now);
        let i = Interest::new(Name::parse("/a/b").unwrap()).can_be_prefix(true);
        let hit = cs.lookup(&i, now).unwrap();
        assert_eq!(hit.name, Name::parse("/a/b/seg=0").unwrap(), "leftmost wins across shards");
        assert_eq!(cs.hits(), 1);
        let miss = Interest::new(Name::parse("/nope").unwrap()).can_be_prefix(true);
        assert!(cs.lookup(&miss, now).is_none());
        assert_eq!(cs.misses(), 1);
    }
}
