//! Forwarder tables: FIB, PIT, and Content Store.

pub mod cs;
pub mod fib;
pub mod pit;
