//! Forwarder tables: FIB, PIT, and Content Store — plus the name-hash
//! sharded variants one forwarder uses to exploit multiple cores.

pub mod cs;
pub mod fib;
pub mod pit;
pub mod shard;
