//! The NDN forwarding daemon (NFD-equivalent), as a simulation actor.
//!
//! Implements the NFD forwarding pipeline: Content Store lookup, PIT
//! aggregation, dead-nonce loop suppression, FIB longest-prefix match,
//! per-prefix strategy choice, reverse-path Data delivery, NACKs, and PIT
//! expiry. Faces connect either to peer forwarders (with latency/bandwidth/
//! loss) or to local application actors (producers, consumers, the LIDC
//! gateway).
//!
//! # Wire batching
//!
//! Outbound link transmissions are *staged* during a handler invocation and
//! flushed once at the end: every packet bound for the same link face with
//! the same computed arrival instant travels in a single scheduler event (a
//! [`RxBatch`]) instead of one event per packet. Per-packet semantics —
//! loss draws, serialisation delay, `busy_until` FIFO queueing, counters —
//! are computed at staging time, so timing and state are bit-identical to
//! per-packet delivery; only the number of scheduler events shrinks. The
//! forwarder's batched ingress ([`Actor::on_batch`]) processes a coalesced
//! burst of [`Rx`]/[`RxBatch`] messages in arrival order, reusing the
//! PIT/CS scratch buffers across the whole burst, and flushes staged
//! transmissions once per burst. This is what keeps the 4096-node scaling
//! runs out of scheduler churn.
//!
//! # Sharded, two-phase parallel ingress
//!
//! With [`ForwarderConfig::shards`] `> 1` the PIT, CS, and dead-nonce list
//! become name-hash shards ([`crate::tables::shard`]), and a batched burst
//! of packets is processed in two phases:
//!
//! 1. **Shard phase** (parallel across shards for large bursts): each
//!    packet's *table work* — hop-limit, dead-nonce probe, CS lookup/insert,
//!    PIT insert/match/take, FIB longest-prefix match (read-only) — runs
//!    against its name's shard, in arrival order within the shard, emitting
//!    a per-packet outcome. Every operation on one name lands in one shard,
//!    so same-name sequences keep their serial semantics.
//! 2. **Merge phase** (serial, global arrival order): outcomes are replayed
//!    in burst order to do everything order-sensitive — strategy selection
//!    (shared per-prefix state + RNG draws), PIT out-record registration,
//!    link staging (`busy_until` FIFO, loss draws), face counters, and
//!    metrics — so the schedule and all counters are identical to serial
//!    processing of the same sharded configuration.
//!
//! A burst falls back to the serial per-packet path when it contains Nacks
//! or `CanBePrefix` Interests, or Data while prefix PIT entries are
//! resident (those are the only cases where one packet's table work can
//! cross shards). Known reordering relative to fully serial processing:
//! when an Interest and a Data *for the same name* share one burst, the
//! Interest's out-record is registered after the Data's PIT take instead of
//! before (observable only through dead-nonce retirement of the
//! just-forwarded nonce and a zero-RTT strategy feedback); and capacity /
//! byte budgets are split per shard, so under pressure eviction victims
//! can differ from a single global LRU. With `shards = 1` (the default
//! everywhere) the legacy path runs unchanged.

use std::collections::VecDeque;

use lidc_simcore::engine::{Actor, Concurrency, Ctx, Msg};
use lidc_simcore::time::{SimDuration, SimTime};

use crate::face::{Face, FaceId, FaceKind};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::name::Name;
use crate::packet::{Data, Interest, Nack, NackReason, Packet};
use crate::strategy::{BestRoute, Strategy, StrategyCtx};
use crate::tables::cs::CsConfig;
use crate::tables::fib::{Fib, NextHop};
use crate::tables::pit::{InsertOutcome, Pit, PitKey};
use crate::tables::shard::{shard_of, ShardedCs, ShardedPit};

/// A packet arriving at the forwarder on a face. Sent by peer forwarders
/// *and* by local applications injecting packets through their app face.
#[derive(Debug)]
pub struct Rx {
    /// The receiving face (from this forwarder's perspective).
    pub face: FaceId,
    /// The packet.
    pub packet: Packet,
}

/// A burst of packets crossing one link in a single scheduler event: they
/// all arrive on `face` at the same instant, in transmission order. Sent by
/// peer forwarders' wire-batch flush (see the module docs).
#[derive(Debug)]
pub struct RxBatch {
    /// The receiving face (from this forwarder's perspective).
    pub face: FaceId,
    /// The packets, in the order they were transmitted.
    pub packets: Vec<Packet>,
}

/// A packet the forwarder delivers to a local application actor.
#[derive(Debug)]
pub struct AppRx {
    /// The app's face on the forwarder.
    pub face: FaceId,
    /// The packet.
    pub packet: Packet,
}

/// Runtime face addition (topology churn).
#[derive(Debug)]
pub struct AddFace {
    /// Fully-specified face (id allocated by the caller).
    pub face: Face,
}

/// Runtime face removal; routes through the face are dropped.
#[derive(Debug)]
pub struct RemoveFace {
    /// The face to destroy.
    pub face: FaceId,
}

/// Administrative up/down.
#[derive(Debug)]
pub struct SetFaceUp {
    /// The face.
    pub face: FaceId,
    /// New state.
    pub up: bool,
}

/// Runtime link degradation (fault injection): rewrites the mutable
/// degradation fields of a link face's [`LinkProps`](crate::face::LinkProps)
/// in place. `latency_factor: 1.0, extra_loss: 0.0, corrupt: 0.0` heals the
/// link; the base latency/bandwidth/loss are never touched.
#[derive(Debug)]
pub struct DegradeLink {
    /// The link face.
    pub face: FaceId,
    /// Multiplier applied to the link's propagation latency.
    pub latency_factor: f64,
    /// Loss probability added to the link's base loss.
    pub extra_loss: f64,
    /// Per-packet corruption probability. What a corrupted packet turns
    /// into is the sender's [`CorruptionMode`].
    pub corrupt: f64,
}

/// What the link model does to a packet its corruption draw selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptionMode {
    /// Honest corruption: flip one seeded bit of a Data packet (content or
    /// signature bytes) and transmit the damaged packet — the error travels
    /// downstream until signature verification catches it at the next
    /// verify point (`ndn.link_corrupt_flips`). Interests and Nacks carry
    /// no signature for a verifier to check, so they are still dropped at
    /// the link (`ndn.link_corrupt_drops`), as is the rare Data with no
    /// flippable bytes.
    #[default]
    BitFlip,
    /// Legacy idealization: the corrupted packet is dropped *at the link*,
    /// before it ever reaches the peer (`ndn.link_corrupt_drops`) — as if
    /// every hop ran a perfect checksum. Kept behind this flag for
    /// scenarios pinned to the PR-6 corruption semantics.
    Drop,
}

/// Register a route (RIB entry flattened straight into the FIB).
#[derive(Debug)]
pub struct RegisterPrefix {
    /// Name prefix.
    pub prefix: Name,
    /// Next-hop face.
    pub face: FaceId,
    /// Routing cost.
    pub cost: u32,
}

/// Remove a route.
#[derive(Debug)]
pub struct UnregisterPrefix {
    /// Name prefix.
    pub prefix: Name,
    /// Next-hop face.
    pub face: FaceId,
}

/// Install a strategy for a prefix (longest-prefix-match choice).
pub struct SetStrategy {
    /// Prefix the strategy governs.
    pub prefix: Name,
    /// The strategy instance.
    pub strategy: Box<dyn Strategy>,
}

impl std::fmt::Debug for SetStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SetStrategy({} -> {})", self.prefix, self.strategy.strategy_name())
    }
}

/// Internal PIT-expiry timer.
#[derive(Debug)]
struct PitExpire {
    key: PitKey,
    version: u64,
}

/// Forwarder tuning knobs.
#[derive(Debug, Clone)]
pub struct ForwarderConfig {
    /// Content Store capacity in packets (0 disables caching).
    pub cs_capacity: usize,
    /// Content Store byte budget over payload + name cost (0 = no byte
    /// limit). `Default::default()` pairs the default capacity (4096) with
    /// its derived budget (one default-sized 1 MiB segment per slot); when
    /// overriding `cs_capacity` by struct update, use
    /// [`ForwarderConfig::for_cs_capacity`] (or set this field too) so the
    /// budget tracks the new capacity instead of staying at 4 GiB. See
    /// [`crate::tables::cs::CsConfig`] for the segment-aware admission
    /// policy the budget enables.
    pub cs_budget_bytes: u64,
    /// Dead nonce list capacity.
    pub dnl_capacity: usize,
    /// Name-hash shard count for the PIT/CS/dead-nonce tables (1 = the
    /// single-shard tables and the legacy serial ingress). With more
    /// shards, batched bursts take the two-phase ingress (see the module
    /// docs) and large bursts probe the shards on parallel threads.
    /// Capacity and byte budgets are split across shards.
    pub shards: usize,
    /// Delivery latency to application faces. Real NFD apps sit behind a
    /// unix/TCP socket (the paper's NodePort exposure), so the hop is small
    /// but never zero; a nonzero default also keeps request/response
    /// timestamps strictly ordered in single-cluster worlds.
    pub app_face_latency: lidc_simcore::time::SimDuration,
    /// Verify every Data's signature before it can satisfy PIT entries or
    /// enter the Content Store (the cache-poisoning defense; see
    /// docs/INTEGRITY.md). An unverifiable Data counts `ndn.verify_failed`,
    /// leaves the PIT untouched (retransmissions and alternate upstreams
    /// keep working), and — when it would have been cached — counts
    /// `ndn.cs_poison_rejected` and records a quarantine strike against the
    /// ingress face. Default on; turn off only for benches isolating
    /// non-crypto forwarding cost.
    pub verify_data: bool,
    /// What the link corruption model does to a packet it damages.
    pub corruption: CorruptionMode,
    /// Decayed verification-failure strike count at which an ingress face
    /// is quarantined: while at or above this, the face is skipped as a
    /// next hop whenever an alternate exists (`ndn.quarantine_skips`).
    pub quarantine_threshold: f64,
    /// Half-life of the decaying strike counter: a face that stops failing
    /// verification re-earns trust on this timescale.
    pub quarantine_halflife: lidc_simcore::time::SimDuration,
}

impl Default for ForwarderConfig {
    fn default() -> Self {
        ForwarderConfig {
            cs_capacity: 4096,
            cs_budget_bytes: crate::tables::cs::default_budget_bytes(4096),
            dnl_capacity: 8192,
            shards: 1,
            app_face_latency: lidc_simcore::time::SimDuration::from_micros(50),
            verify_data: true,
            corruption: CorruptionMode::BitFlip,
            quarantine_threshold: 3.0,
            quarantine_halflife: lidc_simcore::time::SimDuration::from_secs(30),
        }
    }
}

impl ForwarderConfig {
    /// Defaults with a Content Store of `capacity` entries and the byte
    /// budget derived from it (one default-sized 1 MiB segment per slot) —
    /// the coherent way to resize the store, keeping the two tiers of the
    /// budget coupled.
    pub fn for_cs_capacity(capacity: usize) -> Self {
        ForwarderConfig {
            cs_capacity: capacity,
            cs_budget_bytes: crate::tables::cs::default_budget_bytes(capacity),
            ..Default::default()
        }
    }

    /// Builder: set the PIT/CS/DNL shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Dead Nonce List: remembers (name, nonce) pairs of satisfied/expired
/// Interests so late loops are detected. FIFO-bounded.
#[derive(Debug, Default)]
struct DeadNonceList {
    set: FxHashSet<(Name, u32)>,
    order: VecDeque<(Name, u32)>,
    capacity: usize,
}

impl DeadNonceList {
    fn new(capacity: usize) -> Self {
        DeadNonceList {
            set: FxHashSet::default(),
            order: VecDeque::new(),
            capacity,
        }
    }

    fn insert(&mut self, name: Name, nonce: u32) {
        if self.capacity == 0 {
            return;
        }
        let key = (name, nonce);
        if self.set.insert(key.clone()) {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
        }
    }

    fn contains(&self, name: &Name, nonce: u32) -> bool {
        // HashSet<(Name, u32)> needs an owned-typed key to probe, but a
        // `Name` clone is an O(1) refcount bump (no heap allocation) under
        // the arena representation, so this probe is allocation-free.
        self.set.contains(&(name.clone(), nonce))
    }
}

/// Per-out-link staging bucket (wave-aware link fan-out; see the module
/// docs): every packet staged for one link during the current handler, in
/// staging order. Face `busy_until` is monotone, so per-bucket arrivals are
/// nondecreasing and same-arrival flush groups are *contiguous runs* — the
/// flush needs no hash pass, and a hub's fan-out over N links is N
/// independent bucket walks instead of one interleaved scan.
struct TxBucket {
    /// The peer forwarder.
    peer: lidc_simcore::engine::ActorId,
    /// The peer's face for this link.
    peer_face: FaceId,
    /// `(absolute arrival instant, packet)`, arrivals nondecreasing.
    txs: Vec<(lidc_simcore::time::SimTime, Packet)>,
}

/// One PIT entry satisfied by a Data packet in the shard phase: where to
/// return the Data, plus the strategy feedback the merge phase replays.
#[derive(Debug)]
struct Satisfaction {
    /// Downstream faces to return the Data to. (Named `downstreams`, not
    /// `faces`, so the field can't be confused with the forwarder's
    /// `faces` *map* — this Vec is already in deterministic PIT-record
    /// order.)
    downstreams: Vec<FaceId>,
    /// `(entry name, FIB prefix, upstream face, rtt)` when the Data arrived
    /// on a face the entry had an out-record for.
    feedback: Option<(Name, Name, FaceId, SimDuration)>,
}

/// The per-packet result of the shard phase, replayed by the merge phase in
/// global arrival order (see the module docs for the split).
///
/// Variant sizes intentionally differ: the big variants carry the packet
/// by value precisely to avoid a per-packet box on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum PhasedOutcome {
    /// Interest arrived with hop limit 0.
    HopLimitDrop,
    /// Dead-nonce list hit (probed before the CS, so no cs_miss).
    DnlDup { in_face: FaceId, interest: Interest },
    /// Content Store hit: return the Data downstream.
    CsHit { in_face: FaceId, data: Data },
    /// PIT flagged an exact duplicate (CS missed first).
    PitDup { in_face: FaceId, interest: Interest },
    /// Aggregated into an existing entry; refresh the expiry timer.
    Aggregated {
        key: PitKey,
        version: u64,
        ttl: Option<SimDuration>,
    },
    /// New entry or retransmission: the merge phase runs FIB + strategy
    /// selection and forwards.
    Forward {
        in_face: FaceId,
        interest: Interest,
        key: PitKey,
        version: u64,
        retransmission: bool,
        ttl: Option<SimDuration>,
    },
    /// Data matched no PIT entry (not cached, mirroring the serial path).
    Unsolicited,
    /// Data failed signature verification: never cached, PIT untouched.
    /// `poisoned` is true when PIT entries would have been satisfied (a
    /// cache-poisoning attempt, not line noise on an idle path).
    VerifyFailed {
        in_face: FaceId,
        name: Name,
        poisoned: bool,
    },
    /// Data satisfied one or more exact PIT entries.
    DataDeliver {
        data: Data,
        satisfied: Vec<Satisfaction>,
    },
}

/// Shard-phase handling of one Interest against its shard's tables (see
/// [`Forwarder::on_interest`] for the serial twin; the two must stay in
/// lockstep). Reads the FIB/strategy-free subset only — everything
/// order-sensitive is deferred to the merge phase via the outcome.
fn shard_interest(
    pit: &mut Pit,
    cs: &mut crate::tables::cs::ContentStore,
    dnl: &DeadNonceList,
    now: SimTime,
    in_face: FaceId,
    mut interest: Interest,
) -> PhasedOutcome {
    if let Some(h) = interest.hop_limit {
        if h == 0 {
            return PhasedOutcome::HopLimitDrop;
        }
        interest.hop_limit = Some(h - 1);
    }
    if let Some(nonce) = interest.nonce {
        if dnl.contains(&interest.name, nonce) {
            return PhasedOutcome::DnlDup { in_face, interest };
        }
    }
    if let Some(data) = cs.lookup(&interest, now) {
        return PhasedOutcome::CsHit { in_face, data };
    }
    let key = PitKey::of(&interest);
    let (outcome, version) = pit.insert(&interest, in_face, now);
    let ttl = pit.time_to_expiry(&key, now);
    match outcome {
        InsertOutcome::DuplicateNonce => PhasedOutcome::PitDup { in_face, interest },
        InsertOutcome::Aggregated => PhasedOutcome::Aggregated { key, version, ttl },
        outcome @ (InsertOutcome::New | InsertOutcome::Retransmission) => PhasedOutcome::Forward {
            in_face,
            interest,
            key,
            version,
            retransmission: outcome == InsertOutcome::Retransmission,
            ttl,
        },
    }
}

/// Shard-phase handling of one Data packet (serial twin:
/// [`Forwarder::on_data`]). Runs only when the PIT holds no `CanBePrefix`
/// entries, so exact probes in this shard are the complete match and every
/// satisfied entry's name (== the Data name) retires nonces into this
/// shard's dead-nonce list.
#[allow(clippy::too_many_arguments)] // one shard's disjoint &mut borrows
fn shard_data(
    pit: &mut Pit,
    cs: &mut crate::tables::cs::ContentStore,
    dnl: &mut DeadNonceList,
    keys: &mut Vec<PitKey>,
    fib: &Fib,
    now: SimTime,
    verify: bool,
    data: Data,
    in_face: FaceId,
) -> PhasedOutcome {
    keys.clear();
    // Exact probes already emit in the deterministic match order (plain
    // selector before MustBeFresh, same name).
    pit.match_exact_append(&data.name, keys);
    // Verify gate (serial twin: the same check in `Forwarder::on_data`).
    // Verification is pure per-packet CPU work, so it belongs in the shard
    // phase; the merge phase replays the metrics and quarantine strike.
    if verify && !data.verify(None) {
        let poisoned = !keys.is_empty();
        keys.clear();
        return PhasedOutcome::VerifyFailed { in_face, name: data.name, poisoned };
    }
    if keys.is_empty() {
        return PhasedOutcome::Unsolicited;
    }
    cs.insert(data.clone(), now);
    let mut satisfied = Vec::with_capacity(keys.len());
    for key in keys.drain(..) {
        let Some(entry) = pit.take(&key) else {
            continue;
        };
        let feedback = entry.out_record(in_face).and_then(|out| {
            let rtt = now.since(out.sent_at);
            fib.lookup(&entry.interest.name)
                .map(|fe| (entry.interest.name.clone(), fe.prefix.clone(), in_face, rtt))
        });
        for rec in &entry.in_records {
            if let Some(n) = rec.nonce {
                dnl.insert(entry.interest.name.clone(), n);
            }
        }
        for rec in &entry.out_records {
            if let Some(n) = rec.nonce {
                dnl.insert(entry.interest.name.clone(), n);
            }
        }
        satisfied.push(Satisfaction {
            downstreams: entry.return_faces(in_face),
            feedback,
        });
    }
    PhasedOutcome::DataDeliver { data, satisfied }
}

/// Run one shard's slice of the burst (arrival order within the shard),
/// filling `scratch.outcomes`. This is the function the parallel ingress
/// fans out over scoped threads — it touches only its own shard's tables
/// plus the read-only FIB.
fn run_shard_phase(
    pit: &mut Pit,
    cs: &mut crate::tables::cs::ContentStore,
    dnl: &mut DeadNonceList,
    scratch: &mut ShardScratch,
    fib: &Fib,
    now: SimTime,
    verify: bool,
) {
    let ShardScratch {
        packets,
        outcomes,
        keys,
    } = scratch;
    outcomes.clear();
    for (idx, face, packet) in packets.drain(..) {
        let outcome = match packet {
            Packet::Interest(i) => shard_interest(pit, cs, dnl, now, face, i),
            Packet::Data(d) => shard_data(pit, cs, dnl, keys, fib, now, verify, d, face),
            // lidc-lint: allow(panic-path) reason="phased runs pre-filter nacks onto the serial path, so shard batches hold only interests and data"
            Packet::Nack(_) => unreachable!("nacks never enter the phased path"),
        };
        outcomes.push((idx, outcome));
    }
}

/// Per-shard scratch for the two-phase ingress: the shard's packet slice of
/// the current burst, its emitted outcomes, and a reused PIT-key buffer.
/// Allocated once per shard; reused across bursts so steady-state parallel
/// ingress performs no per-burst buffer allocation beyond outcome payloads.
#[derive(Debug, Default)]
struct ShardScratch {
    packets: Vec<(u32, FaceId, Packet)>,
    outcomes: Vec<(u32, PhasedOutcome)>,
    keys: Vec<PitKey>,
}

/// The forwarder actor.
pub struct Forwarder {
    label: String,
    config: ForwarderConfig,
    faces: FxHashMap<FaceId, Face>,
    fib: Fib,
    pit: ShardedPit,
    cs: ShardedCs,
    /// Dead nonce lists, one per shard (same name-hash routing as PIT/CS).
    dnl: Vec<DeadNonceList>,
    /// Per-prefix strategies; longest-prefix-match choice with the root
    /// prefix always present (BestRoute by default).
    strategies: Vec<(Name, Box<dyn Strategy>)>,
    /// Reused buffer for PIT data-match results: Data arrivals fill this in
    /// place instead of allocating a fresh Vec per packet.
    pit_match_scratch: Vec<PitKey>,
    /// Link transmissions staged during the current handler invocation,
    /// bucketed by out-link in first-staged face order.
    tx_buckets: Vec<TxBucket>,
    /// Recycled bucket buffers (flushing empties a bucket but keeps its
    /// allocation for the next handler).
    tx_spare: Vec<Vec<(lidc_simcore::time::SimTime, Packet)>>,
    /// Per-shard scratch for the two-phase ingress (empty when shards = 1).
    shard_scratch: Vec<ShardScratch>,
    /// Reused arrival-order packet buffer for the current burst run.
    run_buf: Vec<(FaceId, Packet)>,
    /// Decaying per-face verification-failure strikes:
    /// `face → (strike count at last update, last update instant)`. Point
    /// lookups only — never iterated — so map order cannot leak into
    /// behavior. See [`ForwarderConfig::quarantine_threshold`].
    quarantine: FxHashMap<FaceId, (f64, SimTime)>,
}

/// Bursts below this size run the shard phase serially: scoped-thread
/// startup would cost more than the table work it parallelizes. Results
/// are identical either way; only wall-clock differs.
const PARALLEL_INGRESS_MIN: usize = 64;

/// The host's usable core count, cached — the threaded-or-inline decision
/// runs per large burst and must not pay a syscall each time.
fn host_parallelism() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

impl Forwarder {
    /// Create a forwarder with the given diagnostics label and config.
    pub fn new(label: impl Into<String>, config: ForwarderConfig) -> Self {
        let shards = config.shards.max(1);
        let dnl_caps = crate::tables::shard::split_capacity(config.dnl_capacity, shards);
        Forwarder {
            label: label.into(),
            faces: FxHashMap::default(),
            fib: Fib::new(),
            pit: ShardedPit::new(shards),
            cs: ShardedCs::with_config(
                CsConfig {
                    capacity: config.cs_capacity,
                    budget_bytes: config.cs_budget_bytes,
                    ..Default::default()
                },
                shards,
            ),
            dnl: dnl_caps.into_iter().map(DeadNonceList::new).collect(),
            strategies: vec![(Name::root(), Box::new(BestRoute::new()))],
            pit_match_scratch: Vec::new(),
            tx_buckets: Vec::new(),
            tx_spare: Vec::new(),
            shard_scratch: (0..shards).map(|_| ShardScratch::default()).collect(),
            run_buf: Vec::new(),
            quarantine: FxHashMap::default(),
            config,
        }
    }

    /// Diagnostics label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Add a face (pre-run topology building or via [`AddFace`]).
    pub fn add_face(&mut self, face: Face) {
        self.faces.insert(face.id, face);
    }

    /// Face lookup (tests/diagnostics).
    pub fn face(&self, id: FaceId) -> Option<&Face> {
        self.faces.get(&id)
    }

    /// All face ids, sorted (diagnostics).
    pub fn face_ids(&self) -> Vec<FaceId> {
        let mut ids: Vec<FaceId> = self.faces.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Register a route.
    pub fn register_prefix(&mut self, prefix: Name, face: FaceId, cost: u32) {
        self.fib.add_nexthop(prefix, face, cost);
    }

    /// Remove a route.
    pub fn unregister_prefix(&mut self, prefix: &Name, face: FaceId) {
        self.fib.remove_nexthop(prefix, face);
    }

    /// Install `strategy` for `prefix`, replacing any previous choice.
    pub fn set_strategy(&mut self, prefix: Name, strategy: Box<dyn Strategy>) {
        if let Some(slot) = self.strategies.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = strategy;
        } else {
            self.strategies.push((prefix, strategy));
        }
    }

    /// The (sharded) Content Store (tests/diagnostics). One shard with the
    /// default config.
    pub fn cs(&self) -> &ShardedCs {
        &self.cs
    }

    /// The FIB (tests/diagnostics).
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// The (sharded) PIT (tests/diagnostics). One shard with the default
    /// config.
    pub fn pit(&self) -> &ShardedPit {
        &self.pit
    }

    /// Probe a dead-nonce entry through the name's shard.
    fn dnl_contains(&self, name: &Name, nonce: u32) -> bool {
        self.dnl[shard_of(name, self.dnl.len())].contains(name, nonce)
    }

    /// Retire a nonce into the name's shard.
    fn dnl_insert(&mut self, name: Name, nonce: u32) {
        let s = shard_of(&name, self.dnl.len());
        // lidc-lint: allow(panic-path) reason="shard_of reduces modulo self.dnl.len(), which every constructor pins at one or more shards"
        self.dnl[s].insert(name, nonce);
    }

    /// Strike count for `face` decayed to `now` (pure function of the
    /// stored `(count, last_update)` pair — deterministic at any thread
    /// count).
    fn decayed_strikes(&self, face: FaceId, now: SimTime) -> f64 {
        let Some((count, at)) = self.quarantine.get(&face) else {
            return 0.0;
        };
        let dt = now.since(*at).as_secs_f64();
        let halflife = self.config.quarantine_halflife.as_secs_f64().max(1e-9);
        count * 0.5f64.powf(dt / halflife)
    }

    /// True while `face`'s decayed strikes sit at or above the quarantine
    /// threshold (public for tests/diagnostics).
    pub fn is_quarantined(&self, face: FaceId, now: SimTime) -> bool {
        self.decayed_strikes(face, now) >= self.config.quarantine_threshold
    }

    /// Record one verification-failure strike against an ingress face.
    fn record_verify_strike(&mut self, face: FaceId, now: SimTime, ctx: &mut Ctx<'_>) {
        let strikes = self.decayed_strikes(face, now) + 1.0;
        self.quarantine.insert(face, (strikes, now));
        ctx.metrics().incr("ndn.quarantine_strikes", 1);
    }

    /// Shared handling of a Data that failed signature verification
    /// (serial path and phased merge replay): count it, and when it was a
    /// poisoning attempt (PIT entries would have been satisfied), strike
    /// the ingress face and tell the strategy so forwarding steers away.
    /// The PIT is deliberately left untouched — downstream retransmissions
    /// and alternate upstreams still have a live entry to satisfy.
    fn on_verify_failed(
        &mut self,
        in_face: FaceId,
        name: &Name,
        poisoned: bool,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.metrics().incr("ndn.verify_failed", 1);
        if !poisoned {
            return;
        }
        ctx.metrics().incr("ndn.cs_poison_rejected", 1);
        self.record_verify_strike(in_face, ctx.now(), ctx);
        if let Some(fib_entry) = self.fib.lookup(name) {
            let prefix = fib_entry.prefix.clone();
            let sidx = self.strategy_index_for(name);
            // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
            self.strategies[sidx].1.on_failure(&prefix, in_face);
        }
    }

    fn strategy_index_for(&self, name: &Name) -> usize {
        let mut best: usize = 0;
        let mut best_len: isize = -1;
        for (i, (prefix, _)) in self.strategies.iter().enumerate() {
            if prefix.is_prefix_of(name) && (prefix.len() as isize) > best_len {
                best = i;
                best_len = prefix.len() as isize;
            }
        }
        best
    }

    fn send_packet(&mut self, face_id: FaceId, packet: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(face) = self.faces.get_mut(&face_id) else {
            ctx.metrics().incr("ndn.tx_no_such_face", 1);
            return;
        };
        if !face.up {
            face.counters.dropped += 1;
            ctx.metrics().incr("ndn.tx_face_down", 1);
            return;
        }
        match packet {
            Packet::Interest(_) => face.counters.out_interests += 1,
            Packet::Data(_) => face.counters.out_data += 1,
            Packet::Nack(_) => face.counters.out_nacks += 1,
        }
        match face.kind.clone() {
            FaceKind::App { actor } => {
                ctx.send_after(self.config.app_face_latency, actor, AppRx {
                    face: face_id,
                    packet,
                });
            }
            FaceKind::Link {
                peer,
                peer_face,
                props,
            } => {
                // `effective_loss` folds in fault-injected extra loss; with
                // no degradation active it equals `loss`, so the RNG draw
                // count (and thus every seeded run) is unchanged.
                let loss = props.effective_loss();
                if loss > 0.0 && ctx.rng().next_bool(loss) {
                    // lidc-lint: allow(panic-path) reason="send_packet's guarded head already resolved face_id and returned on a miss; the map is untouched since"
                    let face = self.faces.get_mut(&face_id).expect("face exists");
                    face.counters.dropped += 1;
                    ctx.metrics().incr("ndn.link_loss_drops", 1);
                    return;
                }
                // Corruption: one draw decides *whether* the packet is
                // damaged (no draw at all while the link is healthy, so
                // seeded runs without corruption faults are unchanged);
                // the mode decides what the damage looks like. BitFlip
                // draws one extra u64 to pick the bit — only on the
                // already-rare corrupting branch.
                let mut packet = packet;
                if props.corrupt > 0.0 && ctx.rng().next_bool(props.corrupt) {
                    let flipped = match (&self.config.corruption, &mut packet) {
                        (CorruptionMode::BitFlip, Packet::Data(data)) => {
                            let bit = ctx.rng().next_u64();
                            data.flip_bit(bit)
                        }
                        // Drop mode, Interests, Nacks, and unflippable Data
                        // all fall back to the link-level drop.
                        _ => false,
                    };
                    if flipped {
                        ctx.metrics().incr("ndn.link_corrupt_flips", 1);
                    } else {
                        // lidc-lint: allow(panic-path) reason="send_packet's guarded head already resolved face_id and returned on a miss; the map is untouched since"
                        let face = self.faces.get_mut(&face_id).expect("face exists");
                        face.counters.dropped += 1;
                        ctx.metrics().incr("ndn.link_corrupt_drops", 1);
                        return;
                    }
                }
                // Serialisation delay only matters on rate-limited links.
                let transmit = match props.bandwidth_bps {
                    Some(_) => props.transmit_time(packet.encoded_size()),
                    None => lidc_simcore::time::SimDuration::ZERO,
                };
                // lidc-lint: allow(panic-path) reason="send_packet's guarded head already resolved face_id and returned on a miss; the map is untouched since"
                let face = self.faces.get_mut(&face_id).expect("face exists");
                let start = face.busy_until.max(now);
                face.busy_until = start + transmit;
                let arrival = face.busy_until + props.effective_latency();
                // Stage instead of scheduling: the end-of-handler flush
                // merges same-(link, arrival) packets into one event.
                self.stage_tx(peer, peer_face, arrival, packet);
            }
        }
    }

    /// Stage one link transmission into its out-link bucket (created on
    /// first use this handler, in staging order). The bucket count is the
    /// handler's distinct out-link count — single digits even on a hub — so
    /// a linear probe beats hashing per packet.
    fn stage_tx(
        &mut self,
        peer: lidc_simcore::engine::ActorId,
        peer_face: FaceId,
        arrival: lidc_simcore::time::SimTime,
        packet: Packet,
    ) {
        if let Some(bucket) = self.tx_buckets.iter_mut().find(|b| b.peer_face == peer_face) {
            debug_assert!(
                bucket.txs.last().is_none_or(|(a, _)| *a <= arrival),
                "per-face arrivals must be nondecreasing"
            );
            bucket.txs.push((arrival, packet));
        } else {
            let mut txs = self.tx_spare.pop().unwrap_or_default();
            txs.push((arrival, packet));
            self.tx_buckets.push(TxBucket {
                peer,
                peer_face,
                txs,
            });
        }
    }

    /// Emit every staged link transmission, one scheduler event per
    /// `(link, arrival instant)` group, bucket by bucket in first-staged
    /// face order. Called once at the end of each handler invocation (per
    /// message when the engine delivers singly, per burst under batched
    /// dispatch). Per-bucket arrivals are nondecreasing, so same-arrival
    /// groups are contiguous runs — no hash pass, and each out-link's
    /// fan-out walks independently (the wave-aware split: under the horizon
    /// scheduler each link's `RxBatch` feeds a different group's queue).
    fn flush_tx(&mut self, ctx: &mut Ctx<'_>) {
        if self.tx_buckets.is_empty() {
            return;
        }
        let now = ctx.now();
        let mut buckets = std::mem::take(&mut self.tx_buckets);
        for bucket in &mut buckets {
            let mut txs = bucket.txs.drain(..).peekable();
            while let Some((arrival, packet)) = txs.next() {
                let delay = arrival.since(now);
                if txs.peek().is_some_and(|(a, _)| *a == arrival) {
                    let mut packets = vec![packet];
                    while let Some((a, _)) = txs.peek() {
                        if *a != arrival {
                            break;
                        }
                        // lidc-lint: allow(panic-path) reason="the peek on the same iterator just returned an entry with this arrival time"
                        packets.push(txs.next().expect("peeked").1);
                    }
                    ctx.metrics().incr("ndn.batch.link_flushes", 1);
                    ctx.metrics()
                        .incr("ndn.batch.link_packets", packets.len() as u64);
                    ctx.send_after(delay, bucket.peer, RxBatch {
                        face: bucket.peer_face,
                        packets,
                    });
                } else {
                    ctx.send_after(delay, bucket.peer, Rx {
                        face: bucket.peer_face,
                        packet,
                    });
                }
            }
        }
        // Recycle the emptied bucket buffers for the next handler.
        for bucket in buckets {
            self.tx_spare.push(bucket.txs);
        }
    }

    fn nack_to(&mut self, face: FaceId, reason: NackReason, interest: Interest, ctx: &mut Ctx<'_>) {
        self.send_packet(face, Packet::Nack(Nack::new(reason, interest)), ctx);
    }

    fn on_interest(&mut self, in_face: FaceId, mut interest: Interest, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        ctx.metrics().incr("ndn.rx_interests", 1);
        if let Some(face) = self.faces.get_mut(&in_face) {
            face.counters.in_interests += 1;
        }
        // Hop limit.
        if let Some(h) = interest.hop_limit {
            if h == 0 {
                ctx.metrics().incr("ndn.hop_limit_drops", 1);
                return;
            }
            interest.hop_limit = Some(h - 1);
        }
        // Dead-nonce loop suppression.
        if let Some(nonce) = interest.nonce {
            if self.dnl_contains(&interest.name, nonce) {
                ctx.metrics().incr("ndn.duplicate_nonce", 1);
                self.nack_to(in_face, NackReason::Duplicate, interest, ctx);
                return;
            }
        }
        // Content Store.
        if let Some(data) = self.cs.lookup(&interest, now) {
            ctx.metrics().incr("ndn.cs_hits", 1);
            self.send_packet(in_face, Packet::Data(data), ctx);
            return;
        }
        ctx.metrics().incr("ndn.cs_misses", 1);
        // PIT.
        let key = PitKey::of(&interest);
        let (outcome, version) = self.pit.insert(&interest, in_face, now);
        match outcome {
            InsertOutcome::DuplicateNonce => {
                ctx.metrics().incr("ndn.duplicate_nonce", 1);
                self.nack_to(in_face, NackReason::Duplicate, interest, ctx);
            }
            InsertOutcome::Aggregated => {
                ctx.metrics().incr("ndn.pit_aggregated", 1);
                self.schedule_expiry(&key, version, ctx);
            }
            outcome @ (InsertOutcome::New | InsertOutcome::Retransmission) => {
                self.schedule_expiry(&key, version, ctx);
                self.forward_interest(
                    in_face,
                    interest,
                    key,
                    outcome == InsertOutcome::Retransmission,
                    ctx,
                );
            }
        }
    }

    fn schedule_expiry(&mut self, key: &PitKey, version: u64, ctx: &mut Ctx<'_>) {
        if let Some(ttl) = self.pit.time_to_expiry(key, ctx.now()) {
            ctx.schedule_self(ttl, PitExpire {
                key: key.clone(),
                version,
            });
        }
    }

    fn forward_interest(
        &mut self,
        in_face: FaceId,
        interest: Interest,
        key: PitKey,
        is_retransmission: bool,
        ctx: &mut Ctx<'_>,
    ) {
        let Some(entry) = self.fib.lookup(&interest.name) else {
            ctx.metrics().incr("ndn.no_route", 1);
            self.pit.take(&key);
            self.nack_to(in_face, NackReason::NoRoute, interest, ctx);
            return;
        };
        let prefix = entry.prefix.clone();
        let mut eligible: Vec<NextHop> = entry
            .nexthops
            .iter()
            .filter(|nh| {
                nh.face != in_face
                    && self
                        .faces
                        .get(&nh.face)
                        .map(|f| f.up)
                        .unwrap_or(false)
            })
            .copied()
            .collect();
        // Quarantine filter: skip next hops whose face is serving
        // unverifiable Data — but only while an untainted alternate
        // exists (availability beats purity when every route is suspect).
        if !self.quarantine.is_empty() {
            let now = ctx.now();
            let suspect = eligible
                .iter()
                .filter(|nh| self.is_quarantined(nh.face, now))
                .count();
            if suspect > 0 && suspect < eligible.len() {
                eligible.retain(|nh| !self.is_quarantined(nh.face, now));
                ctx.metrics().incr("ndn.quarantine_skips", suspect as u64);
            }
        }
        let sidx = self.strategy_index_for(&interest.name);
        let selected = {
            // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
            let (_, strategy) = &mut self.strategies[sidx];
            let mut sctx = StrategyCtx {
                interest: &interest,
                nexthops: &eligible,
                prefix: &prefix,
                in_face,
                is_retransmission,
                now: ctx.now(),
                rng: ctx.rng(),
            };
            strategy.select(&mut sctx)
        };
        if selected.is_empty() {
            ctx.metrics().incr("ndn.no_route", 1);
            self.pit.take(&key);
            self.nack_to(in_face, NackReason::NoRoute, interest, ctx);
            return;
        }
        for out_face in selected {
            self.pit
                .add_out_record(&key, out_face, interest.nonce, ctx.now());
            self.send_packet(out_face, Packet::Interest(interest.clone()), ctx);
        }
        ctx.metrics().incr("ndn.interests_forwarded", 1);
    }

    fn on_data(&mut self, in_face: FaceId, data: Data, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        ctx.metrics().incr("ndn.rx_data", 1);
        if let Some(face) = self.faces.get_mut(&in_face) {
            face.counters.in_data += 1;
        }
        let mut keys = std::mem::take(&mut self.pit_match_scratch);
        self.pit.match_data_into(&data.name, &mut keys);
        // Verify gate, *before* CS admission and PIT satisfaction: an
        // unverifiable Data is never cached and never consumes the PIT
        // entries it targeted (phased twin: `shard_data`'s VerifyFailed).
        if self.config.verify_data && !data.verify(None) {
            let poisoned = !keys.is_empty();
            keys.clear();
            self.pit_match_scratch = keys;
            self.on_verify_failed(in_face, &data.name, poisoned, ctx);
            return;
        }
        if keys.is_empty() {
            self.pit_match_scratch = keys;
            ctx.metrics().incr("ndn.unsolicited_data", 1);
            return;
        }
        // Insert into the CS, then surface what the two-tier budget did:
        // eviction counts/bytes and admission rejections are lifetime
        // counters on the store, so deltas around the insert attribute the
        // work to metrics without the store knowing about the metrics sink.
        let (ev0, evb0, rej0) = (
            self.cs.evictions(),
            self.cs.evicted_bytes(),
            self.cs.admission_rejections(),
        );
        self.cs.insert(data.clone(), now);
        let evicted = self.cs.evictions() - ev0;
        if evicted > 0 {
            ctx.metrics().incr("ndn.cs_evict.count", evicted);
            ctx.metrics()
                .incr("ndn.cs_evict.bytes", self.cs.evicted_bytes() - evb0);
        }
        let rejected = self.cs.admission_rejections() - rej0;
        if rejected > 0 {
            ctx.metrics().incr("ndn.cs_admission_rejected", rejected);
        }
        ctx.metrics()
            .set_max("ndn.cs_bytes_used_peak", self.cs.bytes_used());
        for key in keys.drain(..) {
            let Some(entry) = self.pit.take(&key) else {
                continue;
            };
            // Strategy RTT feedback for the upstream that answered.
            if let Some(out) = entry.out_record(in_face) {
                let rtt = now.since(out.sent_at);
                if let Some(fib_entry) = self.fib.lookup(&entry.interest.name) {
                    let prefix = fib_entry.prefix.clone();
                    let sidx = self.strategy_index_for(&entry.interest.name);
                    // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
                    self.strategies[sidx].1.on_data(&prefix, in_face, rtt);
                }
            }
            // Retire nonces.
            for rec in &entry.in_records {
                if let Some(n) = rec.nonce {
                    self.dnl_insert(entry.interest.name.clone(), n);
                }
            }
            for rec in &entry.out_records {
                if let Some(n) = rec.nonce {
                    self.dnl_insert(entry.interest.name.clone(), n);
                }
            }
            for face in entry.return_faces(in_face) {
                self.send_packet(face, Packet::Data(data.clone()), ctx);
            }
            ctx.metrics().incr("ndn.pit_satisfied", 1);
        }
        self.pit_match_scratch = keys;
    }

    fn on_nack(&mut self, in_face: FaceId, nack: Nack, ctx: &mut Ctx<'_>) {
        ctx.metrics().incr("ndn.rx_nacks", 1);
        if let Some(face) = self.faces.get_mut(&in_face) {
            face.counters.in_nacks += 1;
        }
        let key = PitKey::of(&nack.interest);
        let Some(entry) = self.pit.get_mut(&key) else {
            return;
        };
        entry.out_records.retain(|r| r.face != in_face);
        let exhausted = entry.out_records.is_empty();
        // Strategy failure feedback.
        if let Some(fib_entry) = self.fib.lookup(&nack.interest.name) {
            let prefix = fib_entry.prefix.clone();
            let sidx = self.strategy_index_for(&nack.interest.name);
            // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
            self.strategies[sidx].1.on_failure(&prefix, in_face);
        }
        if exhausted {
            if let Some(entry) = self.pit.take(&key) {
                for rec in &entry.in_records {
                    self.nack_to(rec.face, nack.reason, entry.interest.clone(), ctx);
                }
            }
        }
    }

    /// A face went down: rescue or terminate every PIT entry referencing it.
    ///
    /// Entries whose Interest went upstream over the dead face are retried
    /// over an alternate next hop (presented to the strategy as a
    /// retransmission so rotating strategies escape the broken path);
    /// entries whose only downstream was the dead face are dropped; entries
    /// with no usable alternate are NACKed to their requesters instead of
    /// silently timing out.
    fn on_face_down(&mut self, dead: FaceId, ctx: &mut Ctx<'_>) {
        // Collect affected keys first (canonically ordered so the rescue
        // sequence — and thus RNG draws and packet order — is deterministic
        // regardless of hash-map iteration order).
        let mut affected: Vec<PitKey> = Vec::new();
        for shard in self.pit.shards() {
            for key in shard.keys() {
                let touches = shard.get(key).is_some_and(|e| {
                    e.in_records.iter().any(|r| r.face == dead)
                        || e.out_records.iter().any(|r| r.face == dead)
                });
                if touches {
                    affected.push(key.clone());
                }
            }
        }
        affected.sort_by(|a, b| {
            a.name
                .cmp(&b.name)
                .then(a.can_be_prefix.cmp(&b.can_be_prefix))
                .then(a.must_be_fresh.cmp(&b.must_be_fresh))
        });
        for key in affected {
            let Some(entry) = self.pit.get_mut(&key) else {
                continue;
            };
            let went_upstream = entry.out_records.iter().any(|r| r.face == dead);
            entry.in_records.retain(|r| r.face != dead);
            entry.out_records.retain(|r| r.face != dead);
            if entry.in_records.is_empty() {
                // Nobody is waiting downstream any more.
                self.pit.take(&key);
                continue;
            }
            if !went_upstream {
                // Only a downstream requester died; the Interest is still
                // in flight on live faces.
                continue;
            }
            let interest = entry.interest.clone();
            let in_faces: Vec<FaceId> = entry.in_records.iter().map(|r| r.face).collect();
            let out_faces: Vec<FaceId> = entry.out_records.iter().map(|r| r.face).collect();
            // Tell the strategy the face failed for this prefix.
            let (prefix, eligible) = match self.fib.lookup(&interest.name) {
                Some(fib_entry) => {
                    let prefix = fib_entry.prefix.clone();
                    let eligible: Vec<NextHop> = fib_entry
                        .nexthops
                        .iter()
                        .filter(|nh| {
                            nh.face != dead
                                && !out_faces.contains(&nh.face)
                                && !in_faces.contains(&nh.face)
                                && self.faces.get(&nh.face).map(|f| f.up).unwrap_or(false)
                        })
                        .copied()
                        .collect();
                    (Some(prefix), eligible)
                }
                None => (None, Vec::new()),
            };
            let sidx = self.strategy_index_for(&interest.name);
            if let Some(prefix) = &prefix {
                // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
                self.strategies[sidx].1.on_failure(prefix, dead);
            }
            let selected = match &prefix {
                Some(prefix) if !eligible.is_empty() => {
                    // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
                    let (_, strategy) = &mut self.strategies[sidx];
                    let mut sctx = StrategyCtx {
                        interest: &interest,
                        nexthops: &eligible,
                        prefix,
                        in_face: in_faces[0],
                        is_retransmission: true,
                        now: ctx.now(),
                        rng: ctx.rng(),
                    };
                    strategy.select(&mut sctx)
                }
                _ => Vec::new(),
            };
            if !selected.is_empty() {
                for out_face in selected {
                    self.pit.add_out_record(&key, out_face, interest.nonce, ctx.now());
                    self.send_packet(out_face, Packet::Interest(interest.clone()), ctx);
                }
                ctx.metrics().incr("ndn.face_down_rerouted", 1);
            } else if out_faces.is_empty() {
                // No surviving upstream and no alternate: terminate the
                // entry with a NACK to every waiting requester.
                self.pit.take(&key);
                for in_face in in_faces {
                    self.nack_to(in_face, NackReason::NoRoute, interest.clone(), ctx);
                }
                ctx.metrics().incr("ndn.face_down_nacked", 1);
            }
        }
    }

    fn on_pit_expire(&mut self, key: PitKey, version: u64, ctx: &mut Ctx<'_>) {
        if let Some(entry) = self.pit.expire_if_stale(&key, version, ctx.now()) {
            ctx.metrics().incr("ndn.pit_expired", 1);
            if let Some(fib_entry) = self.fib.lookup(&entry.interest.name) {
                let prefix = fib_entry.prefix.clone();
                let sidx = self.strategy_index_for(&entry.interest.name);
                for out in &entry.out_records {
                    // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
                    self.strategies[sidx].1.on_failure(&prefix, out.face);
                }
            }
        }
    }
}

impl Forwarder {
    /// Ingest one packet that arrived on `face` (shared by [`Rx`] and
    /// [`RxBatch`] handling).
    fn on_packet(&mut self, face: FaceId, packet: Packet, ctx: &mut Ctx<'_>) {
        if let Some(f) = self.faces.get(&face) {
            if !f.up {
                ctx.metrics().incr("ndn.rx_face_down", 1);
                return;
            }
        } else {
            ctx.metrics().incr("ndn.rx_no_such_face", 1);
            return;
        }
        match packet {
            Packet::Interest(i) => self.on_interest(face, i, ctx),
            Packet::Data(d) => self.on_data(face, d, ctx),
            Packet::Nack(n) => self.on_nack(face, n, ctx),
        }
    }

    /// Dispatch one message, *without* flushing staged transmissions — the
    /// `Actor` impl flushes once per handler invocation so a batched burst
    /// shares one flush.
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<Rx>() {
            Ok(rx) => {
                let rx = *rx;
                self.on_packet(rx.face, rx.packet, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RxBatch>() {
            Ok(batch) => {
                let batch = *batch;
                for packet in batch.packets {
                    self.on_packet(batch.face, packet, ctx);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PitExpire>() {
            Ok(e) => {
                self.on_pit_expire(e.key.clone(), e.version, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AddFace>() {
            Ok(f) => {
                self.add_face(f.face);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RemoveFace>() {
            Ok(f) => {
                self.faces.remove(&f.face);
                self.fib.remove_face(f.face);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SetFaceUp>() {
            Ok(s) => {
                let was_up = match self.faces.get_mut(&s.face) {
                    Some(face) => {
                        let was = face.up;
                        face.up = s.up;
                        was
                    }
                    None => return,
                };
                if was_up && !s.up {
                    self.on_face_down(s.face, ctx);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DegradeLink>() {
            Ok(d) => {
                if let Some(face) = self.faces.get_mut(&d.face) {
                    if let FaceKind::Link { props, .. } = &mut face.kind {
                        props.latency_factor = d.latency_factor;
                        props.extra_loss = d.extra_loss;
                        props.corrupt = d.corrupt;
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RegisterPrefix>() {
            Ok(r) => {
                self.register_prefix(r.prefix, r.face, r.cost);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<UnregisterPrefix>() {
            Ok(u) => {
                self.unregister_prefix(&u.prefix, u.face);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<SetStrategy>() {
            Ok(s) => {
                let s = *s;
                self.set_strategy(s.prefix, s.strategy);
            }
            Err(_) => {
                ctx.metrics().incr("ndn.unknown_message", 1);
            }
        }
    }
}

impl Forwarder {
    /// Whether the buffered packet run may take the two-phase path: no
    /// Nacks, no `CanBePrefix` Interests, and no Data while prefix PIT
    /// entries are resident (the only cases where one packet's table work
    /// can cross shards — see the module docs).
    fn run_is_phasable(&self, run: &[(FaceId, Packet)]) -> bool {
        let mut has_data = false;
        for (_, packet) in run {
            match packet {
                Packet::Interest(i) => {
                    if i.can_be_prefix {
                        return false;
                    }
                }
                Packet::Data(_) => has_data = true,
                Packet::Nack(_) => return false,
            }
        }
        !has_data || self.pit.prefix_entry_count() == 0
    }

    /// Process and clear the buffered packet run (arrival order), choosing
    /// between the serial per-packet path and the two-phase sharded path.
    fn flush_run(&mut self, ctx: &mut Ctx<'_>) {
        if self.run_buf.is_empty() {
            return;
        }
        let mut run = std::mem::take(&mut self.run_buf);
        if run.len() < 2 || !self.run_is_phasable(&run) {
            for (face, packet) in run.drain(..) {
                self.on_packet(face, packet, ctx);
            }
        } else {
            self.process_run_phased(&mut run, ctx);
        }
        run.clear();
        // Reclaim the buffer unless a nested path repopulated it.
        if self.run_buf.is_empty() {
            self.run_buf = run;
        }
    }

    /// Two-phase ingress of one packet run (see the module docs): partition
    /// by name shard, run per-shard table work (threaded for large bursts),
    /// then replay the outcomes serially in global arrival order.
    fn process_run_phased(&mut self, run: &mut Vec<(FaceId, Packet)>, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let shards = self.shard_scratch.len();
        let total = run.len();
        // CS budget/admission deltas for the whole run (the serial path
        // attributes them per insert; run totals are identical).
        let (ev0, evb0, rej0) = (
            self.cs.evictions(),
            self.cs.evicted_bytes(),
            self.cs.admission_rejections(),
        );
        // Partition: ingress checks and face counters in arrival order.
        for (idx, (face_id, packet)) in run.drain(..).enumerate() {
            match self.faces.get_mut(&face_id) {
                None => {
                    ctx.metrics().incr("ndn.rx_no_such_face", 1);
                    continue;
                }
                Some(face) if !face.up => {
                    ctx.metrics().incr("ndn.rx_face_down", 1);
                    continue;
                }
                Some(face) => match &packet {
                    Packet::Interest(_) => {
                        face.counters.in_interests += 1;
                        ctx.metrics().incr("ndn.rx_interests", 1);
                    }
                    Packet::Data(_) => {
                        face.counters.in_data += 1;
                        ctx.metrics().incr("ndn.rx_data", 1);
                    }
                    // lidc-lint: allow(panic-path) reason="phasable runs are selected to exclude nacks before entering this path"
                    Packet::Nack(_) => unreachable!("phasable runs exclude nacks"),
                },
            }
            let s = shard_of(packet.name(), shards);
            // lidc-lint: allow(panic-path) reason="shard_of reduces modulo shards, the length shard_scratch was sized to"
            self.shard_scratch[s].packets.push((idx as u32, face_id, packet));
        }
        // Shard phase: threaded when the burst amortizes thread startup,
        // serial otherwise — bit-identical results either way.
        let active = self
            .shard_scratch
            .iter()
            .filter(|s| !s.packets.is_empty())
            .count();
        let parallel = active > 1 && total >= PARALLEL_INGRESS_MIN;
        if parallel {
            ctx.metrics().incr("ndn.parallel.runs", 1);
            ctx.metrics().incr("ndn.parallel.packets", total as u64);
        }
        // Spawn shard threads only when the host has cores to run them on;
        // a single-CPU host processes the shards inline (same phases, same
        // order within each shard, bit-identical results).
        let threaded = parallel && host_parallelism() > 1;
        {
            let fib = &self.fib;
            let verify = self.config.verify_data;
            let work = self
                .pit
                .shards_mut()
                .iter_mut()
                .zip(self.cs.shards_mut().iter_mut())
                .zip(self.dnl.iter_mut())
                .zip(self.shard_scratch.iter_mut())
                .filter(|(_, scratch)| !scratch.packets.is_empty());
            if threaded {
                std::thread::scope(|scope| {
                    for (((pit, cs), dnl), scratch) in work {
                        scope.spawn(move || {
                            run_shard_phase(pit, cs, dnl, scratch, fib, now, verify)
                        });
                    }
                });
            } else {
                for (((pit, cs), dnl), scratch) in work {
                    run_shard_phase(pit, cs, dnl, scratch, fib, now, verify);
                }
            }
        }
        // Merge phase: replay outcomes in global arrival order. Each
        // shard's outcome list is already idx-sorted (shards process their
        // packets in arrival order), so a k-way cursor merge visits global
        // order without re-buffering the (large) outcome values.
        type OutcomeCursor = (
            std::vec::IntoIter<(u32, PhasedOutcome)>,
            Option<(u32, PhasedOutcome)>,
        );
        let mut lists: Vec<OutcomeCursor> = Vec::with_capacity(self.shard_scratch.len());
        for scratch in &mut self.shard_scratch {
            let mut it = std::mem::take(&mut scratch.outcomes).into_iter();
            let head = it.next();
            if head.is_some() {
                lists.push((it, head));
            }
        }
        loop {
            let mut best: Option<usize> = None;
            for (i, (_, head)) in lists.iter().enumerate() {
                if let Some((idx, _)) = head {
                    if best
                        // lidc-lint: allow(panic-path) reason="best only holds indexes whose head was observed Some earlier in this loop"
                        .map(|b| *idx < lists[b].1.as_ref().expect("head").0)
                        .unwrap_or(true)
                    {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else {
                break;
            };
            // lidc-lint: allow(panic-path) reason="best was set only where lists[i] held a Some head, and nothing consumed it since"
            let (_, outcome) = lists[i].1.take().expect("picked head");
            // lidc-lint: allow(panic-path) reason="i was produced by the enumerate() over this same lists vec"
            lists[i].1 = lists[i].0.next();
            self.apply_outcome(outcome, ctx);
        }
        // Hand the drained buffers back to their shards for reuse.
        for ((it, _), scratch) in lists.into_iter().zip(self.shard_scratch.iter_mut()) {
            let mut buf = it.collect::<Vec<_>>();
            buf.clear();
            scratch.outcomes = buf;
        }
        // Surface the run's CS budget work (serial twin: on_data).
        let evicted = self.cs.evictions() - ev0;
        if evicted > 0 {
            ctx.metrics().incr("ndn.cs_evict.count", evicted);
            ctx.metrics()
                .incr("ndn.cs_evict.bytes", self.cs.evicted_bytes() - evb0);
        }
        let rejected = self.cs.admission_rejections() - rej0;
        if rejected > 0 {
            ctx.metrics().incr("ndn.cs_admission_rejected", rejected);
        }
    }

    /// Merge-phase replay of one packet's outcome: all the order-sensitive
    /// work (strategy state + RNG, out-records, staging, counters), in the
    /// exact order the serial handlers interleave it.
    fn apply_outcome(&mut self, outcome: PhasedOutcome, ctx: &mut Ctx<'_>) {
        match outcome {
            PhasedOutcome::HopLimitDrop => ctx.metrics().incr("ndn.hop_limit_drops", 1),
            PhasedOutcome::DnlDup { in_face, interest } => {
                ctx.metrics().incr("ndn.duplicate_nonce", 1);
                self.nack_to(in_face, NackReason::Duplicate, interest, ctx);
            }
            PhasedOutcome::CsHit { in_face, data } => {
                ctx.metrics().incr("ndn.cs_hits", 1);
                self.send_packet(in_face, Packet::Data(data), ctx);
            }
            PhasedOutcome::PitDup { in_face, interest } => {
                ctx.metrics().incr("ndn.cs_misses", 1);
                ctx.metrics().incr("ndn.duplicate_nonce", 1);
                self.nack_to(in_face, NackReason::Duplicate, interest, ctx);
            }
            PhasedOutcome::Aggregated { key, version, ttl } => {
                ctx.metrics().incr("ndn.cs_misses", 1);
                ctx.metrics().incr("ndn.pit_aggregated", 1);
                if let Some(ttl) = ttl {
                    ctx.schedule_self(ttl, PitExpire { key, version });
                }
            }
            PhasedOutcome::Forward {
                in_face,
                interest,
                key,
                version,
                retransmission,
                ttl,
            } => {
                ctx.metrics().incr("ndn.cs_misses", 1);
                if let Some(ttl) = ttl {
                    ctx.schedule_self(ttl, PitExpire {
                        key: key.clone(),
                        version,
                    });
                }
                self.forward_interest(in_face, interest, key, retransmission, ctx);
            }
            PhasedOutcome::Unsolicited => ctx.metrics().incr("ndn.unsolicited_data", 1),
            PhasedOutcome::VerifyFailed { in_face, name, poisoned } => {
                self.on_verify_failed(in_face, &name, poisoned, ctx);
            }
            PhasedOutcome::DataDeliver { data, satisfied } => {
                // Serial twin snapshots the byte peak after each CS insert
                // (i.e. exactly once per delivered — not unsolicited —
                // Data). Shard-phase inserts all landed already, so this
                // reads the post-insert total; it can understate a serial
                // mid-burst peak only when stale evictions shrink
                // bytes_used within the same run (documented in the module
                // docs' known-divergence list).
                ctx.metrics()
                    .set_max("ndn.cs_bytes_used_peak", self.cs.bytes_used());
                for sat in satisfied {
                    if let Some((name, prefix, face, rtt)) = sat.feedback {
                        let sidx = self.strategy_index_for(&name);
                        // lidc-lint: allow(panic-path) reason="strategy_index_for scans self.strategies and falls back to 0, and the table always holds the default strategy at index 0"
                        self.strategies[sidx].1.on_data(&prefix, face, rtt);
                    }
                    for face in sat.downstreams {
                        self.send_packet(face, Packet::Data(data.clone()), ctx);
                    }
                    ctx.metrics().incr("ndn.pit_satisfied", 1);
                }
            }
        }
    }

    /// Route a packet-bearing message into the run buffer; `Err` gives the
    /// message back for control handling.
    fn buffer_packets(&mut self, msg: Msg) -> Result<(), Msg> {
        let msg = match msg.downcast::<Rx>() {
            Ok(rx) => {
                let rx = *rx;
                self.run_buf.push((rx.face, rx.packet));
                return Ok(());
            }
            Err(m) => m,
        };
        match msg.downcast::<RxBatch>() {
            Ok(batch) => {
                let batch = *batch;
                let face = batch.face;
                for packet in batch.packets {
                    self.run_buf.push((face, packet));
                }
                Ok(())
            }
            Err(m) => Err(m),
        }
    }
}

impl Actor for Forwarder {
    /// Forwarders opt into the engine's parallel same-instant waves: their
    /// handlers never spawn/kill/halt and touch no state shared with other
    /// Concurrent actors (per-actor tables, buffered effects, per-actor
    /// RNG), so distinct forwarders' bursts may execute concurrently.
    fn concurrency(&self) -> Concurrency {
        Concurrency::Concurrent
    }

    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        if self.config.shards > 1 {
            match self.buffer_packets(msg) {
                Ok(()) => self.flush_run(ctx),
                Err(msg) => self.handle(msg, ctx),
            }
        } else {
            self.handle(msg, ctx);
        }
        self.flush_tx(ctx);
    }

    /// Batched ingress: a same-instant burst of messages is processed in
    /// arrival order with the PIT/CS scratch buffers warm, and all staged
    /// link transmissions leave in one flush (one scheduler event per link
    /// and arrival instant). With `shards > 1`, consecutive packet
    /// messages form runs that take the two-phase (and, for large bursts,
    /// parallel) ingress; control messages are handled serially between
    /// runs, preserving arrival order.
    fn on_batch(&mut self, msgs: &mut Vec<Msg>, ctx: &mut Ctx<'_>) {
        if self.config.shards > 1 {
            debug_assert!(self.run_buf.is_empty());
            for msg in msgs.drain(..) {
                if let Err(msg) = self.buffer_packets(msg) {
                    self.flush_run(ctx);
                    self.handle(msg, ctx);
                }
            }
            self.flush_run(ctx);
        } else {
            for msg in msgs.drain(..) {
                self.handle(msg, ctx);
            }
        }
        self.flush_tx(ctx);
    }
}
