//! A fast, deterministic, non-cryptographic hasher for the forwarder's
//! tables (FxHash, the rustc-internal multiply-xor scheme).
//!
//! The FIB/PIT/dead-nonce maps are probed on every packet with borrowed
//! name views; SipHash (std's default, HashDoS-hardened) dominates those
//! probes. Inside a closed simulation there is no adversarial key source,
//! so the tables trade DoS hardening for ~5× cheaper hashing. The hasher
//! is fully deterministic (no per-process random state), which also keeps
//! simulation runs reproducible.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (word-at-a-time over the input bytes).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_discriminating() {
        let build = FxBuildHasher::default();
        let h = |x: &[u8]| build.hash_one(x);
        assert_eq!(h(b"abc"), h(b"abc"));
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"abc"), h(b"abcd"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
