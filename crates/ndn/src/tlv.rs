//! NDN Type-Length-Value (TLV) wire encoding.
//!
//! Implements the variable-length number scheme of the NDN packet format
//! v0.3: values below 253 take one byte; `253` introduces a 2-byte
//! big-endian number, `254` a 4-byte, `255` an 8-byte. Both TLV-TYPE and
//! TLV-LENGTH use this scheme.

use bytes::{Bytes, BytesMut};
use std::fmt;

/// TLV-TYPE assignments used by this implementation (NDN packet spec v0.3).
pub mod types {
    /// Interest packet.
    pub const INTEREST: u64 = 0x05;
    /// Data packet.
    pub const DATA: u64 = 0x06;
    /// Name.
    pub const NAME: u64 = 0x07;
    /// CanBePrefix element.
    pub const CAN_BE_PREFIX: u64 = 0x21;
    /// MustBeFresh element.
    pub const MUST_BE_FRESH: u64 = 0x12;
    /// Nonce element.
    pub const NONCE: u64 = 0x0A;
    /// InterestLifetime element (milliseconds).
    pub const INTEREST_LIFETIME: u64 = 0x0C;
    /// HopLimit element.
    pub const HOP_LIMIT: u64 = 0x22;
    /// ApplicationParameters element.
    pub const APPLICATION_PARAMETERS: u64 = 0x24;
    /// MetaInfo element.
    pub const META_INFO: u64 = 0x14;
    /// ContentType element.
    pub const CONTENT_TYPE: u64 = 0x18;
    /// FreshnessPeriod element (milliseconds).
    pub const FRESHNESS_PERIOD: u64 = 0x19;
    /// FinalBlockId element.
    pub const FINAL_BLOCK_ID: u64 = 0x1A;
    /// Content element.
    pub const CONTENT: u64 = 0x15;
    /// SignatureInfo element.
    pub const SIGNATURE_INFO: u64 = 0x16;
    /// SignatureValue element.
    pub const SIGNATURE_VALUE: u64 = 0x17;
    /// SignatureType element.
    pub const SIGNATURE_TYPE: u64 = 0x1B;
    /// KeyLocator element.
    pub const KEY_LOCATOR: u64 = 0x1C;
    /// Network NACK header (NDNLPv2).
    pub const NACK: u64 = 0x0320;
    /// NACK reason (NDNLPv2).
    pub const NACK_REASON: u64 = 0x0321;
}

/// Size in bytes of a var-number encoding of `n`.
pub const fn var_number_size(n: u64) -> usize {
    if n < 253 {
        1
    } else if n <= 0xFFFF {
        3
    } else if n <= 0xFFFF_FFFF {
        5
    } else {
        9
    }
}

/// Append a var-number to `out`.
pub fn put_var_number(out: &mut BytesMut, n: u64) {
    if n < 253 {
        out.put_u8(n as u8);
    } else if n <= 0xFFFF {
        out.put_u8(253);
        out.put_u16(n as u16);
    } else if n <= 0xFFFF_FFFF {
        out.put_u8(254);
        out.put_u32(n as u32);
    } else {
        out.put_u8(255);
        out.put_u64(n);
    }
}

/// Total encoded size of a TLV element with the given type and value length.
pub const fn tlv_size(typ: u64, value_len: usize) -> usize {
    var_number_size(typ) + var_number_size(value_len as u64) + value_len
}

/// Append a full TLV element.
pub fn put_tlv(out: &mut BytesMut, typ: u64, value: &[u8]) {
    put_var_number(out, typ);
    put_var_number(out, value.len() as u64);
    out.put_slice(value);
}

/// Append a TLV element whose value is a NonNegativeInteger (1/2/4/8 bytes,
/// shortest form among those widths, per the NDN spec).
pub fn put_nonneg_tlv(out: &mut BytesMut, typ: u64, n: u64) {
    put_var_number(out, typ);
    if n <= 0xFF {
        put_var_number(out, 1);
        out.put_u8(n as u8);
    } else if n <= 0xFFFF {
        put_var_number(out, 2);
        out.put_u16(n as u16);
    } else if n <= 0xFFFF_FFFF {
        put_var_number(out, 4);
        out.put_u32(n as u32);
    } else {
        put_var_number(out, 8);
        out.put_u64(n);
    }
}

/// Size of a NonNegativeInteger TLV element.
pub const fn nonneg_tlv_size(typ: u64, n: u64) -> usize {
    let vlen = if n <= 0xFF {
        1
    } else if n <= 0xFFFF {
        2
    } else if n <= 0xFFFF_FFFF {
        4
    } else {
        8
    };
    tlv_size(typ, vlen)
}

/// Decoding error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlvError {
    /// Input ended inside a var-number or value.
    Truncated,
    /// A TLV element declared a length past the end of input.
    LengthOverrun,
    /// An element of an unexpected type was found.
    UnexpectedType {
        /// The type that was expected.
        expected: u64,
        /// The type actually read.
        found: u64,
    },
    /// A NonNegativeInteger had an invalid width.
    BadNonNegWidth(usize),
    /// Structural constraint violated (e.g. missing mandatory element).
    Malformed(&'static str),
}

impl fmt::Display for TlvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlvError::Truncated => write!(f, "truncated TLV input"),
            TlvError::LengthOverrun => write!(f, "TLV length exceeds available input"),
            TlvError::UnexpectedType { expected, found } => {
                write!(f, "expected TLV type {expected:#x}, found {found:#x}")
            }
            TlvError::BadNonNegWidth(w) => write!(f, "invalid NonNegativeInteger width {w}"),
            TlvError::Malformed(what) => write!(f, "malformed packet: {what}"),
        }
    }
}

impl std::error::Error for TlvError {}

/// A zero-copy TLV reader over a byte slice.
#[derive(Clone)]
pub struct TlvReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> TlvReader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        TlvReader { input, pos: 0 }
    }

    /// True when all input is consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Read one var-number.
    #[inline]
    pub fn read_var_number(&mut self) -> Result<u64, TlvError> {
        let first = *self.input.get(self.pos).ok_or(TlvError::Truncated)?;
        self.pos += 1;
        let len: usize = match first {
            253 => 2,
            254 => 4,
            255 => 8,
            b => return Ok(u64::from(b)),
        };
        if self.pos + len > self.input.len() {
            return Err(TlvError::Truncated);
        }
        let mut n: u64 = 0;
        for &b in &self.input[self.pos..self.pos + len] {
            n = (n << 8) | u64::from(b);
        }
        self.pos += len;
        Ok(n)
    }

    /// Peek the type of the next element without consuming it.
    pub fn peek_type(&self) -> Result<u64, TlvError> {
        self.clone().read_var_number()
    }

    /// Read the next element header and return `(type, value)`.
    ///
    /// Fast path: both TLV-TYPE and TLV-LENGTH fit one byte (every element
    /// this codebase emits below 253 bytes), decoded with a single bounds
    /// check.
    #[inline]
    pub fn read_tlv(&mut self) -> Result<(u64, &'a [u8]), TlvError> {
        if let [t, l, ..] = &self.input[self.pos..] {
            let (t, l) = (*t, *l);
            if t < 253 && l < 253 {
                let start = self.pos + 2;
                let end = start + l as usize;
                if end > self.input.len() {
                    return Err(TlvError::LengthOverrun);
                }
                self.pos = end;
                return Ok((u64::from(t), &self.input[start..end]));
            }
        }
        self.read_tlv_slow()
    }

    #[cold]
    fn read_tlv_slow(&mut self) -> Result<(u64, &'a [u8]), TlvError> {
        let typ = self.read_var_number()?;
        let len = self.read_var_number()? as usize;
        if self.pos + len > self.input.len() {
            return Err(TlvError::LengthOverrun);
        }
        let value = &self.input[self.pos..self.pos + len];
        self.pos += len;
        Ok((typ, value))
    }

    /// Read the next element, requiring type `expected`.
    pub fn read_expected(&mut self, expected: u64) -> Result<&'a [u8], TlvError> {
        let (typ, value) = self.read_tlv()?;
        if typ != expected {
            return Err(TlvError::UnexpectedType {
                expected,
                found: typ,
            });
        }
        Ok(value)
    }

    /// If the next element has type `typ`, consume and return it.
    pub fn read_optional(&mut self, typ: u64) -> Result<Option<&'a [u8]>, TlvError> {
        if self.is_empty() {
            return Ok(None);
        }
        if self.peek_type()? == typ {
            Ok(Some(self.read_expected(typ)?))
        } else {
            Ok(None)
        }
    }

    /// Skip elements until one with type `typ` is found or input ends
    /// (used for forward-compatible skipping of unrecognised elements).
    pub fn seek_type(&mut self, typ: u64) -> Result<Option<&'a [u8]>, TlvError> {
        while !self.is_empty() {
            let mut probe = self.clone();
            let (t, v) = probe.read_tlv()?;
            *self = probe;
            if t == typ {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }
}

/// Decode a NonNegativeInteger value body (width must be 1, 2, 4, or 8).
pub fn parse_nonneg(value: &[u8]) -> Result<u64, TlvError> {
    match value.len() {
        1 => Ok(u64::from(value[0])),
        2 => Ok(u64::from(u16::from_be_bytes([value[0], value[1]]))),
        4 => Ok(u64::from(u32::from_be_bytes([
            value[0], value[1], value[2], value[3],
        ]))),
        8 => {
            let mut b = [0u8; 8];
            b.copy_from_slice(value);
            Ok(u64::from_be_bytes(b))
        }
        w => Err(TlvError::BadNonNegWidth(w)),
    }
}

/// Encode a complete TLV element into a fresh buffer.
pub fn encode_tlv(typ: u64, value: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(tlv_size(typ, value.len()));
    put_tlv(&mut out, typ, value);
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_number_boundaries() {
        let cases: [(u64, usize); 8] = [
            (0, 1),
            (252, 1),
            (253, 3),
            (0xFFFF, 3),
            (0x1_0000, 5),
            (0xFFFF_FFFF, 5),
            (0x1_0000_0000, 9),
            (u64::MAX, 9),
        ];
        for (n, size) in cases {
            assert_eq!(var_number_size(n), size, "size of {n}");
            let mut buf = BytesMut::new();
            put_var_number(&mut buf, n);
            assert_eq!(buf.len(), size);
            let mut r = TlvReader::new(&buf);
            assert_eq!(r.read_var_number().unwrap(), n);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn tlv_round_trip() {
        let mut buf = BytesMut::new();
        put_tlv(&mut buf, types::NAME, b"hello");
        put_tlv(&mut buf, types::CONTENT, b"");
        let mut r = TlvReader::new(&buf);
        let (t1, v1) = r.read_tlv().unwrap();
        assert_eq!((t1, v1), (types::NAME, &b"hello"[..]));
        let (t2, v2) = r.read_tlv().unwrap();
        assert_eq!((t2, v2), (types::CONTENT, &b""[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn nonneg_widths() {
        for n in [0u64, 0xFF, 0x100, 0xFFFF, 0x10000, 0xFFFF_FFFF, 0x1_0000_0000] {
            let mut buf = BytesMut::new();
            put_nonneg_tlv(&mut buf, 0x0C, n);
            assert_eq!(buf.len(), nonneg_tlv_size(0x0C, n), "size of {n}");
            let mut r = TlvReader::new(&buf);
            let v = r.read_expected(0x0C).unwrap();
            assert_eq!(parse_nonneg(v).unwrap(), n);
        }
    }

    #[test]
    fn nonneg_rejects_bad_widths() {
        assert_eq!(parse_nonneg(&[1, 2, 3]), Err(TlvError::BadNonNegWidth(3)));
        assert_eq!(parse_nonneg(&[]), Err(TlvError::BadNonNegWidth(0)));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        put_tlv(&mut buf, 0x07, b"abcdef");
        // Cut into the value.
        let cut = &buf[..buf.len() - 2];
        let mut r = TlvReader::new(cut);
        assert_eq!(r.read_tlv(), Err(TlvError::LengthOverrun));
        // Cut into the var-number.
        let mut buf2 = BytesMut::new();
        put_var_number(&mut buf2, 70000); // 5-byte encoding
        let mut r2 = TlvReader::new(&buf2[..3]);
        assert_eq!(r2.read_var_number(), Err(TlvError::Truncated));
    }

    #[test]
    fn unexpected_type_reported() {
        let buf = encode_tlv(0x07, b"x");
        let mut r = TlvReader::new(&buf);
        assert_eq!(
            r.read_expected(0x08),
            Err(TlvError::UnexpectedType {
                expected: 0x08,
                found: 0x07
            })
        );
    }

    #[test]
    fn optional_and_seek() {
        let mut buf = BytesMut::new();
        put_tlv(&mut buf, 0x07, b"name");
        put_tlv(&mut buf, 0x99, b"unknown");
        put_tlv(&mut buf, 0x15, b"content");
        let mut r = TlvReader::new(&buf);
        assert_eq!(r.read_optional(0x07).unwrap(), Some(&b"name"[..]));
        assert_eq!(r.read_optional(0x15).unwrap(), None, "0x99 is next");
        assert_eq!(r.seek_type(0x15).unwrap(), Some(&b"content"[..]));
        assert!(r.is_empty());
        assert_eq!(r.read_optional(0x15).unwrap(), None, "empty reader");
    }

    #[test]
    fn nested_decoding() {
        let inner = encode_tlv(0x08, b"ndn");
        let outer = encode_tlv(0x07, &inner);
        let mut r = TlvReader::new(&outer);
        let name_body = r.read_expected(0x07).unwrap();
        let mut inner_r = TlvReader::new(name_body);
        assert_eq!(inner_r.read_expected(0x08).unwrap(), b"ndn");
    }
}
