//! Hierarchical NDN names.
//!
//! A [`Name`] is a sequence of typed [`NameComponent`]s, printed and parsed
//! in URI form (`/ndn/k8s/compute/mem=4&cpu=6&app=BLAST`). LIDC's semantic
//! job names are ordinary generic components; the `&`-separated parameter
//! grammar is layered on top by `lidc-core::naming`.
//!
//! Component ordering follows the NDN canonical order (type, then length,
//! then lexicographic bytes), and names order component-wise with shorter
//! prefixes first — the order the Content Store and FIB rely on.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;

use bytes::Bytes;

/// TLV-TYPE of a generic name component.
pub const TT_GENERIC_COMPONENT: u16 = 0x08;
/// TLV-TYPE of an implicit SHA-256 digest component.
pub const TT_IMPLICIT_DIGEST: u16 = 0x01;
/// TLV-TYPE of a segment-number component (NDN naming conventions rev-3).
pub const TT_SEGMENT: u16 = 0x32;
/// TLV-TYPE of a version component (NDN naming conventions rev-3).
pub const TT_VERSION: u16 = 0x36;

/// One component of a [`Name`]: a TLV type plus an opaque byte value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NameComponent {
    typ: u16,
    value: Bytes,
}

impl NameComponent {
    /// A generic component holding the given bytes.
    pub fn generic(value: impl Into<Bytes>) -> Self {
        NameComponent {
            typ: TT_GENERIC_COMPONENT,
            value: value.into(),
        }
    }

    /// A generic component from UTF-8 text.
    pub fn from_str_generic(s: &str) -> Self {
        NameComponent::generic(Bytes::copy_from_slice(s.as_bytes()))
    }

    /// A typed component.
    pub fn typed(typ: u16, value: impl Into<Bytes>) -> Self {
        NameComponent {
            typ,
            value: value.into(),
        }
    }

    /// A segment-number component (`seg=<n>` in URI form).
    pub fn segment(n: u64) -> Self {
        NameComponent::typed(TT_SEGMENT, encode_nonneg(n))
    }

    /// A version component (`v=<n>` in URI form).
    pub fn version(n: u64) -> Self {
        NameComponent::typed(TT_VERSION, encode_nonneg(n))
    }

    /// An implicit SHA-256 digest component (32 bytes).
    pub fn implicit_digest(digest: [u8; 32]) -> Self {
        NameComponent::typed(TT_IMPLICIT_DIGEST, Bytes::copy_from_slice(&digest))
    }

    /// The TLV type of this component.
    pub fn typ(&self) -> u16 {
        self.typ
    }

    /// The raw value bytes.
    pub fn value(&self) -> &[u8] {
        &self.value
    }

    /// Interpret the value as a non-negative integer (for segment/version
    /// components). Returns `None` when longer than 8 bytes.
    pub fn as_number(&self) -> Option<u64> {
        if self.value.len() > 8 {
            return None;
        }
        let mut n: u64 = 0;
        for &b in self.value.iter() {
            n = (n << 8) | u64::from(b);
        }
        Some(n)
    }

    /// The value as UTF-8 text, if valid.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.value).ok()
    }

    /// Canonical NDN component ordering: type, then length, then bytes.
    pub fn canonical_cmp(&self, other: &Self) -> Ordering {
        self.typ
            .cmp(&other.typ)
            .then_with(|| self.value.len().cmp(&other.value.len()))
            .then_with(|| self.value.cmp(&other.value))
    }
}

/// Encode a non-negative integer as the shortest big-endian byte string
/// (NDN's NonNegativeInteger, minus the 1/2/4/8 padding requirement, which
/// applies to TLV values but the conventions use shortest form in names).
fn encode_nonneg(n: u64) -> Bytes {
    if n == 0 {
        return Bytes::copy_from_slice(&[0]);
    }
    let bytes = n.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count();
    Bytes::copy_from_slice(&bytes[skip..])
}

impl PartialOrd for NameComponent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NameComponent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

/// Characters that may appear unescaped in URI form. `=`, `&`, `+` are kept
/// readable because LIDC job names use them heavily.
fn is_unescaped(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~' | b'=' | b'&' | b'+' | b',' | b':')
}

fn escape_into(out: &mut String, bytes: &[u8]) {
    for &b in bytes {
        if is_unescaped(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
}

impl fmt::Display for NameComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.typ {
            TT_GENERIC_COMPONENT => {
                let mut s = String::new();
                escape_into(&mut s, &self.value);
                // A component that is all periods must be escaped to avoid
                // colliding with relative-path syntax.
                if s.chars().all(|c| c == '.') && !s.is_empty() {
                    write!(f, "...{s}")
                } else {
                    f.write_str(&s)
                }
            }
            TT_SEGMENT => write!(f, "seg={}", self.as_number().unwrap_or(0)),
            TT_VERSION => write!(f, "v={}", self.as_number().unwrap_or(0)),
            TT_IMPLICIT_DIGEST => {
                write!(f, "sha256digest=")?;
                for b in self.value.iter() {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
            t => {
                let mut s = String::new();
                escape_into(&mut s, &self.value);
                write!(f, "{t}={s}")
            }
        }
    }
}

impl fmt::Debug for NameComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A hierarchical NDN name.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Name {
    components: Vec<NameComponent>,
}

impl Name {
    /// The empty (root) name, printed as `/`.
    pub fn root() -> Self {
        Name::default()
    }

    /// Build from components.
    pub fn from_components(components: Vec<NameComponent>) -> Self {
        Name { components }
    }

    /// Parse a URI such as `/ndn/k8s/compute/mem=4&cpu=6&app=BLAST`.
    ///
    /// `seg=<n>` and `v=<n>` parse as typed segment/version components;
    /// `%XX` escapes decode to raw bytes; `/` alone is the root name.
    pub fn parse(uri: &str) -> Result<Name, NameParseError> {
        let uri = uri.trim();
        let path = uri
            .strip_prefix("ndn:")
            .unwrap_or(uri)
            .trim_start_matches('/');
        if !uri.starts_with('/') && !uri.starts_with("ndn:/") {
            return Err(NameParseError::NotAbsolute);
        }
        let mut components = Vec::new();
        if path.is_empty() {
            return Ok(Name { components });
        }
        for part in path.split('/') {
            if part.is_empty() {
                return Err(NameParseError::EmptyComponent);
            }
            components.push(parse_component(part)?);
        }
        Ok(Name { components })
    }

    /// URI form; inverse of [`Name::parse`].
    pub fn to_uri(&self) -> String {
        if self.components.is_empty() {
            return "/".to_owned();
        }
        let mut out = String::new();
        for c in &self.components {
            out.push('/');
            out.push_str(&c.to_string());
        }
        out
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for the root name.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component at `i`.
    pub fn get(&self, i: usize) -> Option<&NameComponent> {
        self.components.get(i)
    }

    /// All components.
    pub fn components(&self) -> &[NameComponent] {
        &self.components
    }

    /// Append a component, consuming self (builder style).
    pub fn child(mut self, c: NameComponent) -> Name {
        self.components.push(c);
        self
    }

    /// Append a generic text component.
    pub fn child_str(self, s: &str) -> Name {
        self.child(NameComponent::from_str_generic(s))
    }

    /// Append in place.
    pub fn push(&mut self, c: NameComponent) {
        self.components.push(c);
    }

    /// The first `n` components as a new name (clamped to `len`).
    pub fn prefix(&self, n: usize) -> Name {
        Name {
            components: self.components[..n.min(self.components.len())].to_vec(),
        }
    }

    /// Parent name (all but the last component); root's parent is root.
    pub fn parent(&self) -> Name {
        if self.components.is_empty() {
            Name::root()
        } else {
            self.prefix(self.components.len() - 1)
        }
    }

    /// True if `self` is a prefix of `other` (every name is a prefix of
    /// itself; the root name is a prefix of everything).
    pub fn is_prefix_of(&self, other: &Name) -> bool {
        self.components.len() <= other.components.len()
            && self
                .components
                .iter()
                .zip(other.components.iter())
                .all(|(a, b)| a == b)
    }

    /// Concatenate `other` onto `self`.
    pub fn join(&self, other: &Name) -> Name {
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        Name { components }
    }
}

fn parse_component(part: &str) -> Result<NameComponent, NameParseError> {
    if let Some(rest) = part.strip_prefix("seg=") {
        let n: u64 = rest.parse().map_err(|_| NameParseError::BadNumber)?;
        return Ok(NameComponent::segment(n));
    }
    if let Some(rest) = part.strip_prefix("v=") {
        let n: u64 = rest.parse().map_err(|_| NameParseError::BadNumber)?;
        return Ok(NameComponent::version(n));
    }
    if let Some(rest) = part.strip_prefix("sha256digest=") {
        if rest.len() != 64 {
            return Err(NameParseError::BadDigest);
        }
        let mut digest = [0u8; 32];
        for (i, chunk) in rest.as_bytes().chunks(2).enumerate() {
            let hex = std::str::from_utf8(chunk).map_err(|_| NameParseError::BadDigest)?;
            digest[i] = u8::from_str_radix(hex, 16).map_err(|_| NameParseError::BadDigest)?;
        }
        return Ok(NameComponent::implicit_digest(digest));
    }
    // `...` prefix escapes an all-period component.
    let raw = part.strip_prefix("...").unwrap_or(part);
    let mut bytes = Vec::with_capacity(raw.len());
    let mut chars = raw.bytes();
    while let Some(b) = chars.next() {
        if b == b'%' {
            let hi = chars.next().ok_or(NameParseError::BadEscape)?;
            let lo = chars.next().ok_or(NameParseError::BadEscape)?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).map_err(|_| NameParseError::BadEscape)?;
            bytes.push(u8::from_str_radix(hex, 16).map_err(|_| NameParseError::BadEscape)?);
        } else {
            bytes.push(b);
        }
    }
    if bytes.is_empty() {
        return Err(NameParseError::EmptyComponent);
    }
    Ok(NameComponent::generic(bytes))
}

/// Error from [`Name::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameParseError {
    /// Names must begin with `/` (or `ndn:/`).
    NotAbsolute,
    /// Two adjacent slashes or a trailing slash produce an empty component.
    EmptyComponent,
    /// A `seg=`/`v=` component had a non-numeric value.
    BadNumber,
    /// A `sha256digest=` component was not 64 hex digits.
    BadDigest,
    /// A `%` escape was truncated or non-hex.
    BadEscape,
}

impl fmt::Display for NameParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameParseError::NotAbsolute => write!(f, "name must start with '/'"),
            NameParseError::EmptyComponent => write!(f, "empty name component"),
            NameParseError::BadNumber => write!(f, "malformed numeric component"),
            NameParseError::BadDigest => write!(f, "malformed sha256digest component"),
            NameParseError::BadEscape => write!(f, "malformed percent escape"),
        }
    }
}

impl std::error::Error for NameParseError {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// NDN canonical order: component-wise canonical comparison, with a
    /// shorter name ordering before any name it prefixes.
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.components.iter().zip(other.components.iter()) {
            match a.canonical_cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        self.components.len().cmp(&other.components.len())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_uri())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_uri())
    }
}

impl std::str::FromStr for Name {
    type Err = NameParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

impl Borrow<[NameComponent]> for Name {
    fn borrow(&self) -> &[NameComponent] {
        &self.components
    }
}

/// Convenience: `name!("/ndn/k8s/compute")` parses at use-site (panics on
/// malformed literals, which is appropriate for compile-time-known names).
#[macro_export]
macro_rules! name {
    ($uri:expr) => {
        $crate::name::Name::parse($uri).expect("malformed name literal")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        for uri in [
            "/",
            "/ndn",
            "/ndn/k8s/compute",
            "/ndn/k8s/compute/mem=4&cpu=6&app=BLAST",
            "/ndn/k8s/data/rice-rna/seg=12",
            "/a/v=7/seg=0",
        ] {
            let n = Name::parse(uri).unwrap();
            assert_eq!(n.to_uri(), uri, "round trip {uri}");
        }
    }

    #[test]
    fn paper_compute_name_components() {
        let n = name!("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST");
        assert_eq!(n.len(), 4);
        assert_eq!(n.get(0).unwrap().as_str(), Some("ndn"));
        assert_eq!(n.get(3).unwrap().as_str(), Some("mem=4&cpu=6&app=BLAST"));
    }

    #[test]
    fn escapes_round_trip() {
        let n = Name::root().child(NameComponent::generic(&b"a b/c"[..]));
        let uri = n.to_uri();
        assert_eq!(uri, "/a%20b%2Fc");
        assert_eq!(Name::parse(&uri).unwrap(), n);
    }

    #[test]
    fn binary_component_round_trip() {
        let n = Name::root().child(NameComponent::generic(vec![0u8, 1, 254, 255]));
        let parsed = Name::parse(&n.to_uri()).unwrap();
        assert_eq!(parsed, n);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(Name::parse("relative"), Err(NameParseError::NotAbsolute));
        assert_eq!(Name::parse("/a//b"), Err(NameParseError::EmptyComponent));
        assert_eq!(Name::parse("/a/"), Err(NameParseError::EmptyComponent));
        assert_eq!(Name::parse("/seg=abc"), Err(NameParseError::BadNumber));
        assert_eq!(Name::parse("/a/%4"), Err(NameParseError::BadEscape));
        assert_eq!(Name::parse("/a/%zz"), Err(NameParseError::BadEscape));
        assert_eq!(Name::parse("/sha256digest=1234"), Err(NameParseError::BadDigest));
    }

    #[test]
    fn ndn_scheme_prefix_accepted() {
        assert_eq!(Name::parse("ndn:/a/b").unwrap(), name!("/a/b"));
    }

    #[test]
    fn prefix_relations() {
        let root = Name::root();
        let a = name!("/a");
        let ab = name!("/a/b");
        let ac = name!("/a/c");
        assert!(root.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&ab));
        assert!(ab.is_prefix_of(&ab));
        assert!(!ab.is_prefix_of(&a));
        assert!(!ac.is_prefix_of(&ab));
    }

    #[test]
    fn prefix_parent_join() {
        let n = name!("/a/b/c");
        assert_eq!(n.prefix(2), name!("/a/b"));
        assert_eq!(n.prefix(10), n);
        assert_eq!(n.parent(), name!("/a/b"));
        assert_eq!(Name::root().parent(), Name::root());
        assert_eq!(name!("/a").join(&name!("/b/c")), name!("/a/b/c"));
    }

    #[test]
    fn canonical_order_shorter_first() {
        let a = name!("/a");
        let ab = name!("/a/b");
        let b = name!("/b");
        assert!(a < ab, "prefix sorts before extension");
        assert!(ab < b, "first differing component decides");
        // Shorter component value sorts first at equal type.
        let short = Name::root().child(NameComponent::generic(&b"z"[..]));
        let long = Name::root().child(NameComponent::generic(&b"aa"[..]));
        assert!(short < long, "1-byte component < 2-byte component");
    }

    #[test]
    fn typed_components() {
        let seg = NameComponent::segment(300);
        assert_eq!(seg.typ(), TT_SEGMENT);
        assert_eq!(seg.as_number(), Some(300));
        assert_eq!(seg.to_string(), "seg=300");
        let v = NameComponent::version(0);
        assert_eq!(v.as_number(), Some(0));
        assert_eq!(v.value(), &[0u8]);
        let digest = NameComponent::implicit_digest([0xAB; 32]);
        assert!(digest.to_string().starts_with("sha256digest=abab"));
        let parsed = Name::parse(&Name::root().child(digest.clone()).to_uri()).unwrap();
        assert_eq!(parsed.get(0).unwrap(), &digest);
    }

    #[test]
    fn all_period_component_escaping() {
        let n = Name::root().child(NameComponent::generic(&b".."[..]));
        let uri = n.to_uri();
        assert_eq!(uri, "/.....");
        assert_eq!(Name::parse(&uri).unwrap(), n);
    }

    #[test]
    fn as_number_rejects_wide_values() {
        let c = NameComponent::typed(TT_SEGMENT, Bytes::copy_from_slice(&[1u8; 9]));
        assert_eq!(c.as_number(), None);
    }
}
