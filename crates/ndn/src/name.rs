//! Hierarchical NDN names, allocation-free on the request path.
//!
//! A [`Name`] is a sequence of typed [`NameComponent`]s, printed and parsed
//! in URI form (`/ndn/k8s/compute/mem=4&cpu=6&app=BLAST`). LIDC's semantic
//! job names are ordinary generic components; the `&`-separated parameter
//! grammar is layered on top by `lidc-core::naming`.
//!
//! # Representation
//!
//! Both layers of the name plane use small-buffer hybrids tuned for LIDC's
//! short names:
//!
//! * A component value up to [`INLINE_VALUE_CAP`] bytes is stored **inline**
//!   in the `NameComponent` (no heap, no refcounts). Longer values hold a
//!   refcounted [`Bytes`] — in packets decoded from the wire this is a
//!   zero-copy **view into the shared receive buffer** (the wire arena),
//!   never a copy.
//! * A name with up to [`SMALL_NAME_CAP`] components stores its component
//!   table **inline** in the `Name` (no heap). Longer names spill to a
//!   shared `Arc<Vec<NameComponent>>` table plus a visible-prefix length.
//!
//! Consequences:
//!
//! * [`Name::parse`] of a typical LIDC name (≤ [`SMALL_NAME_CAP`]
//!   components, each ≤ [`INLINE_VALUE_CAP`] bytes decoded) performs zero
//!   heap allocations.
//! * [`Name::clone`], [`Name::prefix`], and [`Name::parent`] are O(1):
//!   a fixed-size copy for small names (with refcount bumps only for
//!   spilled values), one `Arc` bump for large ones. No `Vec` is ever
//!   materialized per step.
//! * [`Name::child`] / [`Name::push`] write in place while the name is
//!   small or uniquely owned; otherwise they copy component *handles*
//!   (inline bytes / refcount bumps), never long value bytes.
//!
//! # Invariants
//!
//! * The visible length never exceeds the stored table's length; hidden
//!   components past it (shared tables only) **must never** participate in
//!   equality, hashing, ordering, display, or iteration. Every observer
//!   goes through [`Name::components`], which enforces this.
//! * `Hash`/`Eq`/`Ord` are defined over the visible component slice, so a
//!   `Name` and the `&[NameComponent]` returned by [`Name::components`]
//!   (or by [`NameSlice::components`]) hash and compare identically. This
//!   is what makes borrowed-prefix map probes sound:
//!   `HashMap<Name, T>::get(&name.components()[..k])` finds exactly the
//!   entry that `get(&name.prefix(k))` would — with zero allocation. The
//!   `Borrow<[NameComponent]>` impl advertises this contract.
//! * Component ordering follows the NDN canonical order (type, then
//!   length, then lexicographic bytes), and names order component-wise
//!   with shorter prefixes first — the order the Content Store and FIB
//!   rely on; it coincides with the std lexicographic order on the visible
//!   component slices, so `BTreeMap<Name, _>` range scans can be driven by
//!   borrowed slices too.
//!
//! [`NameSlice`] is the borrowed view type for walking prefixes without
//! copying anything at all; `slice.components()` is the key to use for map
//! probes.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

/// TLV-TYPE of a generic name component.
pub const TT_GENERIC_COMPONENT: u16 = 0x08;
/// TLV-TYPE of an implicit SHA-256 digest component.
pub const TT_IMPLICIT_DIGEST: u16 = 0x01;
/// TLV-TYPE of a segment-number component (NDN naming conventions rev-3).
pub const TT_SEGMENT: u16 = 0x32;
/// TLV-TYPE of a version component (NDN naming conventions rev-3).
pub const TT_VERSION: u16 = 0x36;

/// Component values at or below this many bytes are stored inline in the
/// component (no heap, no refcounting).
pub const INLINE_VALUE_CAP: usize = 56;

/// Names with at most this many components keep their component table
/// inline in the `Name` (no heap).
pub const SMALL_NAME_CAP: usize = 4;

/// A component value: inline small buffer or shared refcounted bytes.
// The size gap between variants is the design: the large inline variant
// avoids refcount traffic for typical LIDC component values.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum CompValue {
    Inline { len: u8, buf: [u8; INLINE_VALUE_CAP] },
    Shared(Bytes),
}

impl CompValue {
    const EMPTY: CompValue = CompValue::Inline {
        len: 0,
        buf: [0; INLINE_VALUE_CAP],
    };

    #[inline(always)]
    fn as_slice(&self) -> &[u8] {
        match self {
            CompValue::Inline { len, buf } => &buf[..*len as usize],
            CompValue::Shared(b) => b,
        }
    }

    /// Copy from a borrowed slice: inline when it fits, owned bytes
    /// otherwise.
    #[inline(always)]
    fn from_slice(s: &[u8]) -> CompValue {
        if s.len() <= INLINE_VALUE_CAP {
            let mut buf = [0u8; INLINE_VALUE_CAP];
            buf[..s.len()].copy_from_slice(s);
            CompValue::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            CompValue::Shared(Bytes::copy_from_slice(s))
        }
    }

    /// Take ownership of `b`: inlined when small (dropping the refcount),
    /// shared otherwise.
    #[inline]
    fn from_bytes(b: Bytes) -> CompValue {
        if b.len() <= INLINE_VALUE_CAP {
            CompValue::from_slice(&b)
        } else {
            CompValue::Shared(b)
        }
    }

    /// A value for `sub`, which must lie inside `owner`: inlined when
    /// small, otherwise a zero-copy view into `owner` (the wire arena).
    #[inline(always)]
    fn view_of(owner: &Bytes, sub: &[u8]) -> CompValue {
        if sub.len() <= INLINE_VALUE_CAP {
            CompValue::from_slice(sub)
        } else {
            CompValue::Shared(owner.slice_ref(sub))
        }
    }

    /// Overwrite in place from a borrowed slice. When `self` is already an
    /// inline value and the new one fits, this is a plain byte copy into
    /// the existing buffer — no temporaries, no enum rebuild. The in-place
    /// fast path of the parser and wire decoder.
    #[inline(always)]
    fn set_from_slice(&mut self, s: &[u8]) {
        if s.len() <= INLINE_VALUE_CAP {
            if let CompValue::Inline { len, buf } = self {
                // Byte loop for short values: beats a libc memcpy call at
                // typical component sizes and vectorizes fine.
                if s.len() <= 16 {
                    for (d, &b) in buf.iter_mut().zip(s) {
                        *d = b;
                    }
                } else {
                    buf[..s.len()].copy_from_slice(s);
                }
                *len = s.len() as u8;
                return;
            }
            *self = CompValue::from_slice(s);
        } else {
            *self = CompValue::Shared(Bytes::copy_from_slice(s));
        }
    }

    /// Overwrite in place with a view of `sub` inside `owner` (see
    /// [`CompValue::view_of`]).
    #[inline(always)]
    fn set_view_of(&mut self, owner: &Bytes, sub: &[u8]) {
        if sub.len() <= INLINE_VALUE_CAP {
            self.set_from_slice(sub);
        } else {
            *self = CompValue::Shared(owner.slice_ref(sub));
        }
    }
}

/// One component of a [`Name`]: a TLV type plus an opaque byte value (see
/// the module docs for the inline/shared value representation).
#[derive(Clone)]
pub struct NameComponent {
    typ: u16,
    value: CompValue,
}

/// The empty generic component (used to fill inline tables).
const EMPTY_COMPONENT: NameComponent = NameComponent {
    typ: TT_GENERIC_COMPONENT,
    value: CompValue::EMPTY,
};

impl Default for NameComponent {
    fn default() -> Self {
        EMPTY_COMPONENT
    }
}

impl NameComponent {
    /// A generic component holding the given bytes.
    pub fn generic(value: impl Into<Bytes>) -> Self {
        NameComponent {
            typ: TT_GENERIC_COMPONENT,
            value: CompValue::from_bytes(value.into()),
        }
    }

    /// A generic component from UTF-8 text.
    pub fn from_str_generic(s: &str) -> Self {
        NameComponent {
            typ: TT_GENERIC_COMPONENT,
            value: CompValue::from_slice(s.as_bytes()),
        }
    }

    /// A typed component.
    pub fn typed(typ: u16, value: impl Into<Bytes>) -> Self {
        NameComponent {
            typ,
            value: CompValue::from_bytes(value.into()),
        }
    }

    /// A typed component borrowing its value from `owner` (zero-copy for
    /// long values; used by the wire decoder).
    #[inline(always)]
    pub(crate) fn view_of(typ: u16, owner: &Bytes, sub: &[u8]) -> Self {
        NameComponent {
            typ,
            value: CompValue::view_of(owner, sub),
        }
    }

    /// Overwrite this component in place (type + value view). Used by the
    /// wire decoder to fill a name's inline slots without temporaries.
    #[inline(always)]
    pub(crate) fn set_view_of(&mut self, typ: u16, owner: &Bytes, sub: &[u8]) {
        self.typ = typ;
        self.value.set_view_of(owner, sub);
    }

    /// A segment-number component (`seg=<n>` in URI form).
    pub fn segment(n: u64) -> Self {
        NameComponent {
            typ: TT_SEGMENT,
            value: nonneg_value(n),
        }
    }

    /// A version component (`v=<n>` in URI form).
    pub fn version(n: u64) -> Self {
        NameComponent {
            typ: TT_VERSION,
            value: nonneg_value(n),
        }
    }

    /// An implicit SHA-256 digest component (32 bytes).
    pub fn implicit_digest(digest: [u8; 32]) -> Self {
        NameComponent {
            typ: TT_IMPLICIT_DIGEST,
            value: CompValue::from_slice(&digest),
        }
    }

    /// The TLV type of this component.
    #[inline]
    pub fn typ(&self) -> u16 {
        self.typ
    }

    /// The raw value bytes.
    #[inline]
    pub fn value(&self) -> &[u8] {
        self.value.as_slice()
    }

    /// Interpret the value as a non-negative integer (for segment/version
    /// components). Returns `None` when longer than 8 bytes.
    pub fn as_number(&self) -> Option<u64> {
        let v = self.value();
        if v.len() > 8 {
            return None;
        }
        let mut n: u64 = 0;
        for &b in v {
            n = (n << 8) | u64::from(b);
        }
        Some(n)
    }

    /// The value as UTF-8 text, if valid.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(self.value()).ok()
    }

    /// Canonical NDN component ordering: type, then length, then bytes.
    pub fn canonical_cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (self.value(), other.value());
        self.typ
            .cmp(&other.typ)
            .then_with(|| a.len().cmp(&b.len()))
            .then_with(|| a.cmp(b))
    }

    /// Write the URI form of this component into `out` (no intermediate
    /// allocations; the fast path behind `to_uri`/`Display`).
    fn write_uri(&self, out: &mut String) {
        let value = self.value();
        match self.typ {
            TT_GENERIC_COMPONENT => {
                // A component that is all periods must be escaped to avoid
                // colliding with relative-path syntax.
                if !value.is_empty() && value.iter().all(|&b| b == b'.') {
                    out.push_str("...");
                }
                escape_into(out, value);
            }
            TT_SEGMENT => {
                out.push_str("seg=");
                push_u64(out, self.as_number().unwrap_or(0));
            }
            TT_VERSION => {
                out.push_str("v=");
                push_u64(out, self.as_number().unwrap_or(0));
            }
            TT_IMPLICIT_DIGEST => {
                out.push_str("sha256digest=");
                for &b in value {
                    out.push(HEX_LOWER[(b >> 4) as usize] as char);
                    out.push(HEX_LOWER[(b & 0xF) as usize] as char);
                }
            }
            t => {
                push_u64(out, u64::from(t));
                out.push('=');
                escape_into(out, value);
            }
        }
    }

    /// Worst-case URI length of this component (used to pre-size buffers).
    fn uri_len_upper_bound(&self) -> usize {
        match self.typ {
            TT_SEGMENT | TT_VERSION => 24,
            TT_IMPLICIT_DIGEST => 13 + 2 * self.value().len(),
            // Every byte may need a %XX escape; generic all-period names
            // add a 3-byte prefix; typed components add "NNNNN=".
            _ => 6 + 3 * self.value().len(),
        }
    }
}

impl PartialEq for NameComponent {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.typ == other.typ && self.value() == other.value()
    }
}

impl Eq for NameComponent {}

impl std::hash::Hash for NameComponent {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.typ.hash(state);
        self.value().hash(state);
    }
}

const HEX_UPPER: &[u8; 16] = b"0123456789ABCDEF";
const HEX_LOWER: &[u8; 16] = b"0123456789abcdef";

/// Append the decimal form of `n` without going through `format!`.
fn push_u64(out: &mut String, mut n: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        // lidc-lint: allow(panic-path) reason="a u64 has at most buf.len() decimal digits, so i never underflows"
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // The buffer holds ASCII digits only.
    // lidc-lint: allow(panic-path) reason="the buffer holds only the ASCII digits written above, so utf8 validation cannot fail"
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// The shortest big-endian form of `n` (NDN's NonNegativeInteger, minus the
/// 1/2/4/8 padding requirement, which applies to TLV values but the
/// conventions use shortest form in names). Always inline — 8 bytes max.
fn nonneg_value(n: u64) -> CompValue {
    let bytes = n.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count().min(7);
    CompValue::from_slice(&bytes[skip..])
}

impl PartialOrd for NameComponent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NameComponent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

/// Characters that may appear unescaped in URI form. `=`, `&`, `+` are kept
/// readable because LIDC job names use them heavily.
fn is_unescaped(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~' | b'=' | b'&' | b'+' | b',' | b':')
}

fn escape_into(out: &mut String, bytes: &[u8]) {
    for &b in bytes {
        if is_unescaped(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(HEX_UPPER[(b >> 4) as usize] as char);
            out.push(HEX_UPPER[(b & 0xF) as usize] as char);
        }
    }
}

impl fmt::Display for NameComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::with_capacity(self.uri_len_upper_bound());
        self.write_uri(&mut s);
        f.write_str(&s)
    }
}

impl fmt::Debug for NameComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Small-or-shared component table (see the module docs).
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum Repr {
    /// Up to [`SMALL_NAME_CAP`] components inline; `n` are visible.
    Small {
        n: u8,
        comps: [NameComponent; SMALL_NAME_CAP],
    },
    /// Shared table; the first `len` components are visible, the rest are
    /// hidden (they belong to longer names sharing the table).
    Shared {
        comps: Arc<Vec<NameComponent>>,
        len: usize,
    },
}

/// A hierarchical NDN name (see the module docs for the representation and
/// its invariants).
pub struct Name {
    repr: Repr,
}

impl Clone for Name {
    /// Clones only the visible components: hidden slots (left behind by
    /// [`Name::prefix`] / [`Name::parent`] on inline tables) are reset to
    /// empty rather than copied, which both trims the copy and releases
    /// any refcounts they held.
    fn clone(&self) -> Name {
        match &self.repr {
            Repr::Small { n, comps } => {
                let count = *n as usize;
                let mut out = [EMPTY_COMPONENT; SMALL_NAME_CAP];
                out[..count].clone_from_slice(&comps[..count]);
                Name {
                    repr: Repr::Small { n: *n, comps: out },
                }
            }
            Repr::Shared { comps, len } => Name {
                repr: Repr::Shared {
                    comps: comps.clone(),
                    len: *len,
                },
            },
        }
    }
}

impl Default for Name {
    fn default() -> Self {
        Name::root()
    }
}

impl Name {
    /// The empty (root) name, printed as `/`. Allocation-free.
    pub fn root() -> Self {
        Name {
            repr: Repr::Small {
                n: 0,
                comps: [EMPTY_COMPONENT; SMALL_NAME_CAP],
            },
        }
    }

    /// Decode a Name TLV body (component sequence) found inside `wire`,
    /// filling the inline slots in place; long component values are
    /// zero-copy views into `wire` (short ones inline). `body` must be a
    /// sub-slice of `wire`. Allocation-free for names of up to
    /// [`SMALL_NAME_CAP`] components.
    #[inline]
    pub(crate) fn decode_body_from(wire: &Bytes, body: &[u8]) -> Result<Name, crate::tlv::TlvError> {
        use crate::tlv::TlvError;
        let mut name = Name::root();
        let Repr::Small { n, comps } = &mut name.repr else {
            unreachable!("root is small");
        };
        // Tight index loop over the body: the common case (single-byte
        // type and length headers, ≤ SMALL_NAME_CAP components) runs with
        // one bounds check per component and no reader state.
        let mut i = 0usize;
        let mut count = 0usize;
        while i < body.len() {
            if count == SMALL_NAME_CAP {
                return decode_name_slow(wire, body, i, std::mem::take(comps), count);
            }
            let (t, l) = match &body[i..] {
                &[t, l, ..] if t < 253 && l < 253 => (u16::from(t), usize::from(l)),
                _ => return decode_name_slow(wire, body, i, std::mem::take(comps), count),
            };
            let start = i + 2;
            let end = start + l;
            if end > body.len() {
                return Err(TlvError::LengthOverrun);
            }
            comps[count].set_view_of(t, wire, &body[start..end]);
            count += 1;
            i = end;
        }
        *n = count as u8;
        Ok(name)
    }

    /// Build from components. Small tables stay inline; larger ones are
    /// shared.
    pub fn from_components(components: Vec<NameComponent>) -> Self {
        if components.len() <= SMALL_NAME_CAP {
            let n = components.len() as u8;
            let mut it = components.into_iter();
            Name {
                repr: Repr::Small {
                    n,
                    comps: std::array::from_fn(|_| it.next().unwrap_or(EMPTY_COMPONENT)),
                },
            }
        } else {
            Name {
                repr: Repr::Shared {
                    len: components.len(),
                    comps: Arc::new(components),
                },
            }
        }
    }

    /// Parse a URI such as `/ndn/k8s/compute/mem=4&cpu=6&app=BLAST`.
    ///
    /// `seg=<n>` and `v=<n>` parse as typed segment/version components;
    /// `%XX` escapes decode to raw bytes; `/` alone is the root name.
    ///
    /// Escape-free components are bulk-copied straight out of the URI (the
    /// common case); short names and values stay entirely on the stack.
    pub fn parse(uri: &str) -> Result<Name, NameParseError> {
        let uri = uri.trim();
        if !uri.starts_with('/') && !uri.starts_with("ndn:/") {
            return Err(NameParseError::NotAbsolute);
        }
        let path = uri
            .strip_prefix("ndn:")
            .unwrap_or(uri)
            .trim_start_matches('/');
        if path.is_empty() {
            return Ok(Name::root());
        }
        // Fill the inline table's slots in place; spill to a Vec only for
        // deep names. No per-component moves through `push`.
        let mut name = Name::root();
        let Repr::Small { n, comps } = &mut name.repr else {
            // lidc-lint: allow(panic-path) reason="Name::root() always constructs the Small representation"
            unreachable!("root is small");
        };
        let mut count = 0usize;
        let mut parts = path.split('/');
        for part in parts.by_ref() {
            if part.is_empty() {
                return Err(NameParseError::EmptyComponent);
            }
            if count == SMALL_NAME_CAP {
                // Deep name: move what we have into a Vec and keep going.
                let mut v: Vec<NameComponent> = std::mem::take(comps).into_iter().collect();
                let mut c = NameComponent::default();
                parse_component_into(part, &mut c)?;
                v.push(c);
                for rest in parts {
                    if rest.is_empty() {
                        return Err(NameParseError::EmptyComponent);
                    }
                    let mut c = NameComponent::default();
                    parse_component_into(rest, &mut c)?;
                    v.push(c);
                }
                return Ok(Name::from_components(v));
            }
            // lidc-lint: allow(panic-path) reason="count < SMALL_NAME_CAP is enforced by the overflow branch just above"
            parse_component_into(part, &mut comps[count])?;
            count += 1;
        }
        *n = count as u8;
        Ok(name)
    }

    /// URI form; inverse of [`Name::parse`].
    pub fn to_uri(&self) -> String {
        let comps = self.components();
        if comps.is_empty() {
            return "/".to_owned();
        }
        let cap: usize = comps.iter().map(|c| 1 + c.uri_len_upper_bound()).sum();
        let mut out = String::with_capacity(cap);
        for c in comps {
            out.push('/');
            c.write_uri(&mut out);
        }
        out
    }

    /// Number of components.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small { n, .. } => *n as usize,
            Repr::Shared { len, .. } => *len,
        }
    }

    /// True for the root name.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Component at `i`.
    pub fn get(&self, i: usize) -> Option<&NameComponent> {
        self.components().get(i)
    }

    /// All visible components. This slice is also the borrowed map-probe
    /// key: it hashes and compares identically to the `Name` itself.
    #[inline]
    pub fn components(&self) -> &[NameComponent] {
        match &self.repr {
            Repr::Small { n, comps } => &comps[..*n as usize],
            Repr::Shared { comps, len } => &comps[..*len],
        }
    }

    /// A borrowed view of this whole name.
    #[inline]
    pub fn as_slice(&self) -> NameSlice<'_> {
        NameSlice {
            comps: self.components(),
        }
    }

    /// A borrowed view of the first `n` components (clamped to `len`) —
    /// the allocation-free alternative to [`Name::prefix`].
    #[inline]
    pub fn prefix_slice(&self, n: usize) -> NameSlice<'_> {
        let comps = self.components();
        NameSlice {
            comps: &comps[..n.min(comps.len())],
        }
    }

    /// Append a component, consuming self (builder style).
    pub fn child(mut self, c: NameComponent) -> Name {
        self.push(c);
        self
    }

    /// Append a generic text component.
    pub fn child_str(self, s: &str) -> Name {
        self.child(NameComponent::from_str_generic(s))
    }

    /// Append in place. Small names write into their inline table; shared
    /// tables are reused when uniquely owned and otherwise re-built from
    /// component handles (inline bytes / refcount bumps — long value bytes
    /// are never copied).
    pub fn push(&mut self, c: NameComponent) {
        match &mut self.repr {
            Repr::Small { n, comps } => {
                let count = *n as usize;
                if count < SMALL_NAME_CAP {
                    // lidc-lint: allow(panic-path) reason="guarded by the count < SMALL_NAME_CAP check on the line above"
                    comps[count] = c;
                    *n += 1;
                } else {
                    // Promote to a shared table.
                    let mut v = Vec::with_capacity(count + 1);
                    for comp in comps.iter_mut() {
                        v.push(std::mem::take(comp));
                    }
                    v.push(c);
                    self.repr = Repr::Shared {
                        len: v.len(),
                        comps: Arc::new(v),
                    };
                }
            }
            Repr::Shared { comps, len } => {
                match Arc::get_mut(comps) {
                    Some(v) => {
                        v.truncate(*len);
                        v.push(c);
                    }
                    None => {
                        let mut v = Vec::with_capacity(*len + 1);
                        v.extend_from_slice(&comps[..*len]);
                        v.push(c);
                        *comps = Arc::new(v);
                    }
                }
                *len += 1;
            }
        }
    }

    /// The first `n` components as a new name (clamped to `len`). O(1):
    /// copies the inline table or bumps the shared table's refcount —
    /// no `Vec` is materialized.
    pub fn prefix(&self, n: usize) -> Name {
        let mut out = self.clone();
        match &mut out.repr {
            Repr::Small { n: count, comps } => {
                // Clamp in usize first: casting a large `n` to u8 would wrap.
                let new = (*count as usize).min(n);
                // Reset the now-hidden slots so they release any refcounts
                // (e.g. views pinning a packet's receive buffer).
                for c in comps[new..*count as usize].iter_mut() {
                    *c = EMPTY_COMPONENT;
                }
                *count = new as u8;
            }
            Repr::Shared { len, .. } => *len = (*len).min(n),
        }
        out
    }

    /// Parent name (all but the last component); root's parent is root.
    /// O(1), like [`Name::prefix`].
    pub fn parent(&self) -> Name {
        self.prefix(self.len().saturating_sub(1))
    }

    /// True if `self` is a prefix of `other` (every name is a prefix of
    /// itself; the root name is a prefix of everything).
    pub fn is_prefix_of(&self, other: &Name) -> bool {
        let a = self.components();
        let b = other.components();
        a.len() <= b.len() && a == &b[..a.len()]
    }

    /// Concatenate `other` onto `self`.
    pub fn join(&self, other: &Name) -> Name {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(self.components());
        v.extend_from_slice(other.components());
        Name::from_components(v)
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Out-of-line continuation of [`Name::decode_body_from`] for names that
/// are deep (more than [`SMALL_NAME_CAP`] components) or use wide TLV
/// headers: `filled[..count]` holds the components decoded so far, and
/// decoding resumes at `body[i..]`.
#[cold]
fn decode_name_slow(
    wire: &Bytes,
    body: &[u8],
    i: usize,
    filled: [NameComponent; SMALL_NAME_CAP],
    count: usize,
) -> Result<Name, crate::tlv::TlvError> {
    use crate::tlv::{TlvError, TlvReader};
    let mut v: Vec<NameComponent> = filled.into_iter().take(count).collect();
    let mut r = TlvReader::new(&body[i..]);
    while !r.is_empty() {
        let (typ, value) = r.read_tlv()?;
        let typ =
            u16::try_from(typ).map_err(|_| TlvError::Malformed("component type too large"))?;
        v.push(NameComponent::view_of(typ, wire, value));
    }
    Ok(Name::from_components(v))
}

/// Parse one URI component into `slot` in place (no temporaries on the
/// escape-free fast path).
#[inline]
fn parse_component_into(part: &str, slot: &mut NameComponent) -> Result<(), NameParseError> {
    if let Some(rest) = part.strip_prefix("seg=") {
        let n: u64 = rest.parse().map_err(|_| NameParseError::BadNumber)?;
        slot.typ = TT_SEGMENT;
        slot.value = nonneg_value(n);
        return Ok(());
    }
    if let Some(rest) = part.strip_prefix("v=") {
        let n: u64 = rest.parse().map_err(|_| NameParseError::BadNumber)?;
        slot.typ = TT_VERSION;
        slot.value = nonneg_value(n);
        return Ok(());
    }
    if let Some(rest) = part.strip_prefix("sha256digest=") {
        let hex = rest.as_bytes();
        if hex.len() != 64 {
            return Err(NameParseError::BadDigest);
        }
        let mut digest = [0u8; 32];
        for (i, pair) in hex.chunks_exact(2).enumerate() {
            let hi = hex_val(pair[0]).ok_or(NameParseError::BadDigest)?;
            let lo = hex_val(pair[1]).ok_or(NameParseError::BadDigest)?;
            // lidc-lint: allow(panic-path) reason="hex length was validated to exactly 64, so chunks_exact(2) yields the digest's 32 pairs"
            digest[i] = (hi << 4) | lo;
        }
        slot.typ = TT_IMPLICIT_DIGEST;
        slot.value.set_from_slice(&digest);
        return Ok(());
    }
    // `...` prefix escapes an all-period component.
    let raw = part.strip_prefix("...").unwrap_or(part).as_bytes();
    if raw.is_empty() {
        return Err(NameParseError::EmptyComponent);
    }
    slot.typ = TT_GENERIC_COMPONENT;
    // Fast path: no escapes — the decoded value IS the URI substring.
    if !raw.contains(&b'%') {
        slot.value.set_from_slice(raw);
        return Ok(());
    }
    // Slow path: decode %XX escapes (decoded length <= raw length).
    let mut bytes = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        // lidc-lint: allow(panic-path) reason="the while condition bounds i < raw.len()"
        let b = raw[i];
        if b == b'%' {
            let hi = raw.get(i + 1).copied().and_then(hex_val);
            let lo = raw.get(i + 2).copied().and_then(hex_val);
            match (hi, lo) {
                (Some(hi), Some(lo)) => {
                    bytes.push((hi << 4) | lo);
                    i += 3;
                }
                _ => return Err(NameParseError::BadEscape),
            }
        } else {
            bytes.push(b);
            i += 1;
        }
    }
    slot.value = CompValue::from_bytes(Bytes::from(bytes));
    Ok(())
}

/// Error from [`Name::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameParseError {
    /// Names must begin with `/` (or `ndn:/`).
    NotAbsolute,
    /// Two adjacent slashes or a trailing slash produce an empty component.
    EmptyComponent,
    /// A `seg=`/`v=` component had a non-numeric value.
    BadNumber,
    /// A `sha256digest=` component was not 64 hex digits.
    BadDigest,
    /// A `%` escape was truncated or non-hex.
    BadEscape,
}

impl fmt::Display for NameParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameParseError::NotAbsolute => write!(f, "name must start with '/'"),
            NameParseError::EmptyComponent => write!(f, "empty name component"),
            NameParseError::BadNumber => write!(f, "malformed numeric component"),
            NameParseError::BadDigest => write!(f, "malformed sha256digest component"),
            NameParseError::BadEscape => write!(f, "malformed percent escape"),
        }
    }
}

impl std::error::Error for NameParseError {}

impl PartialEq for Name {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.components() == other.components()
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    /// Hashes exactly like `self.components()` (slice hashing), keeping the
    /// `Borrow<[NameComponent]>` map-probe contract.
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.components().hash(state);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// NDN canonical order: component-wise canonical comparison, with a
    /// shorter name ordering before any name it prefixes. Coincides with
    /// the std lexicographic order on the visible component slices.
    fn cmp(&self, other: &Self) -> Ordering {
        self.components().cmp(other.components())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_uri())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_uri())
    }
}

impl std::str::FromStr for Name {
    type Err = NameParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

impl Borrow<[NameComponent]> for Name {
    /// `Name` hashes/compares exactly like its visible component slice, so
    /// hash maps and btree maps keyed by `Name` can be probed with
    /// `&name.components()[..k]` — a borrowed prefix — without building an
    /// owned key.
    fn borrow(&self) -> &[NameComponent] {
        self.components()
    }
}

/// A borrowed view of a name (or a prefix of one): the allocation-free
/// currency of FIB/PIT/CS lookups.
///
/// `NameSlice` is `Copy`; it hashes and compares exactly like the [`Name`]
/// it was sliced from (both delegate to the component slice), so a
/// `HashMap<Name, T>` can be probed with `slice.components()` via the
/// `Borrow<[NameComponent]>` bridge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameSlice<'a> {
    comps: &'a [NameComponent],
}

impl<'a> NameSlice<'a> {
    /// Wrap a component slice.
    pub fn new(comps: &'a [NameComponent]) -> Self {
        NameSlice { comps }
    }

    /// The underlying components — also the borrowed map-probe key.
    #[inline]
    pub fn components(&self) -> &'a [NameComponent] {
        self.comps
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True for the root view.
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Component at `i`.
    pub fn get(&self, i: usize) -> Option<&'a NameComponent> {
        self.comps.get(i)
    }

    /// A shorter view of the first `n` components (clamped).
    pub fn prefix(&self, n: usize) -> NameSlice<'a> {
        NameSlice {
            comps: &self.comps[..n.min(self.comps.len())],
        }
    }

    /// True if this view is a prefix of `other`.
    pub fn is_prefix_of(&self, other: NameSlice<'_>) -> bool {
        self.comps.len() <= other.comps.len() && self.comps == &other.comps[..self.comps.len()]
    }

    /// True if this view is a prefix of `other`.
    pub fn is_prefix_of_name(&self, other: &Name) -> bool {
        self.is_prefix_of(other.as_slice())
    }

    /// Materialize an owned [`Name`] (copies component handles only).
    pub fn to_name(&self) -> Name {
        Name::from_components(self.comps.to_vec())
    }

    /// URI form.
    pub fn to_uri(&self) -> String {
        self.to_name().to_uri()
    }
}

impl fmt::Debug for NameSlice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.comps.is_empty() {
            return f.write_str("/");
        }
        for c in self.comps {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl<'a> From<&'a Name> for NameSlice<'a> {
    fn from(n: &'a Name) -> NameSlice<'a> {
        n.as_slice()
    }
}

/// Convenience: `name!("/ndn/k8s/compute")` parses at use-site (panics on
/// malformed literals, which is appropriate for compile-time-known names).
#[macro_export]
macro_rules! name {
    ($uri:expr) => {
        $crate::name::Name::parse($uri).expect("malformed name literal")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        for uri in [
            "/",
            "/ndn",
            "/ndn/k8s/compute",
            "/ndn/k8s/compute/mem=4&cpu=6&app=BLAST",
            "/ndn/k8s/data/rice-rna/seg=12",
            "/a/v=7/seg=0",
            "/deep/a/b/c/d/e/f/g/h",
        ] {
            let n = Name::parse(uri).unwrap();
            assert_eq!(n.to_uri(), uri, "round trip {uri}");
        }
    }

    #[test]
    fn paper_compute_name_components() {
        let n = name!("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST");
        assert_eq!(n.len(), 4);
        assert_eq!(n.get(0).unwrap().as_str(), Some("ndn"));
        assert_eq!(n.get(3).unwrap().as_str(), Some("mem=4&cpu=6&app=BLAST"));
    }

    #[test]
    fn escapes_round_trip() {
        let n = Name::root().child(NameComponent::generic(&b"a b/c"[..]));
        let uri = n.to_uri();
        assert_eq!(uri, "/a%20b%2Fc");
        assert_eq!(Name::parse(&uri).unwrap(), n);
    }

    #[test]
    fn binary_component_round_trip() {
        let n = Name::root().child(NameComponent::generic(vec![0u8, 1, 254, 255]));
        let parsed = Name::parse(&n.to_uri()).unwrap();
        assert_eq!(parsed, n);
    }

    #[test]
    fn long_values_round_trip() {
        // Values beyond INLINE_VALUE_CAP take the shared-bytes path.
        let long = "x".repeat(INLINE_VALUE_CAP * 3);
        let n = Name::root().child_str(&long).child_str("short");
        let parsed = Name::parse(&n.to_uri()).unwrap();
        assert_eq!(parsed, n);
        assert_eq!(parsed.get(0).unwrap().as_str(), Some(long.as_str()));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(Name::parse("relative"), Err(NameParseError::NotAbsolute));
        assert_eq!(Name::parse("/a//b"), Err(NameParseError::EmptyComponent));
        assert_eq!(Name::parse("/a/"), Err(NameParseError::EmptyComponent));
        assert_eq!(Name::parse("/seg=abc"), Err(NameParseError::BadNumber));
        assert_eq!(Name::parse("/a/%4"), Err(NameParseError::BadEscape));
        assert_eq!(Name::parse("/a/%zz"), Err(NameParseError::BadEscape));
        assert_eq!(Name::parse("/sha256digest=1234"), Err(NameParseError::BadDigest));
    }

    #[test]
    fn ndn_scheme_prefix_accepted() {
        assert_eq!(Name::parse("ndn:/a/b").unwrap(), name!("/a/b"));
    }

    #[test]
    fn prefix_relations() {
        let root = Name::root();
        let a = name!("/a");
        let ab = name!("/a/b");
        let ac = name!("/a/c");
        assert!(root.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&ab));
        assert!(ab.is_prefix_of(&ab));
        assert!(!ab.is_prefix_of(&a));
        assert!(!ac.is_prefix_of(&ab));
    }

    #[test]
    fn prefix_parent_join() {
        let n = name!("/a/b/c");
        assert_eq!(n.prefix(2), name!("/a/b"));
        assert_eq!(n.prefix(10), n);
        assert_eq!(n.prefix(256), n, "clamp survives u8-wrapping counts");
        assert_eq!(n.prefix(usize::MAX), n);
        assert_eq!(n.parent(), name!("/a/b"));
        assert_eq!(Name::root().parent(), Name::root());
        assert_eq!(name!("/a").join(&name!("/b/c")), name!("/a/b/c"));
    }

    #[test]
    fn canonical_order_shorter_first() {
        let a = name!("/a");
        let ab = name!("/a/b");
        let b = name!("/b");
        assert!(a < ab, "prefix sorts before extension");
        assert!(ab < b, "first differing component decides");
        // Shorter component value sorts first at equal type.
        let short = Name::root().child(NameComponent::generic(&b"z"[..]));
        let long = Name::root().child(NameComponent::generic(&b"aa"[..]));
        assert!(short < long, "1-byte component < 2-byte component");
    }

    #[test]
    fn typed_components() {
        let seg = NameComponent::segment(300);
        assert_eq!(seg.typ(), TT_SEGMENT);
        assert_eq!(seg.as_number(), Some(300));
        assert_eq!(seg.to_string(), "seg=300");
        let v = NameComponent::version(0);
        assert_eq!(v.as_number(), Some(0));
        assert_eq!(v.value(), &[0u8]);
        let digest = NameComponent::implicit_digest([0xAB; 32]);
        assert!(digest.to_string().starts_with("sha256digest=abab"));
        let parsed = Name::parse(&Name::root().child(digest.clone()).to_uri()).unwrap();
        assert_eq!(parsed.get(0).unwrap(), &digest);
    }

    #[test]
    fn all_period_component_escaping() {
        let n = Name::root().child(NameComponent::generic(&b".."[..]));
        let uri = n.to_uri();
        assert_eq!(uri, "/.....");
        assert_eq!(Name::parse(&uri).unwrap(), n);
    }

    #[test]
    fn as_number_rejects_wide_values() {
        let c = NameComponent::typed(TT_SEGMENT, Bytes::copy_from_slice(&[1u8; 9]));
        assert_eq!(c.as_number(), None);
    }

    // --- small/shared representation invariants ---------------------------

    #[test]
    fn prefix_shares_table_and_hides_tail() {
        for uri in ["/a/b/c/d", "/a/b/c/d/e/f"] {
            let n = Name::parse(uri).unwrap();
            let p = n.prefix(2);
            assert_eq!(p.len(), 2);
            assert_eq!(p.to_uri(), "/a/b");
            assert_eq!(p, name!("/a/b"));
            // Hidden components never leak through any observer.
            assert_eq!(p.components().len(), 2);
            assert!(p.get(2).is_none());
            assert_eq!(format!("{p}"), "/a/b");
        }
    }

    #[test]
    fn push_on_prefix_view_truncates_hidden_tail() {
        for uri in ["/a/b/c", "/a/b/c/d/e/f"] {
            let n = Name::parse(uri).unwrap();
            let mut p = n.prefix(1);
            p.push(NameComponent::from_str_generic("x"));
            assert_eq!(p, name!("/a/x"));
            // The original name is unaffected.
            assert_eq!(n, Name::parse(uri).unwrap());
        }
    }

    #[test]
    fn small_names_promote_to_shared_and_back_compare_equal() {
        let mut n = Name::root();
        for i in 0..SMALL_NAME_CAP + 3 {
            n.push(NameComponent::from_str_generic(&format!("c{i}")));
            let reparsed = Name::parse(&n.to_uri()).unwrap();
            assert_eq!(reparsed, n, "equal across representations at len {}", i + 1);
            assert_eq!(n.len(), i + 1);
        }
    }

    #[test]
    fn child_on_shared_name_does_not_disturb_siblings() {
        for base_uri in ["/a/b", "/a/b/c/d/e"] {
            let base = Name::parse(base_uri).unwrap();
            let c1 = base.clone().child_str("one");
            let c2 = base.clone().child_str("two");
            assert_eq!(c1, base.clone().child_str("one"));
            assert_eq!(c2.get(base.len()).unwrap().as_str(), Some("two"));
            assert_eq!(base, Name::parse(base_uri).unwrap());
        }
    }

    #[test]
    fn hash_eq_agree_between_name_and_component_slice() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let n = name!("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST/extra/tail");
        for k in 0..=n.len() {
            let owned = n.prefix(k);
            let borrowed: &[NameComponent] = &n.components()[..k];
            let mut h1 = DefaultHasher::new();
            let mut h2 = DefaultHasher::new();
            owned.hash(&mut h1);
            borrowed.hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "hash mismatch at k={k}");
            let owned_slice: &[NameComponent] = owned.borrow();
            assert_eq!(owned_slice, borrowed);
        }
    }

    #[test]
    fn borrowed_probe_finds_hashmap_entries() {
        use std::collections::HashMap;
        let mut map: HashMap<Name, u32> = HashMap::new();
        map.insert(name!("/a"), 1);
        map.insert(name!("/a/b"), 2);
        map.insert(name!("/a/b/c/d/e"), 5);
        let lookup = name!("/a/b/c/d/e/f");
        assert_eq!(map.get(&lookup.components()[..1]), Some(&1));
        assert_eq!(map.get(&lookup.components()[..2]), Some(&2));
        assert_eq!(map.get(&lookup.components()[..5]), Some(&5));
        assert_eq!(map.get(&lookup.components()[..3]), None);
    }

    #[test]
    fn name_slice_views() {
        let n = name!("/a/b/c");
        let s = n.as_slice();
        assert_eq!(s.len(), 3);
        assert!(s.prefix(1).is_prefix_of(s));
        assert!(s.prefix(2).is_prefix_of_name(&n));
        assert_eq!(s.prefix(2).to_name(), name!("/a/b"));
        assert_eq!(n.prefix_slice(2).components(), &n.components()[..2]);
        assert_eq!(format!("{:?}", s.prefix(0)), "/");
    }
}
