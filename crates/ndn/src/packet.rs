//! NDN packets: Interest, Data, and network NACK.
//!
//! Packets are plain structs inside the simulator (links move clones), but
//! every packet can be encoded to and decoded from the NDN v0.3 TLV wire
//! format. The link model charges transmission time by [`Interest::encoded_size`] /
//! [`Data::encoded_size`], and the benches exercise full encode/decode.

use bytes::{Bytes, BytesMut};

use crate::crypto::{hmac_sha256, sha256, DIGEST_LEN};
use crate::name::{Name, NameComponent};
use crate::tlv::{
    nonneg_tlv_size, parse_nonneg, put_nonneg_tlv, put_tlv, put_var_number, tlv_size, types,
    TlvError, TlvReader,
};
use lidc_simcore::time::SimDuration;

/// Default InterestLifetime when none is carried (NDN spec: 4 seconds).
pub const DEFAULT_INTEREST_LIFETIME: SimDuration = SimDuration::from_millis(4000);

/// An Interest packet: a request for named data (or, in LIDC, a semantic
/// compute request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interest {
    /// The requested name.
    pub name: Name,
    /// Whether a Data whose name this name merely prefixes may satisfy it.
    pub can_be_prefix: bool,
    /// Whether cached Data must still be fresh to satisfy it.
    pub must_be_fresh: bool,
    /// Loop-detection nonce.
    pub nonce: Option<u32>,
    /// How long forwarders keep PIT state for this Interest.
    pub lifetime: SimDuration,
    /// Remaining hops; decremented per hop, dropped at zero.
    pub hop_limit: Option<u8>,
    /// Application parameters (LIDC encodes job specs here when they exceed
    /// what fits comfortably in the name).
    pub app_params: Option<Bytes>,
}

impl Interest {
    /// A plain Interest for `name` with spec defaults.
    pub fn new(name: Name) -> Self {
        Interest {
            name,
            can_be_prefix: false,
            must_be_fresh: false,
            nonce: None,
            lifetime: DEFAULT_INTEREST_LIFETIME,
            hop_limit: None,
            app_params: None,
        }
    }

    /// Builder: set CanBePrefix.
    pub fn can_be_prefix(mut self, v: bool) -> Self {
        self.can_be_prefix = v;
        self
    }

    /// Builder: set MustBeFresh.
    pub fn must_be_fresh(mut self, v: bool) -> Self {
        self.must_be_fresh = v;
        self
    }

    /// Builder: set the nonce.
    pub fn with_nonce(mut self, nonce: u32) -> Self {
        self.nonce = Some(nonce);
        self
    }

    /// Builder: set the lifetime.
    pub fn with_lifetime(mut self, lifetime: SimDuration) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Builder: set application parameters.
    pub fn with_app_params(mut self, params: impl Into<Bytes>) -> Self {
        self.app_params = Some(params.into());
        self
    }

    /// Encoded length of this Interest's body (everything inside the outer
    /// INTEREST TLV), computed arithmetically — no buffers.
    fn body_len(&self) -> usize {
        let mut len = tlv_size(types::NAME, name_body_len(&self.name));
        if self.can_be_prefix {
            len += tlv_size(types::CAN_BE_PREFIX, 0);
        }
        if self.must_be_fresh {
            len += tlv_size(types::MUST_BE_FRESH, 0);
        }
        if self.nonce.is_some() {
            len += tlv_size(types::NONCE, 4);
        }
        if self.lifetime != DEFAULT_INTEREST_LIFETIME {
            len += nonneg_tlv_size(types::INTEREST_LIFETIME, self.lifetime.as_millis());
        }
        if self.hop_limit.is_some() {
            len += tlv_size(types::HOP_LIMIT, 1);
        }
        if let Some(params) = &self.app_params {
            len += tlv_size(types::APPLICATION_PARAMETERS, params.len());
        }
        len
    }

    /// Encode to wire format. The output buffer is pre-sized exactly from
    /// the TLV size arithmetic, so encoding performs a single allocation.
    pub fn encode(&self) -> Bytes {
        let body_len = self.body_len();
        let mut out = BytesMut::with_capacity(tlv_size(types::INTEREST, body_len));
        put_var_number(&mut out, types::INTEREST);
        put_var_number(&mut out, body_len as u64);
        put_name_tlv(&mut out, &self.name);
        if self.can_be_prefix {
            put_tlv(&mut out, types::CAN_BE_PREFIX, &[]);
        }
        if self.must_be_fresh {
            put_tlv(&mut out, types::MUST_BE_FRESH, &[]);
        }
        if let Some(nonce) = self.nonce {
            put_tlv(&mut out, types::NONCE, &nonce.to_be_bytes());
        }
        if self.lifetime != DEFAULT_INTEREST_LIFETIME {
            put_nonneg_tlv(&mut out, types::INTEREST_LIFETIME, self.lifetime.as_millis());
        }
        if let Some(h) = self.hop_limit {
            put_tlv(&mut out, types::HOP_LIMIT, &[h]);
        }
        if let Some(params) = &self.app_params {
            put_tlv(&mut out, types::APPLICATION_PARAMETERS, params);
        }
        out.freeze()
    }

    /// Wire size in bytes (used by the link bandwidth model). Pure
    /// arithmetic; does not encode.
    pub fn encoded_size(&self) -> usize {
        tlv_size(types::INTEREST, self.body_len())
    }

    /// Decode from wire format, zero-copy: long name component values and
    /// application parameters are refcounted views into `wire`, not copies
    /// (short values inline). The `Interest` is constructed once, at the
    /// end, from locals — no double-initialization.
    pub fn decode(wire: &Bytes) -> Result<Interest, TlvError> {
        let mut outer = TlvReader::new(wire);
        let body = outer.read_expected(types::INTEREST)?;
        let mut r = TlvReader::new(body);
        let name = decode_name_from(wire, r.read_expected(types::NAME)?)?;
        let mut can_be_prefix = false;
        let mut must_be_fresh = false;
        let mut nonce = None;
        let mut lifetime = DEFAULT_INTEREST_LIFETIME;
        let mut hop_limit = None;
        let mut app_params = None;
        while !r.is_empty() {
            let (typ, value) = r.read_tlv()?;
            match typ {
                types::CAN_BE_PREFIX => can_be_prefix = true,
                types::MUST_BE_FRESH => must_be_fresh = true,
                types::NONCE => {
                    if value.len() != 4 {
                        return Err(TlvError::Malformed("nonce must be 4 bytes"));
                    }
                    nonce = Some(u32::from_be_bytes([value[0], value[1], value[2], value[3]]));
                }
                types::INTEREST_LIFETIME => {
                    lifetime = SimDuration::from_millis(parse_nonneg(value)?);
                }
                types::HOP_LIMIT => {
                    if value.len() != 1 {
                        return Err(TlvError::Malformed("hop limit must be 1 byte"));
                    }
                    hop_limit = Some(value[0]);
                }
                types::APPLICATION_PARAMETERS => {
                    app_params = Some(wire.slice_ref(value));
                }
                _ => { /* ignore unrecognised elements (forward compatibility) */ }
            }
        }
        Ok(Interest {
            name,
            can_be_prefix,
            must_be_fresh,
            nonce,
            lifetime,
            hop_limit,
            app_params,
        })
    }
}

/// ContentType of a Data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentType {
    /// Ordinary payload.
    #[default]
    Blob,
    /// A link/delegation object.
    Link,
    /// A public key.
    Key,
    /// An application-level negative acknowledgement (e.g. "no such job").
    Nack,
}

impl ContentType {
    fn code(self) -> u64 {
        match self {
            ContentType::Blob => 0,
            ContentType::Link => 1,
            ContentType::Key => 2,
            ContentType::Nack => 3,
        }
    }

    fn from_code(code: u64) -> ContentType {
        match code {
            1 => ContentType::Link,
            2 => ContentType::Key,
            3 => ContentType::Nack,
            _ => ContentType::Blob,
        }
    }
}

/// Signature flavour carried in SignatureInfo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignatureType {
    /// SHA-256 digest of the signed portion (integrity only).
    #[default]
    DigestSha256,
    /// HMAC-SHA256 with a shared key identified by the KeyLocator.
    HmacWithSha256,
}

impl SignatureType {
    fn code(self) -> u64 {
        match self {
            SignatureType::DigestSha256 => 0,
            SignatureType::HmacWithSha256 => 4,
        }
    }
}

/// A Data packet signature.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Signature {
    /// Flavour.
    pub typ: SignatureType,
    /// Key name for HMAC signatures. Boxed: key locators are rare, and
    /// boxing keeps `Data` (which embeds two otherwise-inline `Name`s)
    /// cheap to move and clone.
    pub key_locator: Option<Box<Name>>,
    /// Signature bytes.
    pub value: Bytes,
}

/// A Data packet: named, signed content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Data {
    /// The full data name (may extend the Interest name).
    pub name: Name,
    /// Payload semantics.
    pub content_type: ContentType,
    /// How long caches may serve this object as "fresh".
    pub freshness: Option<SimDuration>,
    /// Name component of the last segment in a segmented object.
    pub final_block_id: Option<NameComponent>,
    /// Payload.
    pub content: Bytes,
    /// Signature over the signed portion.
    pub signature: Signature,
}

impl Data {
    /// Unsigned Data with the given name and content; call [`Data::sign_digest`]
    /// or [`Data::sign_hmac`] (or send as-is, and the forwarder treats it as
    /// digest-signed on encode).
    pub fn new(name: Name, content: impl Into<Bytes>) -> Self {
        Data {
            name,
            content_type: ContentType::Blob,
            freshness: None,
            final_block_id: None,
            content: content.into(),
            signature: Signature::default(),
        }
    }

    /// Builder: content type.
    pub fn with_content_type(mut self, t: ContentType) -> Self {
        self.content_type = t;
        self
    }

    /// Builder: freshness period.
    pub fn with_freshness(mut self, f: SimDuration) -> Self {
        self.freshness = Some(f);
        self
    }

    /// Builder: final block id.
    pub fn with_final_block_id(mut self, c: NameComponent) -> Self {
        self.final_block_id = Some(c);
        self
    }

    /// Encoded length of the MetaInfo body (0 when empty).
    fn meta_info_len(&self) -> usize {
        let mut len = 0;
        if self.content_type != ContentType::Blob {
            len += nonneg_tlv_size(types::CONTENT_TYPE, self.content_type.code());
        }
        if let Some(f) = self.freshness {
            len += nonneg_tlv_size(types::FRESHNESS_PERIOD, f.as_millis());
        }
        if let Some(fbi) = &self.final_block_id {
            len += tlv_size(
                types::FINAL_BLOCK_ID,
                tlv_size(u64::from(fbi.typ()), fbi.value().len()),
            );
        }
        len
    }

    fn put_meta_info(&self, out: &mut BytesMut) {
        if self.content_type != ContentType::Blob {
            put_nonneg_tlv(out, types::CONTENT_TYPE, self.content_type.code());
        }
        if let Some(f) = self.freshness {
            put_nonneg_tlv(out, types::FRESHNESS_PERIOD, f.as_millis());
        }
        if let Some(fbi) = &self.final_block_id {
            put_var_number(out, types::FINAL_BLOCK_ID);
            put_var_number(
                out,
                tlv_size(u64::from(fbi.typ()), fbi.value().len()) as u64,
            );
            put_tlv(out, u64::from(fbi.typ()), fbi.value());
        }
    }

    /// Encoded length of the SignatureInfo body.
    fn signature_info_len(&self) -> usize {
        let mut len = nonneg_tlv_size(types::SIGNATURE_TYPE, self.signature.typ.code());
        if let Some(kl) = &self.signature.key_locator {
            len += tlv_size(
                types::KEY_LOCATOR,
                tlv_size(types::NAME, name_body_len(kl)),
            );
        }
        len
    }

    fn put_signature_info(&self, out: &mut BytesMut) {
        put_nonneg_tlv(out, types::SIGNATURE_TYPE, self.signature.typ.code());
        if let Some(kl) = &self.signature.key_locator {
            put_var_number(out, types::KEY_LOCATOR);
            put_var_number(out, tlv_size(types::NAME, name_body_len(kl)) as u64);
            put_name_tlv(out, kl);
        }
    }

    /// Encoded length of the signed portion
    /// (Name .. SignatureInfo, exclusive of SignatureValue).
    fn signed_portion_len(&self) -> usize {
        let mut len = tlv_size(types::NAME, name_body_len(&self.name));
        let meta_len = self.meta_info_len();
        if meta_len > 0 {
            len += tlv_size(types::META_INFO, meta_len);
        }
        len += tlv_size(types::CONTENT, self.content.len());
        len + tlv_size(types::SIGNATURE_INFO, self.signature_info_len())
    }

    fn put_signed_portion(&self, out: &mut BytesMut) {
        put_name_tlv(out, &self.name);
        let meta_len = self.meta_info_len();
        if meta_len > 0 {
            put_var_number(out, types::META_INFO);
            put_var_number(out, meta_len as u64);
            self.put_meta_info(out);
        }
        put_tlv(out, types::CONTENT, &self.content);
        put_var_number(out, types::SIGNATURE_INFO);
        put_var_number(out, self.signature_info_len() as u64);
        self.put_signature_info(out);
    }

    fn signed_portion(&self) -> Bytes {
        // Per spec: Name .. SignatureInfo (exclusive of SignatureValue).
        let mut body = BytesMut::with_capacity(self.signed_portion_len());
        self.put_signed_portion(&mut body);
        body.freeze()
    }

    /// Sign with `DigestSha256` (integrity only).
    pub fn sign_digest(mut self) -> Self {
        self.signature = Signature {
            typ: SignatureType::DigestSha256,
            key_locator: None,
            value: Bytes::new(),
        };
        let digest = sha256(&self.signed_portion());
        self.signature.value = Bytes::copy_from_slice(&digest);
        self
    }

    /// Sign with HMAC-SHA256 under `key`, naming the key `key_name`.
    pub fn sign_hmac(mut self, key_name: Name, key: &[u8]) -> Self {
        self.signature = Signature {
            typ: SignatureType::HmacWithSha256,
            key_locator: Some(Box::new(key_name)),
            value: Bytes::new(),
        };
        let mac = hmac_sha256(key, &self.signed_portion());
        self.signature.value = Bytes::copy_from_slice(&mac);
        self
    }

    /// True when this packet carries a signature value. Unsigned Data
    /// (fresh from [`Data::new`]) never verifies, so the data plane treats
    /// it like a verification failure rather than a special case.
    pub fn is_signed(&self) -> bool {
        !self.signature.value.is_empty()
    }

    /// Deterministically flip one bit of the packet, chosen by `index`
    /// modulo the flippable bit count (content bytes first, then signature
    /// bytes). Models in-flight corruption honestly: the damaged packet
    /// keeps travelling and [`Data::verify`] catches it at the next verify
    /// point. Returns `false` (packet untouched) when there is nothing to
    /// flip — an unsigned, empty-content Data.
    pub fn flip_bit(&mut self, index: u64) -> bool {
        let content_bits = self.content.len() as u64 * 8;
        let total_bits = content_bits + self.signature.value.len() as u64 * 8;
        if total_bits == 0 {
            return false;
        }
        let bit = index % total_bits;
        let flip = |bytes: &Bytes, bit: u64| {
            let mut buf = bytes.to_vec();
            buf[(bit / 8) as usize] ^= 1 << (bit % 8);
            Bytes::from(buf)
        };
        if bit < content_bits {
            self.content = flip(&self.content, bit);
        } else {
            self.signature.value = flip(&self.signature.value, bit - content_bits);
        }
        true
    }

    /// Verify the signature: digest recomputation, or HMAC under `key`
    /// (required iff the flavour is HMAC).
    pub fn verify(&self, key: Option<&[u8]>) -> bool {
        match self.signature.typ {
            SignatureType::DigestSha256 => {
                let digest = sha256(&self.signed_portion());
                self.signature.value.as_ref() == digest
            }
            SignatureType::HmacWithSha256 => match key {
                Some(key) => {
                    let mac = hmac_sha256(key, &self.signed_portion());
                    self.signature.value.as_ref() == mac
                }
                None => false,
            },
        }
    }

    /// Encode to wire format. Unsigned packets are digest-signed on the fly
    /// so the wire is always well-formed. The output buffer is pre-sized
    /// exactly from the TLV size arithmetic: one allocation.
    pub fn encode(&self) -> Bytes {
        if self.signature.value.is_empty() {
            return self.clone().sign_digest().encode();
        }
        let body_len =
            self.signed_portion_len() + tlv_size(types::SIGNATURE_VALUE, self.signature.value.len());
        let mut out = BytesMut::with_capacity(tlv_size(types::DATA, body_len));
        put_var_number(&mut out, types::DATA);
        put_var_number(&mut out, body_len as u64);
        self.put_signed_portion(&mut out);
        put_tlv(&mut out, types::SIGNATURE_VALUE, &self.signature.value);
        out.freeze()
    }

    /// Wire size in bytes. Pure arithmetic; does not encode or hash (an
    /// unsigned packet is accounted exactly as `encode()` will emit it:
    /// digest-signed, which replaces the whole signature — type and key
    /// locator included).
    pub fn encoded_size(&self) -> usize {
        let body_len = if self.signature.value.is_empty() {
            // Mirror the sign_digest() path: DigestSha256, no key locator.
            let mut signed = tlv_size(types::NAME, name_body_len(&self.name));
            let meta_len = self.meta_info_len();
            if meta_len > 0 {
                signed += tlv_size(types::META_INFO, meta_len);
            }
            signed += tlv_size(types::CONTENT, self.content.len());
            signed += tlv_size(
                types::SIGNATURE_INFO,
                nonneg_tlv_size(types::SIGNATURE_TYPE, SignatureType::DigestSha256.code()),
            );
            signed + tlv_size(types::SIGNATURE_VALUE, DIGEST_LEN)
        } else {
            self.signed_portion_len() + tlv_size(types::SIGNATURE_VALUE, self.signature.value.len())
        };
        tlv_size(types::DATA, body_len)
    }

    /// The implicit SHA-256 digest of the whole encoded packet.
    pub fn implicit_digest(&self) -> [u8; DIGEST_LEN] {
        sha256(&self.encode())
    }

    /// The full name: name + implicit digest component.
    pub fn full_name(&self) -> Name {
        self.name
            .clone()
            .child(NameComponent::implicit_digest(self.implicit_digest()))
    }

    /// Decode from wire format, zero-copy: the content, signature value,
    /// and every name component are refcounted views into `wire`.
    pub fn decode(wire: &Bytes) -> Result<Data, TlvError> {
        let mut outer = TlvReader::new(wire);
        let body = outer.read_expected(types::DATA)?;
        let mut r = TlvReader::new(body);
        let name = decode_name_from(wire, r.read_expected(types::NAME)?)?;
        let mut data = Data::new(name, Bytes::new());
        if let Some(meta) = r.read_optional(types::META_INFO)? {
            let mut m = TlvReader::new(meta);
            while !m.is_empty() {
                let (typ, value) = m.read_tlv()?;
                match typ {
                    types::CONTENT_TYPE => {
                        data.content_type = ContentType::from_code(parse_nonneg(value)?);
                    }
                    types::FRESHNESS_PERIOD => {
                        data.freshness = Some(SimDuration::from_millis(parse_nonneg(value)?));
                    }
                    types::FINAL_BLOCK_ID => {
                        let mut c = TlvReader::new(value);
                        data.final_block_id = Some(decode_component_from(wire, &mut c)?);
                    }
                    _ => {}
                }
            }
        }
        if let Some(content) = r.read_optional(types::CONTENT)? {
            data.content = wire.slice_ref(content);
        }
        let sig_info = r.read_expected(types::SIGNATURE_INFO)?;
        let mut si = TlvReader::new(sig_info);
        let sig_type = parse_nonneg(si.read_expected(types::SIGNATURE_TYPE)?)?;
        data.signature.typ = match sig_type {
            0 => SignatureType::DigestSha256,
            4 => SignatureType::HmacWithSha256,
            _ => return Err(TlvError::Malformed("unsupported signature type")),
        };
        if let Some(kl) = si.read_optional(types::KEY_LOCATOR)? {
            let mut klr = TlvReader::new(kl);
            let name_body = klr.read_expected(types::NAME)?;
            data.signature.key_locator = Some(Box::new(decode_name_from(wire, name_body)?));
        }
        let sig_value = r.read_expected(types::SIGNATURE_VALUE)?;
        data.signature.value = wire.slice_ref(sig_value);
        Ok(data)
    }
}

/// Reason codes for network NACKs (NDNLPv2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// Downstream congestion.
    Congestion,
    /// Duplicate nonce detected (loop).
    Duplicate,
    /// No route in the FIB.
    NoRoute,
}

impl NackReason {
    /// NDNLPv2 numeric code.
    pub fn code(self) -> u64 {
        match self {
            NackReason::Congestion => 50,
            NackReason::Duplicate => 100,
            NackReason::NoRoute => 150,
        }
    }

    /// Decode a numeric code.
    pub fn from_code(code: u64) -> Option<NackReason> {
        match code {
            50 => Some(NackReason::Congestion),
            100 => Some(NackReason::Duplicate),
            150 => Some(NackReason::NoRoute),
            _ => None,
        }
    }
}

/// A network NACK: the rejected Interest plus a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nack {
    /// Why the Interest was rejected.
    pub reason: NackReason,
    /// The Interest being rejected.
    pub interest: Interest,
}

impl Nack {
    /// Construct a NACK for `interest`.
    pub fn new(reason: NackReason, interest: Interest) -> Self {
        Nack { reason, interest }
    }

    /// Wire size (LP header + reason + Interest).
    pub fn encoded_size(&self) -> usize {
        // NACK header (3) + reason TLV (3) + encapsulated Interest.
        6 + self.interest.encoded_size()
    }
}

/// Any NDN packet moving across a link.
// Variant sizes differ by design: packets move boxed through actor
// mailboxes, so the large `Data` variant is not copied around by value.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// An Interest.
    Interest(Interest),
    /// A Data.
    Data(Data),
    /// A network NACK.
    Nack(Nack),
}

impl Packet {
    /// Wire size in bytes for the link bandwidth model.
    pub fn encoded_size(&self) -> usize {
        match self {
            Packet::Interest(i) => i.encoded_size(),
            Packet::Data(d) => d.encoded_size(),
            Packet::Nack(n) => n.encoded_size(),
        }
    }

    /// The name this packet pertains to.
    pub fn name(&self) -> &Name {
        match self {
            Packet::Interest(i) => &i.name,
            Packet::Data(d) => &d.name,
            Packet::Nack(n) => &n.interest.name,
        }
    }
}

/// Encoded length of the body (component sequence) of a Name TLV.
pub fn name_body_len(name: &Name) -> usize {
    name.components()
        .iter()
        .map(|c| tlv_size(u64::from(c.typ()), c.value().len()))
        .sum()
}

/// Append the body (component sequence) of a Name TLV.
pub fn put_name_body(out: &mut BytesMut, name: &Name) {
    for c in name.components() {
        put_tlv(out, u64::from(c.typ()), c.value());
    }
}

/// Append a complete Name TLV (header + component sequence).
pub fn put_name_tlv(out: &mut BytesMut, name: &Name) {
    put_var_number(out, types::NAME);
    put_var_number(out, name_body_len(name) as u64);
    put_name_body(out, name);
}

/// Encode the body (component sequence) of a Name TLV into a fresh,
/// exactly-sized buffer.
pub fn encode_name_body(name: &Name) -> Bytes {
    let mut body = BytesMut::with_capacity(name_body_len(name));
    put_name_body(&mut body, name);
    body.freeze()
}

#[inline(always)]
fn decode_component_from(wire: &Bytes, r: &mut TlvReader<'_>) -> Result<NameComponent, TlvError> {
    let (typ, value) = r.read_tlv()?;
    let typ = u16::try_from(typ).map_err(|_| TlvError::Malformed("component type too large"))?;
    Ok(NameComponent::view_of(typ, wire, value))
}

/// Decode a Name TLV body (component sequence) found inside `wire`; long
/// component values are zero-copy views into `wire` (short ones inline).
/// `body` must be a sub-slice of `wire`. Allocation-free for names of up to
/// `SMALL_NAME_CAP` components.
pub fn decode_name_from(wire: &Bytes, body: &[u8]) -> Result<Name, TlvError> {
    Name::decode_body_from(wire, body)
}

/// Decode a standalone Name TLV body (component sequence).
pub fn decode_name(body: &Bytes) -> Result<Name, TlvError> {
    decode_name_from(body, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlv::encode_tlv;

    #[test]
    fn interest_round_trip_minimal() {
        let i = Interest::new(name!("/ndn/k8s/compute"));
        let wire = i.encode();
        let decoded = Interest::decode(&wire).unwrap();
        assert_eq!(decoded, i);
        assert_eq!(decoded.lifetime, DEFAULT_INTEREST_LIFETIME);
    }

    #[test]
    fn interest_round_trip_full() {
        let i = Interest::new(name!("/ndn/k8s/compute/mem=4&cpu=6&app=BLAST"))
            .can_be_prefix(true)
            .must_be_fresh(true)
            .with_nonce(0xDEADBEEF)
            .with_lifetime(SimDuration::from_millis(12_000))
            .with_app_params(&b"srr=SRR2931415"[..]);
        let mut i = i;
        i.hop_limit = Some(32);
        let decoded = Interest::decode(&i.encode()).unwrap();
        assert_eq!(decoded, i);
    }

    #[test]
    fn data_digest_sign_verify_round_trip() {
        let d = Data::new(name!("/ndn/k8s/data/rice/seg=0"), &b"ACGT"[..])
            .with_freshness(SimDuration::from_secs(10))
            .with_final_block_id(NameComponent::segment(41))
            .sign_digest();
        assert!(d.verify(None));
        let decoded = Data::decode(&d.encode()).unwrap();
        assert_eq!(decoded, d);
        assert!(decoded.verify(None));
    }

    #[test]
    fn data_hmac_sign_verify() {
        let key = b"shared-cluster-key";
        let d = Data::new(name!("/ndn/k8s/status/job-1"), &b"Completed"[..])
            .sign_hmac(name!("/keys/cluster-a"), key);
        assert!(d.verify(Some(key)));
        assert!(!d.verify(Some(b"wrong-key")));
        assert!(!d.verify(None), "HMAC without key fails closed");
        let decoded = Data::decode(&d.encode()).unwrap();
        assert_eq!(decoded.signature.key_locator, Some(Box::new(name!("/keys/cluster-a"))));
        assert!(decoded.verify(Some(key)));
    }

    #[test]
    fn tampered_content_fails_verification() {
        let d = Data::new(name!("/a"), &b"payload"[..]).sign_digest();
        let mut tampered = d.clone();
        tampered.content = Bytes::copy_from_slice(b"PAYLOAD");
        assert!(!tampered.verify(None));
    }

    #[test]
    fn flip_bit_breaks_verification_everywhere() {
        let d = Data::new(name!("/a"), &b"payload"[..]).sign_digest();
        let total_bits = (d.content.len() + d.signature.value.len()) as u64 * 8;
        for index in [0, 7, 55, total_bits - 1, total_bits, total_bits + 13] {
            let mut flipped = d.clone();
            assert!(flipped.flip_bit(index));
            assert!(!flipped.verify(None), "bit {index} flipped but still verifies");
            // Flipping the same bit again restores the packet exactly.
            assert!(flipped.flip_bit(index));
            assert_eq!(flipped, d);
        }
    }

    #[test]
    fn flip_bit_on_unflippable_packet_is_a_noop() {
        let mut empty = Data::new(name!("/a"), Bytes::new());
        assert!(!empty.is_signed());
        assert!(!empty.flip_bit(3));
        assert_eq!(empty, Data::new(name!("/a"), Bytes::new()));
        // Signed-empty still has signature bits to flip.
        let mut signed = Data::new(name!("/a"), Bytes::new()).sign_digest();
        assert!(signed.is_signed());
        assert!(signed.flip_bit(3));
        assert!(!signed.verify(None));
    }

    #[test]
    fn encoded_size_matches_encode_for_partial_signatures() {
        // A hand-built signature with an empty value is re-signed by
        // encode() (digest, no key locator); encoded_size must mirror that.
        let mut d = Data::new(name!("/a/b"), &b"payload"[..]);
        d.signature = Signature {
            typ: SignatureType::HmacWithSha256,
            key_locator: Some(Box::new(name!("/keys/k"))),
            value: Bytes::new(),
        };
        assert_eq!(d.encoded_size(), d.encode().len());
        // And the fully-signed forms stay exact too.
        let signed = Data::new(name!("/a/b"), &b"payload"[..])
            .with_freshness(SimDuration::from_secs(1))
            .sign_hmac(name!("/keys/k"), b"secret");
        assert_eq!(signed.encoded_size(), signed.encode().len());
    }

    #[test]
    fn unsigned_data_encodes_as_digest_signed() {
        let d = Data::new(name!("/a/b"), &b"x"[..]);
        let decoded = Data::decode(&d.encode()).unwrap();
        assert_eq!(decoded.signature.typ, SignatureType::DigestSha256);
        assert!(decoded.verify(None));
    }

    #[test]
    fn content_type_round_trip() {
        for ct in [
            ContentType::Blob,
            ContentType::Link,
            ContentType::Key,
            ContentType::Nack,
        ] {
            let d = Data::new(name!("/t"), Bytes::new())
                .with_content_type(ct)
                .sign_digest();
            assert_eq!(Data::decode(&d.encode()).unwrap().content_type, ct);
        }
    }

    #[test]
    fn full_name_carries_implicit_digest() {
        let d = Data::new(name!("/a"), &b"x"[..]).sign_digest();
        let full = d.full_name();
        assert_eq!(full.len(), 2);
        assert_eq!(full.get(1).unwrap().typ(), crate::name::TT_IMPLICIT_DIGEST);
        assert!(d.name.is_prefix_of(&full));
        // Deterministic: same packet, same digest.
        assert_eq!(d.full_name(), d.clone().full_name());
    }

    #[test]
    fn name_body_round_trip_typed_components() {
        let n = name!("/ndn/k8s/data/rice/v=3/seg=7");
        let body = encode_name_body(&n);
        assert_eq!(decode_name(&body).unwrap(), n);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Interest::decode(&Bytes::from_static(b"garbage")).is_err());
        assert!(Data::decode(&Interest::new(name!("/a")).encode()).is_err());
        // Bad nonce width.
        let mut body = BytesMut::new();
        put_tlv(&mut body, types::NAME, &encode_name_body(&name!("/a")));
        put_tlv(&mut body, types::NONCE, &[1, 2]);
        let wire = encode_tlv(types::INTEREST, &body);
        assert_eq!(
            Interest::decode(&wire),
            Err(TlvError::Malformed("nonce must be 4 bytes"))
        );
    }

    #[test]
    fn nack_codes() {
        for r in [NackReason::Congestion, NackReason::Duplicate, NackReason::NoRoute] {
            assert_eq!(NackReason::from_code(r.code()), Some(r));
        }
        assert_eq!(NackReason::from_code(7), None);
        let nack = Nack::new(NackReason::NoRoute, Interest::new(name!("/nowhere")));
        assert!(nack.encoded_size() > nack.interest.encoded_size());
    }

    #[test]
    fn packet_enum_size_and_name() {
        let i = Interest::new(name!("/x"));
        let d = Data::new(name!("/y"), &b"abc"[..]).sign_digest();
        assert_eq!(Packet::Interest(i.clone()).name(), &name!("/x"));
        assert_eq!(Packet::Data(d.clone()).name(), &name!("/y"));
        assert_eq!(Packet::Interest(i.clone()).encoded_size(), i.encoded_size());
        assert!(Packet::Data(d.clone()).encoded_size() > d.content.len());
    }

    #[test]
    fn unknown_elements_are_skipped() {
        // Append an unknown TLV inside an Interest; decode should ignore it.
        let i = Interest::new(name!("/a")).with_nonce(7);
        let wire = i.encode();
        let mut outer = TlvReader::new(&wire);
        let body = outer.read_expected(types::INTEREST).unwrap();
        let mut body = BytesMut::from(body);
        put_tlv(&mut body, 0xFD00, b"future-extension");
        let wire2 = encode_tlv(types::INTEREST, &body);
        let decoded = Interest::decode(&wire2).unwrap();
        assert_eq!(decoded.nonce, Some(7));
    }
}
