//! Topology wiring helpers.
//!
//! Links are symmetric: [`connect`] creates a face on each forwarder
//! pointing at the other, sharing the same [`LinkProps`]. Applications
//! attach through [`attach_app`], which creates the app's face on the
//! forwarder (the application addresses the forwarder with [`Rx`] messages
//! tagged with that face id, and receives [`crate::forwarder::AppRx`]).
//!
//! Links are **wire-batched**: a forwarder stages every outbound packet
//! during a handler invocation and flushes same-(link, arrival) groups as
//! single [`RxBatch`] scheduler events (see `forwarder.rs` module docs).
//! Burst injectors should use [`inject_batch`]/[`inject_burst`] so a whole
//! same-instant burst costs one event on the ingress side too.

use lidc_simcore::engine::{ActorId, Ctx, Sim};

use crate::face::{Face, FaceId, FaceIdAlloc, FaceKind, LinkProps};
use crate::forwarder::{AddFace, Forwarder, Rx, RxBatch};
use crate::packet::Packet;

/// Connect two forwarders with a symmetric link (pre-run, by direct state
/// access). Returns `(face on a, face on b)`.
///
/// When the endpoints live in different actor *groups* (horizon mode), the
/// link's base propagation delay is auto-declared as lookahead in both
/// directions: packets crossing the link always arrive at least `latency`
/// after the send, so the receiving group can safely run that far ahead.
/// Runtime degradation (`latency_factor` ≥ 1.0) only widens the gap; a
/// factor below 1.0 would violate the declaration and trips the engine's
/// causality assert.
///
/// # Panics
/// Panics if either actor is not a [`Forwarder`].
pub fn connect(
    sim: &mut Sim,
    a: ActorId,
    b: ActorId,
    alloc: &FaceIdAlloc,
    props: LinkProps,
) -> (FaceId, FaceId) {
    let (ga, gb) = (sim.actor_group(a), sim.actor_group(b));
    if ga != gb {
        let floor = props.latency.min(props.effective_latency());
        sim.set_lookahead(ga, gb, floor);
        sim.set_lookahead(gb, ga, floor);
    }
    let fa = alloc.alloc();
    let fb = alloc.alloc();
    sim.actor_mut::<Forwarder>(a)
        .expect("actor a is a Forwarder")
        .add_face(Face::new(
            fa,
            FaceKind::Link {
                peer: b,
                peer_face: fb,
                props,
            },
        ));
    sim.actor_mut::<Forwarder>(b)
        .expect("actor b is a Forwarder")
        .add_face(Face::new(
            fb,
            FaceKind::Link {
                peer: a,
                peer_face: fa,
                props,
            },
        ));
    (fa, fb)
}

/// Attach an application actor to a forwarder (pre-run). Returns the app's
/// face id on the forwarder.
///
/// # Panics
/// Panics if `fwd` is not a [`Forwarder`].
pub fn attach_app(sim: &mut Sim, fwd: ActorId, app: ActorId, alloc: &FaceIdAlloc) -> FaceId {
    let id = alloc.alloc();
    sim.actor_mut::<Forwarder>(fwd)
        .expect("fwd is a Forwarder")
        .add_face(Face::new(id, FaceKind::App { actor: app }));
    id
}

/// Connect two forwarders at runtime (from inside a handler), e.g. when a
/// new cluster joins the overlay. Faces are installed via [`AddFace`]
/// messages, so they become usable at the current instant plus one event.
pub fn connect_runtime(
    ctx: &mut Ctx<'_>,
    a: ActorId,
    b: ActorId,
    alloc: &FaceIdAlloc,
    props: LinkProps,
) -> (FaceId, FaceId) {
    let fa = alloc.alloc();
    let fb = alloc.alloc();
    ctx.send(a, AddFace {
        face: Face::new(
            fa,
            FaceKind::Link {
                peer: b,
                peer_face: fb,
                props,
            },
        ),
    });
    ctx.send(b, AddFace {
        face: Face::new(
            fb,
            FaceKind::Link {
                peer: a,
                peer_face: fa,
                props,
            },
        ),
    });
    (fa, fb)
}

/// Attach an application at runtime. Returns the new face id.
pub fn attach_app_runtime(
    ctx: &mut Ctx<'_>,
    fwd: ActorId,
    app: ActorId,
    alloc: &FaceIdAlloc,
) -> FaceId {
    let id = alloc.alloc();
    ctx.send(fwd, AddFace {
        face: Face::new(id, FaceKind::App { actor: app }),
    });
    id
}

/// Inject a packet into a forwarder as if it arrived on `face` (application
/// send path).
pub fn inject(ctx: &mut Ctx<'_>, fwd: ActorId, face: FaceId, packet: Packet) {
    ctx.send(fwd, Rx { face, packet });
}

/// Inject a same-instant burst of packets as one scheduler event (the
/// wire-batch ingress path). No-op for an empty burst.
pub fn inject_batch(ctx: &mut Ctx<'_>, fwd: ActorId, face: FaceId, packets: Vec<Packet>) {
    if packets.is_empty() {
        return;
    }
    ctx.send(fwd, RxBatch { face, packets });
}

/// [`inject_batch`] from outside a handler (harness/bench use).
pub fn inject_burst(sim: &mut Sim, fwd: ActorId, face: FaceId, packets: Vec<Packet>) {
    if packets.is_empty() {
        return;
    }
    sim.send(fwd, RxBatch { face, packets });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarder::ForwarderConfig;
    use lidc_simcore::time::SimDuration;

    #[test]
    fn connect_installs_symmetric_faces() {
        let mut sim = Sim::new(0);
        let alloc = FaceIdAlloc::new();
        let a = sim.spawn("a", Forwarder::new("a", ForwarderConfig::default()));
        let b = sim.spawn("b", Forwarder::new("b", ForwarderConfig::default()));
        let props = LinkProps::with_latency(SimDuration::from_millis(10));
        let (fa, fb) = connect(&mut sim, a, b, &alloc, props);
        let fwd_a = sim.actor::<Forwarder>(a).unwrap();
        let face_a = fwd_a.face(fa).unwrap();
        match &face_a.kind {
            FaceKind::Link {
                peer, peer_face, ..
            } => {
                assert_eq!(*peer, b);
                assert_eq!(*peer_face, fb);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let fwd_b = sim.actor::<Forwarder>(b).unwrap();
        assert!(fwd_b.face(fb).is_some());
        assert_ne!(fa, fb, "world-unique ids");
    }

    #[test]
    fn attach_app_creates_app_face() {
        use lidc_simcore::engine::{Actor, Ctx as ECtx, Msg};
        struct Nop;
        impl Actor for Nop {
            fn on_message(&mut self, _m: Msg, _c: &mut ECtx<'_>) {}
        }
        let mut sim = Sim::new(0);
        let alloc = FaceIdAlloc::new();
        let fwd = sim.spawn("fwd", Forwarder::new("fwd", ForwarderConfig::default()));
        let app = sim.spawn("app", Nop);
        let face = attach_app(&mut sim, fwd, app, &alloc);
        let f = sim.actor::<Forwarder>(fwd).unwrap().face(face).unwrap();
        assert!(f.is_app());
    }
}
