//! Forwarding strategies.
//!
//! The strategy decides *which* next hop(s) an Interest goes to once the FIB
//! has narrowed the candidates. This is the locus of LIDC's "the network
//! picks the nearest (or best) compute cluster" claim: with several clusters
//! advertising `/ndn/k8s/compute`, the strategy *is* the placement policy at
//! the network layer.
//!
//! Provided strategies:
//!
//! * [`BestRoute`] — lowest routing cost (the "nearest" cluster); on
//!   consumer retransmission it rotates to the next-best hop.
//! * [`Multicast`] — replicate to every next hop.
//! * [`RoundRobin`] — cycle through next hops per prefix (load balancing).
//! * [`RttEstimating`] — per-(prefix, face) smoothed-RTT ranking with
//!   optimistic probing of unmeasured faces (an ASF-like adaptive strategy;
//!   this is the "past performances" signal the paper describes).

use std::collections::HashMap;

use crate::face::FaceId;
use crate::name::Name;
use crate::packet::Interest;
use crate::tables::fib::NextHop;
use lidc_simcore::rng::DetRng;
use lidc_simcore::time::{SimDuration, SimTime};

/// Inputs to a strategy decision.
pub struct StrategyCtx<'a> {
    /// The Interest being forwarded.
    pub interest: &'a Interest,
    /// Eligible next hops (already filtered: face up, not the arrival face),
    /// sorted by ascending cost.
    pub nexthops: &'a [NextHop],
    /// The FIB prefix that matched (strategy state is typically per-prefix).
    pub prefix: &'a Name,
    /// Face the Interest arrived on.
    pub in_face: FaceId,
    /// True when this is a consumer retransmission of a pending Interest.
    pub is_retransmission: bool,
    /// Virtual now.
    pub now: SimTime,
    /// Deterministic randomness.
    pub rng: &'a mut DetRng,
}

/// A forwarding strategy. Implementations keep their own per-prefix state.
pub trait Strategy: Send + 'static {
    /// Human-readable strategy name (diagnostics).
    fn strategy_name(&self) -> &'static str;

    /// Choose the outgoing faces for an Interest. Empty means "no usable
    /// route" and the forwarder NACKs the requester.
    fn select(&mut self, ctx: &mut StrategyCtx<'_>) -> Vec<FaceId>;

    /// Feedback: Data returned on `face` for `prefix` with measured `rtt`.
    fn on_data(&mut self, _prefix: &Name, _face: FaceId, _rtt: SimDuration) {}

    /// Feedback: `face` failed for `prefix` (timeout or NACK).
    fn on_failure(&mut self, _prefix: &Name, _face: FaceId) {}
}

/// Lowest-cost forwarding with rotation on retransmission.
#[derive(Debug, Default)]
pub struct BestRoute {
    /// Per-prefix index of the last alternative tried on retransmission.
    retry_cursor: HashMap<Name, usize>,
}

impl BestRoute {
    /// New BestRoute strategy.
    pub fn new() -> Self {
        BestRoute::default()
    }
}

impl Strategy for BestRoute {
    fn strategy_name(&self) -> &'static str {
        "best-route"
    }

    fn select(&mut self, ctx: &mut StrategyCtx<'_>) -> Vec<FaceId> {
        if ctx.nexthops.is_empty() {
            return Vec::new();
        }
        if ctx.is_retransmission && ctx.nexthops.len() > 1 {
            // Rotate through alternatives so a broken best path is escaped.
            let cursor = self.retry_cursor.entry(ctx.prefix.clone()).or_insert(0);
            *cursor = (*cursor + 1) % ctx.nexthops.len();
            return vec![ctx.nexthops[*cursor].face];
        }
        vec![ctx.nexthops[0].face]
    }
}

/// Replicate Interests to every next hop.
#[derive(Debug, Default)]
pub struct Multicast;

impl Multicast {
    /// New Multicast strategy.
    pub fn new() -> Self {
        Multicast
    }
}

impl Strategy for Multicast {
    fn strategy_name(&self) -> &'static str {
        "multicast"
    }

    fn select(&mut self, ctx: &mut StrategyCtx<'_>) -> Vec<FaceId> {
        ctx.nexthops.iter().map(|nh| nh.face).collect()
    }
}

/// Cycle through next hops per prefix.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: HashMap<Name, usize>,
}

impl RoundRobin {
    /// New RoundRobin strategy.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Strategy for RoundRobin {
    fn strategy_name(&self) -> &'static str {
        "round-robin"
    }

    fn select(&mut self, ctx: &mut StrategyCtx<'_>) -> Vec<FaceId> {
        if ctx.nexthops.is_empty() {
            return Vec::new();
        }
        let cursor = self.cursor.entry(ctx.prefix.clone()).or_insert(0);
        let choice = ctx.nexthops[*cursor % ctx.nexthops.len()].face;
        *cursor = (*cursor + 1) % ctx.nexthops.len();
        vec![choice]
    }
}

/// Smoothed-RTT adaptive strategy (ASF-like).
#[derive(Debug)]
pub struct RttEstimating {
    /// EWMA smoothing factor for new RTT samples.
    alpha: f64,
    /// Probability of probing a non-best face to keep estimates warm.
    probe_probability: f64,
    /// (prefix, face) → smoothed RTT seconds; `None` entry = failed recently.
    srtt: HashMap<(Name, FaceId), f64>,
}

/// Penalty multiplier applied to a face's SRTT on failure.
const FAILURE_PENALTY: f64 = 4.0;
/// Optimistic initial estimate for unmeasured faces (seconds): low enough to
/// get probed, not so low that a measured fast face is abandoned.
const OPTIMISTIC_SRTT: f64 = 0.000_5;

impl Default for RttEstimating {
    fn default() -> Self {
        RttEstimating {
            alpha: 0.3,
            probe_probability: 0.05,
            srtt: HashMap::new(),
        }
    }
}

impl RttEstimating {
    /// New adaptive strategy with default parameters.
    pub fn new() -> Self {
        RttEstimating::default()
    }

    /// Override the probe probability (0 disables background probing).
    pub fn with_probe_probability(mut self, p: f64) -> Self {
        self.probe_probability = p.clamp(0.0, 1.0);
        self
    }

    /// The current estimate for a (prefix, face) pair, if measured.
    pub fn estimate(&self, prefix: &Name, face: FaceId) -> Option<f64> {
        self.srtt.get(&(prefix.clone(), face)).copied()
    }

    fn effective_srtt(&self, prefix: &Name, face: FaceId) -> f64 {
        self.srtt
            .get(&(prefix.clone(), face))
            .copied()
            .unwrap_or(OPTIMISTIC_SRTT)
    }
}

impl Strategy for RttEstimating {
    fn strategy_name(&self) -> &'static str {
        "rtt-estimating"
    }

    fn select(&mut self, ctx: &mut StrategyCtx<'_>) -> Vec<FaceId> {
        if ctx.nexthops.is_empty() {
            return Vec::new();
        }
        let best = ctx
            .nexthops
            .iter()
            .map(|nh| nh.face)
            .min_by(|a, b| {
                let ra = self.effective_srtt(ctx.prefix, *a);
                let rb = self.effective_srtt(ctx.prefix, *b);
                ra.partial_cmp(&rb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            })
            // lidc-lint: allow(panic-path) reason="the is_empty() early return above guarantees min_by runs on a nonempty iterator"
            .expect("nonempty");
        let mut out = vec![best];
        // Occasionally probe another face to refresh its estimate.
        if ctx.nexthops.len() > 1 && ctx.rng.next_bool(self.probe_probability) {
            let others: Vec<FaceId> = ctx
                .nexthops
                .iter()
                .map(|nh| nh.face)
                .filter(|f| *f != best)
                .collect();
            if let Some(probe) = ctx.rng.choose(&others) {
                out.push(*probe);
            }
        }
        out
    }

    fn on_data(&mut self, prefix: &Name, face: FaceId, rtt: SimDuration) {
        let sample = rtt.as_secs_f64();
        let key = (prefix.clone(), face);
        let srtt = self.srtt.entry(key).or_insert(sample);
        *srtt = (1.0 - self.alpha) * *srtt + self.alpha * sample;
    }

    fn on_failure(&mut self, prefix: &Name, face: FaceId) {
        let key = (prefix.clone(), face);
        let cur = self.effective_srtt(prefix, face);
        self.srtt.insert(key, cur * FAILURE_PENALTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64) -> FaceId {
        FaceId::from_raw(id)
    }

    fn hops(ids: &[(u64, u32)]) -> Vec<NextHop> {
        ids.iter()
            .map(|(id, cost)| NextHop {
                face: f(*id),
                cost: *cost,
            })
            .collect()
    }

    fn ctx<'a>(
        interest: &'a Interest,
        nexthops: &'a [NextHop],
        prefix: &'a Name,
        rng: &'a mut DetRng,
        retx: bool,
    ) -> StrategyCtx<'a> {
        StrategyCtx {
            interest,
            nexthops,
            prefix,
            in_face: f(99),
            is_retransmission: retx,
            now: SimTime::ZERO,
            rng,
        }
    }

    #[test]
    fn best_route_picks_lowest_cost() {
        let mut s = BestRoute::new();
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 5), (2, 10)]);
        let p = name!("/p");
        let mut rng = DetRng::new(0);
        assert_eq!(s.select(&mut ctx(&i, &nh, &p, &mut rng, false)), vec![f(1)]);
    }

    #[test]
    fn best_route_rotates_on_retransmission() {
        let mut s = BestRoute::new();
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 5), (2, 10), (3, 20)]);
        let p = name!("/p");
        let mut rng = DetRng::new(0);
        let first = s.select(&mut ctx(&i, &nh, &p, &mut rng, true));
        let second = s.select(&mut ctx(&i, &nh, &p, &mut rng, true));
        assert_ne!(first, second, "rotation advances");
        assert_ne!(first, vec![f(1)], "retransmission leaves the best path");
    }

    #[test]
    fn empty_nexthops_yield_empty_everywhere() {
        let i = Interest::new(name!("/p/x"));
        let p = name!("/p");
        let nh: Vec<NextHop> = vec![];
        let mut rng = DetRng::new(0);
        assert!(BestRoute::new().select(&mut ctx(&i, &nh, &p, &mut rng, false)).is_empty());
        assert!(Multicast::new().select(&mut ctx(&i, &nh, &p, &mut rng, false)).is_empty());
        assert!(RoundRobin::new().select(&mut ctx(&i, &nh, &p, &mut rng, false)).is_empty());
        assert!(RttEstimating::new().select(&mut ctx(&i, &nh, &p, &mut rng, false)).is_empty());
    }

    #[test]
    fn multicast_selects_all() {
        let mut s = Multicast::new();
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 5), (2, 10), (3, 1)]);
        let p = name!("/p");
        let mut rng = DetRng::new(0);
        let sel = s.select(&mut ctx(&i, &nh, &p, &mut rng, false));
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 1), (2, 1)]);
        let p = name!("/p");
        let mut rng = DetRng::new(0);
        let a = s.select(&mut ctx(&i, &nh, &p, &mut rng, false));
        let b = s.select(&mut ctx(&i, &nh, &p, &mut rng, false));
        let c = s.select(&mut ctx(&i, &nh, &p, &mut rng, false));
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn round_robin_state_is_per_prefix() {
        let mut s = RoundRobin::new();
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 1), (2, 1)]);
        let p1 = name!("/p1");
        let p2 = name!("/p2");
        let mut rng = DetRng::new(0);
        let a1 = s.select(&mut ctx(&i, &nh, &p1, &mut rng, false));
        let a2 = s.select(&mut ctx(&i, &nh, &p2, &mut rng, false));
        assert_eq!(a1, a2, "independent cursors start at the same hop");
    }

    #[test]
    fn rtt_estimating_prefers_measured_fast_face() {
        let mut s = RttEstimating::new().with_probe_probability(0.0);
        let p = name!("/p");
        s.on_data(&p, f(1), SimDuration::from_millis(80));
        s.on_data(&p, f(2), SimDuration::from_millis(10));
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 1), (2, 1)]);
        let mut rng = DetRng::new(0);
        assert_eq!(s.select(&mut ctx(&i, &nh, &p, &mut rng, false)), vec![f(2)]);
    }

    #[test]
    fn rtt_estimating_failure_penalty_moves_traffic() {
        let mut s = RttEstimating::new().with_probe_probability(0.0);
        let p = name!("/p");
        s.on_data(&p, f(1), SimDuration::from_millis(10));
        s.on_data(&p, f(2), SimDuration::from_millis(20));
        // f(1) is best until it fails twice.
        s.on_failure(&p, f(1));
        s.on_failure(&p, f(1));
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 1), (2, 1)]);
        let mut rng = DetRng::new(0);
        assert_eq!(s.select(&mut ctx(&i, &nh, &p, &mut rng, false)), vec![f(2)]);
        assert!(s.estimate(&p, f(1)).unwrap() > s.estimate(&p, f(2)).unwrap());
    }

    #[test]
    fn rtt_estimating_ewma_converges() {
        let mut s = RttEstimating::new();
        let p = name!("/p");
        for _ in 0..50 {
            s.on_data(&p, f(1), SimDuration::from_millis(100));
        }
        let est = s.estimate(&p, f(1)).unwrap();
        assert!((est - 0.1).abs() < 0.01, "converged to ~100ms, got {est}");
    }

    #[test]
    fn rtt_estimating_probes_eventually() {
        let mut s = RttEstimating::new().with_probe_probability(0.5);
        let p = name!("/p");
        s.on_data(&p, f(1), SimDuration::from_millis(1));
        let i = Interest::new(name!("/p/x"));
        let nh = hops(&[(1, 1), (2, 1)]);
        let mut rng = DetRng::new(42);
        let mut probed = false;
        for _ in 0..100 {
            let sel = s.select(&mut ctx(&i, &nh, &p, &mut rng, false));
            if sel.len() == 2 {
                probed = true;
                assert!(sel.contains(&f(2)));
            }
        }
        assert!(probed, "with p=0.5, 100 trials must include a probe");
    }
}
