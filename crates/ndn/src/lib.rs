//! # lidc-ndn — Named Data Networking substrate
//!
//! A from-scratch NDN implementation sufficient to reproduce the LIDC
//! paper's network layer (DESIGN.md §2: the NFD substitution):
//!
//! * [`name`] — hierarchical names with URI parse/print and canonical order.
//! * [`tlv`] — the NDN v0.3 Type-Length-Value wire encoding.
//! * [`packet`] — Interest / Data / NACK packets with signatures.
//! * [`crypto`] — SHA-256 and HMAC-SHA256 (no external crypto crates).
//! * [`tables`] — FIB (longest-prefix match), PIT (aggregation), CS (LRU
//!   cache with freshness).
//! * [`strategy`] — best-route, multicast, round-robin, and smoothed-RTT
//!   adaptive forwarding strategies.
//! * [`forwarder`] — the NFD-like forwarding daemon as a simulation actor.
//! * [`net`] — topology wiring (links with latency/bandwidth/loss).
//! * [`app`] — consumer (with retransmission) and producer helpers.
//!
//! ## A two-node example
//!
//! ```
//! use lidc_ndn::prelude::*;
//! use lidc_ndn::name;
//! use lidc_simcore::prelude::*;
//!
//! let mut sim = Sim::new(7);
//! let alloc = FaceIdAlloc::new();
//! let a = sim.spawn("fwd-a", Forwarder::new("a", ForwarderConfig::default()));
//! let b = sim.spawn("fwd-b", Forwarder::new("b", ForwarderConfig::default()));
//! let (fa, _fb) = lidc_ndn::net::connect(
//!     &mut sim, a, b, &alloc,
//!     LinkProps::with_latency(SimDuration::from_millis(5)),
//! );
//! // Route /data through the link from a's side.
//! sim.actor_mut::<Forwarder>(a).unwrap().register_prefix(name!("/data"), fa, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod crypto;
pub mod face;
pub mod forwarder;
pub mod fxhash;
#[macro_use]
pub mod name;
pub mod net;
pub mod packet;
pub mod strategy;
pub mod tables;
pub mod tlv;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::app::{Consumer, ConsumerEvent, Producer, RetxTimer};
    pub use crate::face::{Face, FaceId, FaceIdAlloc, FaceKind, LinkProps};
    pub use crate::forwarder::{
        AddFace, AppRx, DegradeLink, Forwarder, ForwarderConfig, RegisterPrefix, RemoveFace, Rx,
        SetFaceUp, SetStrategy, UnregisterPrefix,
    };
    pub use crate::name::{Name, NameComponent};
    pub use crate::packet::{
        ContentType, Data, Interest, Nack, NackReason, Packet, Signature, SignatureType,
    };
    pub use crate::strategy::{BestRoute, Multicast, RoundRobin, RttEstimating, Strategy};
    pub use crate::tables::cs::ContentStore;
    pub use crate::tables::fib::{Fib, NextHop};
    pub use crate::tables::pit::{Pit, PitKey};
}
