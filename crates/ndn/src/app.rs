//! Application-side helpers: consumers (with retransmission) and producers.
//!
//! These are embedded inside application actors (the LIDC client, gateway,
//! and data-lake file server all use them) rather than being actors
//! themselves: the owning actor routes its [`AppRx`] messages and
//! [`RetxTimer`] timers into the helper and reacts to the returned
//! [`ConsumerEvent`]s.

use std::collections::HashMap;

use lidc_simcore::engine::{ActorId, Ctx};

use crate::face::FaceId;
use crate::forwarder::{AppRx, Rx};
use crate::name::Name;
use crate::packet::{Data, Interest, Nack, NackReason, Packet};

/// What a consumer learns about an expressed Interest.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ConsumerEvent {
    /// Data arrived.
    Data(Data),
    /// The network rejected the Interest.
    Nack(NackReason, Interest),
    /// All retransmissions timed out.
    Timeout(Interest),
}

#[derive(Debug)]
struct PendingEntry {
    interest: Interest,
    retries_left: u32,
    /// Monotone id distinguishing reincarnations of the same name so stale
    /// timers are ignored.
    seq: u64,
}

/// Retransmission timer; the owning actor receives it as a message and must
/// pass it to [`Consumer::on_timer`].
#[derive(Debug, Clone)]
pub struct RetxTimer {
    /// Name of the pending Interest.
    pub name: Name,
    /// Reincarnation stamp.
    pub seq: u64,
}

/// Consumer-side Interest management with retransmission.
#[derive(Debug)]
pub struct Consumer {
    fwd: ActorId,
    face: FaceId,
    pending: HashMap<Name, PendingEntry>,
    next_seq: u64,
}

impl Consumer {
    /// A consumer speaking to forwarder `fwd` through app face `face`.
    pub fn new(fwd: ActorId, face: FaceId) -> Self {
        Consumer {
            fwd,
            face,
            pending: HashMap::new(),
            next_seq: 0,
        }
    }

    /// The app face this consumer sends through.
    pub fn face(&self) -> FaceId {
        self.face
    }

    /// Number of outstanding Interests.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Express `interest`, retrying up to `retries` times after each
    /// lifetime elapses without a response. A fresh nonce is drawn per
    /// transmission.
    pub fn express(&mut self, ctx: &mut Ctx<'_>, mut interest: Interest, retries: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        interest.nonce = Some(ctx.rng().next_u64() as u32);
        let name = interest.name.clone();
        let lifetime = interest.lifetime;
        self.pending.insert(name.clone(), PendingEntry {
            interest: interest.clone(),
            retries_left: retries,
            seq,
        });
        ctx.send(self.fwd, Rx {
            face: self.face,
            packet: Packet::Interest(interest),
        });
        ctx.schedule_self(lifetime, RetxTimer { name, seq });
    }

    /// Feed a received [`AppRx`]; returns an event if it resolves a pending
    /// Interest.
    pub fn on_app_rx(&mut self, rx: &AppRx) -> Option<ConsumerEvent> {
        match &rx.packet {
            Packet::Data(data) => {
                // Exact match first (O(1)); otherwise the *smallest*
                // matching prefix entry. `find` over the hash map would
                // pick whichever matching entry iteration order surfaced
                // first — an order-dependent choice when several pending
                // CanBePrefix Interests cover the same Data — so the
                // tie-break must be a total order on the names.
                let key = if self.pending.contains_key(&data.name) {
                    data.name.clone()
                } else {
                    self.pending
                        .iter()
                        .filter(|(name, e)| {
                            e.interest.can_be_prefix && name.is_prefix_of(&data.name)
                        })
                        .map(|(name, _)| name)
                        .min()?
                        .clone()
                };
                self.pending.remove(&key);
                Some(ConsumerEvent::Data(data.clone()))
            }
            Packet::Nack(nack) => {
                let entry = self.pending.remove(&nack.interest.name)?;
                Some(ConsumerEvent::Nack(nack.reason, entry.interest))
            }
            Packet::Interest(_) => None,
        }
    }

    /// Feed a [`RetxTimer`]; retransmits or reports expiry.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: &RetxTimer) -> Option<ConsumerEvent> {
        let entry = self.pending.get_mut(&timer.name)?;
        if entry.seq != timer.seq {
            return None; // stale timer from an earlier reincarnation
        }
        if entry.retries_left == 0 {
            // lidc-lint: allow(panic-path) reason="entry was just read from pending under the same timer.name, so remove cannot miss"
            let entry = self.pending.remove(&timer.name).expect("present");
            return Some(ConsumerEvent::Timeout(entry.interest));
        }
        entry.retries_left -= 1;
        let mut interest = entry.interest.clone();
        interest.nonce = Some(ctx.rng().next_u64() as u32);
        entry.interest = interest.clone();
        let lifetime = interest.lifetime;
        let seq = entry.seq;
        ctx.send(self.fwd, Rx {
            face: self.face,
            packet: Packet::Interest(interest),
        });
        ctx.schedule_self(lifetime, RetxTimer {
            name: timer.name.clone(),
            seq,
        });
        None
    }
}

/// Producer-side send path.
#[derive(Debug, Clone, Copy)]
pub struct Producer {
    fwd: ActorId,
    face: FaceId,
}

impl Producer {
    /// A producer speaking to forwarder `fwd` through app face `face`.
    pub fn new(fwd: ActorId, face: FaceId) -> Self {
        Producer { fwd, face }
    }

    /// The app face this producer serves through.
    pub fn face(&self) -> FaceId {
        self.face
    }

    /// Publish a Data packet in response to an Interest.
    pub fn reply(&self, ctx: &mut Ctx<'_>, data: Data) {
        ctx.send(self.fwd, Rx {
            face: self.face,
            packet: Packet::Data(data),
        });
    }

    /// Reject an Interest with a NACK.
    pub fn reject(&self, ctx: &mut Ctx<'_>, reason: NackReason, interest: Interest) {
        ctx.send(self.fwd, Rx {
            face: self.face,
            packet: Packet::Nack(Nack::new(reason, interest)),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name;
    use lidc_simcore::engine::{Actor, Msg, Sim};
    use lidc_simcore::time::SimDuration;

    /// Minimal harness: a consumer actor that records events.
    struct ConsumerActor {
        consumer: Option<Consumer>,
        events: Vec<String>,
    }

    struct Express(Interest, u32);

    impl Actor for ConsumerActor {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let msg = match msg.downcast::<Express>() {
                Ok(e) => {
                    self.consumer.as_mut().unwrap().express(ctx, e.0, e.1);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<AppRx>() {
                Ok(rx) => {
                    if let Some(ev) = self.consumer.as_mut().unwrap().on_app_rx(&rx) {
                        self.events.push(format!("{ev:?}"));
                    }
                    return;
                }
                Err(m) => m,
            };
            if let Ok(t) = msg.downcast::<RetxTimer>() {
                if let Some(ev) = self.consumer.as_mut().unwrap().on_timer(ctx, &t) {
                    self.events.push(format!("{ev:?}"));
                }
            }
        }
    }

    #[test]
    fn timeout_after_retries_exhausted() {
        use crate::face::FaceIdAlloc;
        use crate::forwarder::{Forwarder, ForwarderConfig};
        use crate::net::attach_app;

        let mut sim = Sim::new(1);
        let alloc = FaceIdAlloc::new();
        let fwd = sim.spawn("fwd", Forwarder::new("fwd", ForwarderConfig::default()));
        let app = sim.spawn("app", ConsumerActor {
            consumer: None,
            events: vec![],
        });
        let face = attach_app(&mut sim, fwd, app, &alloc);
        sim.actor_mut::<ConsumerActor>(app).unwrap().consumer = Some(Consumer::new(fwd, face));
        // No route exists: the forwarder NACKs immediately, but check the
        // timer path by sending to a forwarder-less consumer instead.
        // Here the NACK resolves the entry before any retransmission.
        let interest = Interest::new(name!("/nowhere"))
            .with_lifetime(SimDuration::from_millis(100));
        sim.send(app, Express(interest, 2));
        sim.run();
        let events = &sim.actor::<ConsumerActor>(app).unwrap().events;
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("Nack"), "got {events:?}");
        assert_eq!(sim.actor::<ConsumerActor>(app).unwrap().consumer.as_ref().unwrap().outstanding(), 0);
    }

    #[test]
    fn retransmission_then_timeout_when_unanswered() {
        // Consumer whose forwarder face leads nowhere useful: register a
        // route to a black-hole app that never replies.
        use crate::face::FaceIdAlloc;
        use crate::forwarder::{Forwarder, ForwarderConfig};
        use crate::net::attach_app;

        struct BlackHole;
        impl Actor for BlackHole {
            fn on_message(&mut self, _m: Msg, _c: &mut Ctx<'_>) {}
        }

        let mut sim = Sim::new(2);
        let alloc = FaceIdAlloc::new();
        let fwd = sim.spawn("fwd", Forwarder::new("fwd", ForwarderConfig::default()));
        let hole = sim.spawn("hole", BlackHole);
        let hole_face = attach_app(&mut sim, fwd, hole, &alloc);
        let app = sim.spawn("app", ConsumerActor {
            consumer: None,
            events: vec![],
        });
        let face = attach_app(&mut sim, fwd, app, &alloc);
        sim.actor_mut::<ConsumerActor>(app).unwrap().consumer = Some(Consumer::new(fwd, face));
        sim.actor_mut::<Forwarder>(fwd)
            .unwrap()
            .register_prefix(name!("/hole"), hole_face, 0);

        let interest = Interest::new(name!("/hole/x"))
            .with_lifetime(SimDuration::from_millis(50));
        sim.send(app, Express(interest, 3));
        sim.run();
        let events = &sim.actor::<ConsumerActor>(app).unwrap().events;
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("Timeout"), "got {events:?}");
        // 1 initial + 3 retransmissions reached the black hole's forwarder.
        assert_eq!(sim.metrics_ref().counter("ndn.rx_interests"), 4);
    }
}
