//! Faces: the forwarder's attachment points.
//!
//! A face is either a **link** to a peer forwarder (with latency, bandwidth
//! and loss — the WAN model) or an **application** face to a local producer
//! or consumer actor. Face ids are allocated by a [`FaceIdAlloc`] owned by
//! the testbed builder so ids stay unique across a whole simulated world
//! (and deterministic: the allocator is just a counter).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lidc_simcore::engine::ActorId;
use lidc_simcore::time::{SimDuration, SimTime};

/// Identifies a face. Unique within a simulated world.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaceId(u64);

impl FaceId {
    /// Construct from a raw id (tests and allocators).
    pub const fn from_raw(id: u64) -> Self {
        FaceId(id)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for FaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "face{}", self.0)
    }
}

impl fmt::Display for FaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "face{}", self.0)
    }
}

/// Allocates world-unique face ids. Cheap to clone; all clones share the
/// counter. Determinism holds because the simulation is single-threaded.
#[derive(Clone, Default)]
pub struct FaceIdAlloc {
    next: Arc<AtomicU64>,
}

impl FaceIdAlloc {
    /// New allocator starting at 1 (0 is reserved as "invalid" by
    /// convention, though nothing enforces it).
    pub fn new() -> Self {
        FaceIdAlloc {
            next: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Allocate the next id.
    pub fn alloc(&self) -> FaceId {
        FaceId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for FaceIdAlloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaceIdAlloc(next={})", self.next.load(Ordering::Relaxed))
    }
}

/// Properties of the link behind a link face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProps {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Link rate in bits/second; `None` means infinite (no serialisation
    /// delay).
    pub bandwidth_bps: Option<u64>,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Runtime degradation: multiplier on `latency` (1.0 = healthy). Fault
    /// injection flips this mid-run; [`LinkProps::effective_latency`] applies
    /// it.
    pub latency_factor: f64,
    /// Runtime degradation: loss probability *added* to `loss` (0.0 =
    /// healthy). Applied by [`LinkProps::effective_loss`].
    pub extra_loss: f64,
    /// Runtime degradation: per-packet corruption probability. What happens
    /// to a corrupted packet is the forwarder's
    /// [`CorruptionMode`](crate::forwarder::CorruptionMode): the default
    /// bit-flips Data in flight and lets signature verification catch the
    /// damage downstream; the legacy mode drops the packet *at the link*
    /// (an idealization that assumes a perfect checksum at every hop).
    pub corrupt: f64,
}

impl Default for LinkProps {
    fn default() -> Self {
        LinkProps {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: None,
            loss: 0.0,
            latency_factor: 1.0,
            extra_loss: 0.0,
            corrupt: 0.0,
        }
    }
}

impl LinkProps {
    /// A lossless link with the given latency and unlimited bandwidth.
    pub fn with_latency(latency: SimDuration) -> Self {
        LinkProps {
            latency,
            ..Default::default()
        }
    }

    /// Serialisation (transmission) delay for a packet of `bytes` bytes.
    pub fn transmit_time(&self, bytes: usize) -> SimDuration {
        match self.bandwidth_bps {
            None => SimDuration::ZERO,
            Some(bps) => {
                let secs = (bytes as f64 * 8.0) / bps as f64;
                SimDuration::from_secs_f64(secs)
            }
        }
    }

    /// Propagation delay with the runtime degradation factor applied.
    pub fn effective_latency(&self) -> SimDuration {
        if self.latency_factor == 1.0 {
            self.latency
        } else {
            self.latency.mul_f64(self.latency_factor.max(0.0))
        }
    }

    /// Loss probability with the runtime degradation added, clamped to
    /// `[0, 1]`.
    pub fn effective_loss(&self) -> f64 {
        (self.loss + self.extra_loss).clamp(0.0, 1.0)
    }

    /// Reset all runtime degradation (latency factor, extra loss,
    /// corruption) to healthy values. Base `latency`/`loss` are untouched.
    pub fn heal(&mut self) {
        self.latency_factor = 1.0;
        self.extra_loss = 0.0;
        self.corrupt = 0.0;
    }
}

/// What is on the other end of a face.
#[derive(Debug, Clone, PartialEq)]
pub enum FaceKind {
    /// A peer forwarder; packets delivered to `peer` arrive tagged with
    /// `peer_face` (the peer's view of this link).
    Link {
        /// The peer forwarder actor.
        peer: ActorId,
        /// The face id the peer assigned to this link.
        peer_face: FaceId,
        /// Link properties (symmetric by construction in the builder).
        props: LinkProps,
    },
    /// A local application (producer/consumer/gateway) actor.
    App {
        /// The application actor.
        actor: ActorId,
    },
}

/// Per-face packet counters (mirrors NFD's face counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaceCounters {
    /// Interests received on this face.
    pub in_interests: u64,
    /// Interests sent out this face.
    pub out_interests: u64,
    /// Data received on this face.
    pub in_data: u64,
    /// Data sent out this face.
    pub out_data: u64,
    /// Nacks received.
    pub in_nacks: u64,
    /// Nacks sent.
    pub out_nacks: u64,
    /// Packets dropped by the loss model when sending on this face.
    pub dropped: u64,
}

/// A face table entry.
#[derive(Debug, Clone)]
pub struct Face {
    /// This face's id.
    pub id: FaceId,
    /// What's attached.
    pub kind: FaceKind,
    /// Administrative and link state; a down face sends nothing.
    pub up: bool,
    /// Counters.
    pub counters: FaceCounters,
    /// The link is busy transmitting until this instant (FIFO queueing).
    pub busy_until: SimTime,
}

impl Face {
    /// Create an up face.
    pub fn new(id: FaceId, kind: FaceKind) -> Self {
        Face {
            id,
            kind,
            up: true,
            counters: FaceCounters::default(),
            busy_until: SimTime::ZERO,
        }
    }

    /// True if this is an application face.
    pub fn is_app(&self) -> bool {
        matches!(self.kind, FaceKind::App { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_sequential_and_shared() {
        let alloc = FaceIdAlloc::new();
        let clone = alloc.clone();
        assert_eq!(alloc.alloc(), FaceId::from_raw(1));
        assert_eq!(clone.alloc(), FaceId::from_raw(2));
        assert_eq!(alloc.alloc(), FaceId::from_raw(3));
    }

    #[test]
    fn transmit_time_zero_without_bandwidth() {
        let props = LinkProps::with_latency(SimDuration::from_millis(5));
        assert_eq!(props.transmit_time(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn transmit_time_scales_with_size() {
        let props = LinkProps {
            latency: SimDuration::ZERO,
            bandwidth_bps: Some(8_000_000), // 1 MB/s
            ..Default::default()
        };
        assert_eq!(props.transmit_time(1_000_000), SimDuration::from_secs(1));
        assert_eq!(props.transmit_time(500_000), SimDuration::from_millis(500));
        assert_eq!(props.transmit_time(0), SimDuration::ZERO);
    }

    #[test]
    fn face_kind_predicates() {
        use lidc_simcore::engine::ActorId;
        // ActorId has no public constructor besides Sim::spawn; fabricate via
        // a tiny sim.
        use lidc_simcore::engine::{Actor, Ctx, Msg, Sim};
        struct Nop;
        impl Actor for Nop {
            fn on_message(&mut self, _m: Msg, _c: &mut Ctx<'_>) {}
        }
        let mut sim = Sim::new(0);
        let a: ActorId = sim.spawn("nop", Nop);
        let app = Face::new(FaceId::from_raw(1), FaceKind::App { actor: a });
        assert!(app.is_app());
        let link = Face::new(
            FaceId::from_raw(2),
            FaceKind::Link {
                peer: a,
                peer_face: FaceId::from_raw(3),
                props: LinkProps::default(),
            },
        );
        assert!(!link.is_app());
        assert!(link.up);
    }
}
