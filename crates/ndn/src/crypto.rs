//! Minimal cryptographic primitives for NDN packet signatures.
//!
//! The allowed dependency set contains no crypto crate, so this module
//! implements SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104) from scratch.
//! They back the two NDN signature flavours this reproduction needs:
//! `DigestSha256` (integrity only) and `SignatureHmacWithSha256` (shared-key
//! authenticity), plus implicit digest name components.
//!
//! The implementation is tested against the FIPS / RFC 4231 test vectors.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// New hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finish and return the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Manual absorb of the length to avoid double-counting total_len.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            // lidc-lint: allow(panic-path) reason="chunks_exact(4) over the 64-byte block yields 16 chunks, within w's fixed 64 entries"
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            // lidc-lint: allow(panic-path) reason="the loop bounds i to 16..64 inside the fixed 64-entry schedule array"
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                // lidc-lint: allow(panic-path) reason="i < 64 from the compression loop, within K's fixed 64 entries"
                .wrapping_add(K[i])
                // lidc-lint: allow(panic-path) reason="i < 64 from the compression loop, within w's fixed 64 entries"
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Hex-encode a digest (for diagnostics and digest name components).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVS vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        // Feed in irregular chunk sizes crossing block boundaries.
        let mut h = Sha256::new();
        let mut pos = 0;
        for (i, step) in [1usize, 63, 64, 65, 127, 500, 9180].iter().enumerate() {
            let end = (pos + step).min(data.len());
            h.update(&data[pos..end]);
            pos = end;
            let _ = i;
        }
        h.update(&data[pos..]);
        assert_eq!(h.finalize(), sha256(&data));
    }

    // RFC 4231 test cases 1, 2, and 7 (oversized key).
    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0b; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_rfc4231_case7_long_key() {
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let out = hmac_sha256(&key, msg);
        assert_eq!(
            to_hex(&out),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn hmac_differs_per_key() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
    }
}
