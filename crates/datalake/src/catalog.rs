//! The dataset catalog: a named index of what the lake holds.
//!
//! Published as an ordinary object at `<lake-prefix>/_catalog`, so clients
//! discover datasets with a plain data Interest — names all the way down.

use crate::content::Content;
use crate::repo::Repo;
use lidc_ndn::name::Name;

/// One catalogued dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Object name in the lake.
    pub name: Name,
    /// Size in bytes.
    pub size: u64,
    /// Human description (genome type, sample id, …).
    pub description: String,
}

/// The catalog.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    /// Entries in insertion order.
    pub entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add an entry.
    pub fn add(&mut self, name: Name, size: u64, description: impl Into<String>) {
        self.entries.push(CatalogEntry {
            name,
            size,
            description: description.into(),
        });
    }

    /// Total bytes catalogued.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Find an entry by name.
    pub fn find(&self, name: &Name) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| &e.name == name)
    }

    /// Serialise to the line-oriented wire form (`<uri>\t<size>\t<desc>`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("{}\t{}\t{}\n", e.name.to_uri(), e.size, e.description));
        }
        out
    }

    /// Parse the wire form back.
    pub fn from_text(text: &str) -> Option<Catalog> {
        let mut catalog = Catalog::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let name = Name::parse(parts.next()?).ok()?;
            let size = parts.next()?.parse().ok()?;
            let description = parts.next().unwrap_or("").to_owned();
            catalog.entries.push(CatalogEntry {
                name,
                size,
                description,
            });
        }
        Some(catalog)
    }

    /// The catalog's object name under a lake prefix.
    pub fn object_name(lake_prefix: &Name) -> Name {
        lake_prefix.clone().child_str("_catalog")
    }

    /// Publish into a repo at `<lake_prefix>/_catalog`.
    pub fn publish(&self, repo: &dyn Repo, lake_prefix: &Name) {
        repo.put(
            &Self::object_name(lake_prefix),
            Content::bytes(self.to_text().into_bytes()),
        );
    }

    /// Load from a repo.
    pub fn load(repo: &dyn Repo, lake_prefix: &Name) -> Option<Catalog> {
        let content = repo.get(&Self::object_name(lake_prefix))?;
        let bytes = content.slice(0, content.len() as usize);
        Catalog::from_text(std::str::from_utf8(&bytes).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::MemRepo;
    use lidc_ndn::name;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.add(name!("/ndn/k8s/data/ref/human"), 3_200_000_000, "human reference DB");
        c.add(name!("/ndn/k8s/data/sra/SRR2931415"), 2_000_000_000, "rice RNA sample");
        c
    }

    #[test]
    fn text_round_trip() {
        let c = sample();
        let parsed = Catalog::from_text(&c.to_text()).unwrap();
        assert_eq!(parsed, c);
        assert_eq!(parsed.total_bytes(), 5_200_000_000);
    }

    #[test]
    fn publish_and_load() {
        let repo = MemRepo::new();
        let prefix = name!("/ndn/k8s/data");
        sample().publish(&repo, &prefix);
        assert!(repo.contains(&name!("/ndn/k8s/data/_catalog")));
        let loaded = Catalog::load(&repo, &prefix).unwrap();
        assert_eq!(loaded, sample());
        assert!(loaded.find(&name!("/ndn/k8s/data/ref/human")).is_some());
        assert!(loaded.find(&name!("/ndn/k8s/data/ghost")).is_none());
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert_eq!(Catalog::from_text("relative-name\t5\tx"), None);
        assert_eq!(Catalog::from_text("/ok\tnot-a-number\tx"), None);
        // Empty text is an empty catalog.
        assert_eq!(Catalog::from_text("").unwrap().entries.len(), 0);
    }

    #[test]
    fn descriptions_with_tabs_preserved_in_tail() {
        let mut c = Catalog::new();
        c.add(name!("/a"), 1, "desc\twith tab");
        let round = Catalog::from_text(&c.to_text()).unwrap();
        assert_eq!(round.entries[0].description, "desc\twith tab");
    }
}
