//! The data-lake file server: an NDN producer serving repo objects.
//!
//! Mirrors the paper's §III-C/§IV setup: "The data lake's NFD is
//! complemented by a fileserver application, which serves the data from the
//! PVC." The server answers three Interest shapes under its prefix:
//!
//! * `<object>/seg=K` — one segment of a (possibly huge) object;
//! * `<object>` (exact) — the whole object when it fits one segment, or a
//!   `Link`-typed manifest (`segments=<n>;size=<bytes>`) telling the client
//!   to switch to segmented retrieval;
//! * anything unknown — an application-level NACK Data (`ContentType::Nack`)
//!   so consumers distinguish "no such dataset" from network loss.

use lidc_ndn::app::Producer;
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::forwarder::{AppRx, Forwarder};
use lidc_ndn::name::{Name, TT_SEGMENT};
use lidc_ndn::net::attach_app;
use lidc_ndn::packet::{ContentType, Data, Interest, Packet};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::SimDuration;

use crate::repo::SharedRepo;
use crate::segment::{segment_count, segment_data, DEFAULT_SEGMENT_SIZE};

/// Parse a manifest produced for multi-segment objects.
pub fn parse_manifest(content: &[u8]) -> Option<(u64, u64)> {
    let text = std::str::from_utf8(content).ok()?;
    let mut segments = None;
    let mut size = None;
    for part in text.split(';') {
        if let Some(v) = part.strip_prefix("segments=") {
            segments = v.parse().ok();
        } else if let Some(v) = part.strip_prefix("size=") {
            size = v.parse().ok();
        }
    }
    Some((segments?, size?))
}

/// The file-server actor.
pub struct FileServer {
    producer: Option<Producer>,
    prefix: Name,
    repo: SharedRepo,
    segment_size: usize,
    freshness: SimDuration,
    /// Segments served (diagnostics).
    pub served_segments: u64,
    /// Whole objects / manifests served (diagnostics).
    pub served_objects: u64,
    /// NACKed lookups (diagnostics).
    pub not_found: u64,
}

impl FileServer {
    /// Build a file server for `prefix` over `repo`.
    pub fn new(prefix: Name, repo: SharedRepo) -> Self {
        FileServer {
            producer: None,
            prefix,
            repo,
            segment_size: DEFAULT_SEGMENT_SIZE,
            freshness: SimDuration::from_secs(60),
            served_segments: 0,
            served_objects: 0,
            not_found: 0,
        }
    }

    /// Override the segment size.
    pub fn with_segment_size(mut self, size: usize) -> Self {
        self.segment_size = size.max(1);
        self
    }

    /// Deploy: spawn the actor, attach it to `fwd`, and register its prefix.
    /// Returns the actor id.
    pub fn deploy(
        self,
        sim: &mut Sim,
        fwd: ActorId,
        alloc: &FaceIdAlloc,
        label: impl Into<String>,
    ) -> ActorId {
        let prefix = self.prefix.clone();
        let app = sim.spawn(label.into(), self);
        let face = attach_app(sim, fwd, app, alloc);
        sim.actor_mut::<FileServer>(app).unwrap().producer = Some(Producer::new(fwd, face));
        sim.actor_mut::<Forwarder>(fwd)
            .unwrap()
            .register_prefix(prefix, face, 0);
        app
    }

    fn handle_interest(&mut self, interest: Interest, ctx: &mut Ctx<'_>) {
        // lidc-lint: allow(panic-path) reason="deploy() installs the producer before the server id escapes, so no Interest can arrive while it is None"
        let producer = self.producer.expect("deployed");
        let name = &interest.name;
        // Segment request?
        if name.len() > self.prefix.len() {
            if let Some(last) = name.get(name.len() - 1) {
                if last.typ() == TT_SEGMENT {
                    let base = name.parent();
                    if let (Some(content), Some(seg)) = (self.repo.get(&base), last.as_number()) {
                        if let Some(data) =
                            segment_data(&base, &content, seg, self.segment_size, self.freshness)
                        {
                            self.served_segments += 1;
                            ctx.metrics().incr("datalake.segments_served", 1);
                            producer.reply(ctx, data);
                            return;
                        }
                    }
                    self.reply_not_found(interest, ctx);
                    return;
                }
            }
        }
        // Whole-object / manifest request.
        if let Some(content) = self.repo.get(name) {
            let total = segment_count(content.len(), self.segment_size);
            let data = if total == 1 {
                Data::new(name.clone(), content.slice(0, self.segment_size))
                    .with_freshness(self.freshness)
                    .sign_digest()
            } else {
                let manifest = format!("segments={total};size={}", content.len());
                Data::new(name.clone(), manifest.into_bytes())
                    .with_content_type(ContentType::Link)
                    .with_freshness(self.freshness)
                    .sign_digest()
            };
            self.served_objects += 1;
            ctx.metrics().incr("datalake.objects_served", 1);
            producer.reply(ctx, data);
            return;
        }
        // CanBePrefix discovery: serve seg=0 of a matching object.
        if interest.can_be_prefix {
            let matching = self.repo.list(name);
            if let Some(base) = matching.first() {
                // lidc-lint: allow(panic-path) reason="base was just returned by repo.list(name), so repo.get on the same key cannot miss"
                let content = self.repo.get(base).expect("listed");
                if let Some(data) =
                    segment_data(base, &content, 0, self.segment_size, self.freshness)
                {
                    self.served_segments += 1;
                    producer.reply(ctx, data);
                    return;
                }
            }
        }
        self.reply_not_found(interest, ctx);
    }

    fn reply_not_found(&mut self, interest: Interest, ctx: &mut Ctx<'_>) {
        self.not_found += 1;
        ctx.metrics().incr("datalake.not_found", 1);
        let data = Data::new(interest.name.clone(), &b"no such object"[..])
            .with_content_type(ContentType::Nack)
            .with_freshness(SimDuration::from_millis(100))
            .sign_digest();
        // lidc-lint: allow(panic-path) reason="deploy() installs the producer before the server id escapes, so no Interest can arrive while it is None"
        self.producer.expect("deployed").reply(ctx, data);
    }
}

impl Actor for FileServer {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        if let Ok(rx) = msg.downcast::<AppRx>() {
            if let Packet::Interest(interest) = rx.packet {
                self.handle_interest(interest, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::Content;
    use crate::repo::MemRepo;
    use bytes::Bytes;
    use lidc_ndn::app::{Consumer, ConsumerEvent, RetxTimer};
    use lidc_ndn::forwarder::ForwarderConfig;
    use lidc_ndn::name;

    /// Consumer harness collecting raw Data events.
    struct Collector {
        consumer: Option<Consumer>,
        got: Vec<Data>,
    }
    struct Ask(Interest);
    impl Actor for Collector {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let msg = match msg.downcast::<Ask>() {
                Ok(a) => {
                    self.consumer.as_mut().unwrap().express(ctx, a.0, 0);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<AppRx>() {
                Ok(rx) => {
                    if let Some(ConsumerEvent::Data(d)) =
                        self.consumer.as_mut().unwrap().on_app_rx(&rx)
                    {
                        self.got.push(d);
                    }
                    return;
                }
                Err(m) => m,
            };
            if let Ok(t) = msg.downcast::<RetxTimer>() {
                let _ = self.consumer.as_mut().unwrap().on_timer(ctx, &t);
            }
        }
    }

    fn world() -> (Sim, ActorId, FaceIdAlloc, SharedRepo, ActorId) {
        let mut sim = Sim::new(0);
        let alloc = FaceIdAlloc::new();
        let fwd = sim.spawn("fwd", Forwarder::new("fwd", ForwarderConfig::default()));
        let repo = MemRepo::shared();
        let server = FileServer::new(name!("/ndn/k8s/data"), repo.clone())
            .with_segment_size(100)
            .deploy(&mut sim, fwd, &alloc, "fileserver");
        (sim, fwd, alloc, repo, server)
    }

    fn spawn_consumer(sim: &mut Sim, fwd: ActorId, alloc: &FaceIdAlloc) -> ActorId {
        let app = sim.spawn("collector", Collector {
            consumer: None,
            got: vec![],
        });
        let face = attach_app(sim, fwd, app, alloc);
        sim.actor_mut::<Collector>(app).unwrap().consumer = Some(Consumer::new(fwd, face));
        app
    }

    #[test]
    fn serves_small_object_whole() {
        let (mut sim, fwd, alloc, repo, _server) = world();
        repo.put(&name!("/ndn/k8s/data/tiny"), Content::bytes(&b"abc"[..]));
        let c = spawn_consumer(&mut sim, fwd, &alloc);
        sim.send(c, Ask(Interest::new(name!("/ndn/k8s/data/tiny"))));
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].content.as_ref(), b"abc");
        assert_eq!(got[0].content_type, ContentType::Blob);
    }

    #[test]
    fn serves_manifest_for_large_object_then_segments() {
        let (mut sim, fwd, alloc, repo, _server) = world();
        let payload: Vec<u8> = (0..=255u8).cycle().take(450).collect();
        repo.put(
            &name!("/ndn/k8s/data/big"),
            Content::bytes(Bytes::from(payload.clone())),
        );
        let c = spawn_consumer(&mut sim, fwd, &alloc);
        sim.send(c, Ask(Interest::new(name!("/ndn/k8s/data/big"))));
        sim.run();
        {
            let got = &sim.actor::<Collector>(c).unwrap().got;
            assert_eq!(got[0].content_type, ContentType::Link, "manifest");
            let (segments, size) = parse_manifest(&got[0].content).unwrap();
            assert_eq!(segments, 5);
            assert_eq!(size, 450);
        }
        // Fetch each segment.
        for seg in 0..5u64 {
            let name = name!("/ndn/k8s/data/big")
                .child(lidc_ndn::name::NameComponent::segment(seg));
            sim.send(c, Ask(Interest::new(name)));
        }
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        assert_eq!(got.len(), 6);
        let reassembled: Vec<u8> = got[1..]
            .iter()
            .flat_map(|d| d.content.to_vec())
            .collect();
        assert_eq!(reassembled, payload);
        assert_eq!(got[5].content.len(), 50, "final short segment");
    }

    #[test]
    fn unknown_object_gets_app_nack() {
        let (mut sim, fwd, alloc, _repo, server) = world();
        let c = spawn_consumer(&mut sim, fwd, &alloc);
        sim.send(c, Ask(Interest::new(name!("/ndn/k8s/data/ghost"))));
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].content_type, ContentType::Nack);
        assert_eq!(sim.actor::<FileServer>(server).unwrap().not_found, 1);
    }

    #[test]
    fn can_be_prefix_discovers_first_segment() {
        let (mut sim, fwd, alloc, repo, _server) = world();
        repo.put(
            &name!("/ndn/k8s/data/ds/sample1"),
            Content::bytes(Bytes::from(vec![9u8; 120])),
        );
        let c = spawn_consumer(&mut sim, fwd, &alloc);
        sim.send(
            c,
            Ask(Interest::new(name!("/ndn/k8s/data/ds")).can_be_prefix(true)),
        );
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, name!("/ndn/k8s/data/ds/sample1/seg=0"));
        assert_eq!(got[0].final_block_id.as_ref().unwrap().as_number(), Some(1));
    }

    #[test]
    fn synthetic_content_served_identically() {
        let (mut sim, fwd, alloc, repo, _server) = world();
        repo.put(&name!("/ndn/k8s/data/synth"), Content::synthetic(250, 11));
        let c = spawn_consumer(&mut sim, fwd, &alloc);
        let seg1 = name!("/ndn/k8s/data/synth").child(lidc_ndn::name::NameComponent::segment(1));
        sim.send(c, Ask(Interest::new(seg1)));
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        assert_eq!(got[0].content, Content::synthetic(250, 11).slice(100, 100));
    }

    #[test]
    fn out_of_range_segment_nacked() {
        let (mut sim, fwd, alloc, repo, _server) = world();
        repo.put(&name!("/ndn/k8s/data/x"), Content::bytes(&b"ab"[..]));
        let c = spawn_consumer(&mut sim, fwd, &alloc);
        let name = name!("/ndn/k8s/data/x").child(lidc_ndn::name::NameComponent::segment(5));
        sim.send(c, Ask(Interest::new(name)));
        sim.run();
        let got = &sim.actor::<Collector>(c).unwrap().got;
        assert_eq!(got[0].content_type, ContentType::Nack);
    }
}
