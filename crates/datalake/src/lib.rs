//! # lidc-datalake — a named data lake over NDN
//!
//! The paper's data layer (DESIGN.md §3): datasets are published under
//! content names (`/ndn/k8s/data/...`), retrieved by name from anywhere, and
//! computation results are published back to the same lake.
//!
//! * [`content`] — real or deterministic-synthetic object content (multi-GB
//!   datasets without multi-GB memory).
//! * [`repo`] — name→content stores: in-memory and NFS/PVC-backed.
//! * [`segment`] — segmentation into `seg=K` Data packets and the windowed
//!   [`segment::SegmentFetch`] consumer state machine.
//! * [`fileserver`] — the NDN producer serving repo objects (the paper's
//!   "fileserver application" behind the data-lake NFD).
//! * [`catalog`] — the named dataset index (`<lake>/_catalog`).
//! * [`loader`] — the one-time data-loading tool (paper §V-B).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod content;
pub mod fileserver;
pub mod loader;
pub mod repo;
pub mod segment;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::catalog::{Catalog, CatalogEntry};
    pub use crate::content::Content;
    pub use crate::fileserver::{parse_manifest, FileServer};
    pub use crate::loader::{DataLoader, DatasetSpec, LoadStats};
    pub use crate::repo::{MemRepo, NfsRepo, Repo, SharedRepo};
    pub use crate::segment::{segment_count, segment_data, FetchProgress, SegmentFetch};
}
