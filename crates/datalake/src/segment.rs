//! Segmentation: large objects become sequences of Data packets
//! (`<base>/seg=K`), with the final segment advertised via FinalBlockId.
//!
//! [`segment_data`] produces one segment; [`SegmentFetch`] is the pure
//! consumer-side state machine (windowed pipelining + reassembly) that the
//! LIDC client embeds to retrieve datasets and results from the lake.

use std::collections::{BTreeMap, HashSet};

use bytes::Bytes;

use crate::content::Content;
use lidc_ndn::name::{Name, NameComponent};
use lidc_ndn::packet::{Data, Interest};
use lidc_simcore::time::SimDuration;

/// Default segment payload size (bytes). 1 MiB keeps event counts sane for
/// multi-GB objects while still exercising multi-segment retrieval.
pub const DEFAULT_SEGMENT_SIZE: usize = 1 << 20;

/// Number of segments an object of `len` bytes needs (at least 1, so empty
/// objects still produce a single empty segment).
///
/// A `segment_size` of 0 is clamped to 1 at this public boundary:
/// `FileServer::with_segment_size` clamps too, but callers reaching these
/// functions directly (tests, tools, future producers) must not be able to
/// trip a division-by-zero panic in `div_ceil`.
pub fn segment_count(len: u64, segment_size: usize) -> u64 {
    if len == 0 {
        1
    } else {
        len.div_ceil(segment_size.max(1) as u64)
    }
}

/// Build the Data packet for segment `seg` of `content`, named
/// `<base>/seg=<seg>` and carrying FinalBlockId on every segment (as
/// real-world publishers do once the size is known).
pub fn segment_data(
    base: &Name,
    content: &Content,
    seg: u64,
    segment_size: usize,
    freshness: SimDuration,
) -> Option<Data> {
    // Same zero clamp as `segment_count`, and with the same value, so the
    // per-segment offsets below agree with the advertised segment total.
    let segment_size = segment_size.max(1);
    let total = segment_count(content.len(), segment_size);
    if seg >= total {
        return None;
    }
    let payload = content.slice(seg * segment_size as u64, segment_size);
    let data = Data::new(
        base.clone().child(NameComponent::segment(seg)),
        payload,
    )
    .with_freshness(freshness)
    .with_final_block_id(NameComponent::segment(total - 1))
    .sign_digest();
    Some(data)
}

/// Progress of a windowed segment fetch.
#[derive(Debug)]
pub enum FetchProgress {
    /// Keep going; express these Interests next.
    Continue(Vec<Interest>),
    /// All segments arrived; the reassembled object.
    Done(Bytes),
}

/// Pure consumer-side fetch state machine.
///
/// Drive it by expressing the Interests it hands out and feeding every
/// arriving [`Data`] to [`SegmentFetch::on_data`].
#[derive(Debug)]
pub struct SegmentFetch {
    base: Name,
    window: usize,
    segments: BTreeMap<u64, Bytes>,
    outstanding: HashSet<u64>,
    next_unrequested: u64,
    final_block: Option<u64>,
    lifetime: SimDuration,
}

impl SegmentFetch {
    /// Start fetching `base` with a pipeline `window` (≥ 1).
    pub fn new(base: Name, window: usize) -> Self {
        SegmentFetch {
            base,
            window: window.max(1),
            segments: BTreeMap::new(),
            outstanding: HashSet::new(),
            next_unrequested: 0,
            final_block: None,
            lifetime: SimDuration::from_secs(4),
        }
    }

    /// Override the Interest lifetime used for segment requests.
    pub fn with_lifetime(mut self, lifetime: SimDuration) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// The base name being fetched.
    pub fn base(&self) -> &Name {
        &self.base
    }

    /// Segments received so far.
    pub fn received(&self) -> usize {
        self.segments.len()
    }

    fn interest_for(&self, seg: u64) -> Interest {
        Interest::new(self.base.clone().child(NameComponent::segment(seg)))
            .with_lifetime(self.lifetime)
    }

    /// Initial window of Interests. Until the final block id is known only
    /// `seg=0` is requested (its FinalBlockId sizes the pipeline).
    pub fn start(&mut self) -> Vec<Interest> {
        self.outstanding.insert(0);
        self.next_unrequested = 1;
        vec![self.interest_for(0)]
    }

    fn fill_window(&mut self) -> Vec<Interest> {
        let mut out = Vec::new();
        if let Some(last) = self.final_block {
            while self.outstanding.len() < self.window && self.next_unrequested <= last {
                let seg = self.next_unrequested;
                self.next_unrequested += 1;
                if self.segments.contains_key(&seg) {
                    continue;
                }
                self.outstanding.insert(seg);
                out.push(self.interest_for(seg));
            }
        }
        out
    }

    /// Feed an arriving Data packet. Data not belonging to this fetch is
    /// ignored (returns `Continue(vec![])`).
    pub fn on_data(&mut self, data: &Data) -> FetchProgress {
        let Some(seg) = self.segment_of(&data.name) else {
            return FetchProgress::Continue(Vec::new());
        };
        self.outstanding.remove(&seg);
        self.segments.insert(seg, data.content.clone());
        if let Some(fbi) = &data.final_block_id {
            if let Some(n) = fbi.as_number() {
                self.final_block = Some(n);
            }
        }
        if let Some(last) = self.final_block {
            if (0..=last).all(|s| self.segments.contains_key(&s)) {
                let mut out = Vec::with_capacity(
                    self.segments.values().map(|b| b.len()).sum(),
                );
                for (_, chunk) in std::mem::take(&mut self.segments) {
                    out.extend_from_slice(&chunk);
                }
                return FetchProgress::Done(Bytes::from(out));
            }
        }
        FetchProgress::Continue(self.fill_window())
    }

    /// Re-issue an Interest for a timed-out segment.
    pub fn retransmit(&mut self, seg: u64) -> Interest {
        self.outstanding.insert(seg);
        self.interest_for(seg)
    }

    /// Which segment (if any) of this fetch a Data name refers to.
    pub fn segment_of(&self, name: &Name) -> Option<u64> {
        if !self.base.is_prefix_of(name) || name.len() != self.base.len() + 1 {
            return None;
        }
        let comp = name.get(self.base.len())?;
        if comp.typ() != lidc_ndn::name::TT_SEGMENT {
            return None;
        }
        comp.as_number()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_ndn::name;

    #[test]
    fn segment_count_boundaries() {
        assert_eq!(segment_count(0, 100), 1);
        assert_eq!(segment_count(1, 100), 1);
        assert_eq!(segment_count(100, 100), 1);
        assert_eq!(segment_count(101, 100), 2);
        assert_eq!(segment_count(1000, 100), 10);
    }

    #[test]
    fn zero_segment_size_clamps_instead_of_panicking() {
        // Regression: `div_ceil(0)` panics with division by zero; the pub
        // boundary clamps to 1-byte segments instead.
        assert_eq!(segment_count(0, 0), 1);
        assert_eq!(segment_count(5, 0), 5, "clamped to 1-byte segments");
        let base = name!("/z");
        let content = Content::bytes(Bytes::from(vec![9u8; 3]));
        let d0 = segment_data(&base, &content, 0, 0, SimDuration::from_secs(1)).unwrap();
        assert_eq!(d0.content.len(), 1);
        assert_eq!(d0.final_block_id.as_ref().unwrap().as_number(), Some(2));
        assert!(segment_data(&base, &content, 3, 0, SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn bulk_threshold_matches_default_segment_size() {
        // The CS's segment-aware admission classifies entries as bulk at
        // the data lake's default segment payload size; the two constants
        // must not drift apart.
        assert_eq!(
            lidc_ndn::tables::cs::DEFAULT_BULK_THRESHOLD,
            DEFAULT_SEGMENT_SIZE as u64
        );
    }

    #[test]
    fn segment_data_names_and_final_block() {
        let base = name!("/ndn/k8s/data/rice");
        let content = Content::bytes(Bytes::from(vec![7u8; 250]));
        let d0 = segment_data(&base, &content, 0, 100, SimDuration::from_secs(1)).unwrap();
        assert_eq!(d0.name, name!("/ndn/k8s/data/rice/seg=0"));
        assert_eq!(d0.content.len(), 100);
        assert_eq!(d0.final_block_id.as_ref().unwrap().as_number(), Some(2));
        let d2 = segment_data(&base, &content, 2, 100, SimDuration::from_secs(1)).unwrap();
        assert_eq!(d2.content.len(), 50, "last segment is short");
        assert!(segment_data(&base, &content, 3, 100, SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn empty_object_single_empty_segment() {
        let base = name!("/x");
        let content = Content::bytes(Bytes::new());
        let d = segment_data(&base, &content, 0, 100, SimDuration::from_secs(1)).unwrap();
        assert_eq!(d.content.len(), 0);
        assert_eq!(d.final_block_id.as_ref().unwrap().as_number(), Some(0));
    }

    fn serve(base: &Name, content: &Content, i: &Interest) -> Option<Data> {
        // Tiny in-test producer: answer segment interests.
        let fetch_probe = SegmentFetch::new(base.clone(), 1);
        let seg = fetch_probe.segment_of(&i.name)?;
        segment_data(base, content, seg, 100, SimDuration::from_secs(1))
    }

    #[test]
    fn fetch_reassembles_in_order_and_out_of_order() {
        let base = name!("/obj");
        let original: Vec<u8> = (0..=255u8).cycle().take(950).collect();
        let content = Content::bytes(Bytes::from(original.clone()));

        for reverse_window in [false, true] {
            let mut fetch = SegmentFetch::new(base.clone(), 4);
            let mut queue: Vec<Interest> = fetch.start();
            let mut result: Option<Bytes> = None;
            let mut guard = 0;
            while result.is_none() {
                guard += 1;
                assert!(guard < 1000, "fetch did not converge");
                let mut replies: Vec<Data> = queue
                    .drain(..)
                    .filter_map(|i| serve(&base, &content, &i))
                    .collect();
                if reverse_window {
                    replies.reverse();
                }
                for d in replies {
                    match fetch.on_data(&d) {
                        FetchProgress::Done(bytes) => result = Some(bytes),
                        FetchProgress::Continue(next) => queue.extend(next),
                    }
                }
            }
            assert_eq!(result.unwrap().as_ref(), &original[..]);
        }
    }

    #[test]
    fn fetch_single_segment_object() {
        let base = name!("/small");
        let content = Content::bytes(&b"tiny"[..]);
        let mut fetch = SegmentFetch::new(base.clone(), 8);
        let interests = fetch.start();
        assert_eq!(interests.len(), 1, "only seg=0 until size is known");
        let d = serve(&base, &content, &interests[0]).unwrap();
        match fetch.on_data(&d) {
            FetchProgress::Done(bytes) => assert_eq!(bytes.as_ref(), b"tiny"),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn window_respected() {
        let base = name!("/big");
        let content = Content::bytes(Bytes::from(vec![1u8; 100 * 20])); // 20 segments
        let mut fetch = SegmentFetch::new(base.clone(), 5);
        let first = fetch.start();
        let d = serve(&base, &content, &first[0]).unwrap();
        match fetch.on_data(&d) {
            FetchProgress::Continue(next) => {
                assert_eq!(next.len(), 5, "window fills to 5 outstanding");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn foreign_data_ignored() {
        let mut fetch = SegmentFetch::new(name!("/obj"), 2);
        let _ = fetch.start();
        let foreign = Data::new(name!("/other/seg=0"), &b"x"[..]).sign_digest();
        match fetch.on_data(&foreign) {
            FetchProgress::Continue(next) => assert!(next.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // Non-segment child of the base is also ignored.
        let non_seg = Data::new(name!("/obj/meta"), &b"x"[..]).sign_digest();
        assert!(matches!(fetch.on_data(&non_seg), FetchProgress::Continue(v) if v.is_empty()));
    }

    #[test]
    fn retransmit_reissues_same_name() {
        let mut fetch = SegmentFetch::new(name!("/obj"), 2).with_lifetime(SimDuration::from_millis(100));
        let first = fetch.start();
        let retx = fetch.retransmit(0);
        assert_eq!(first[0].name, retx.name);
        assert_eq!(retx.lifetime, SimDuration::from_millis(100));
    }
}
