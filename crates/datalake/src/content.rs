//! Content representation for data-lake objects.
//!
//! Scientific objects in the paper are large (the human reference database,
//! multi-GB BLAST outputs). Holding them as real bytes would make the
//! simulation memory-bound for no fidelity gain, so content is either
//! [`Content::Bytes`] (real, for small/meaningful payloads) or
//! [`Content::Synthetic`] (a size + seed; bytes are generated
//! deterministically on demand when a range is actually read). Both forms
//! behave identically through [`Content::slice`].

use bytes::Bytes;
use lidc_simcore::rng::DetRng;

/// Object content: real bytes or a deterministic synthetic expanse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// Literal bytes.
    Bytes(Bytes),
    /// `size` bytes generated on demand from `seed`.
    Synthetic {
        /// Total size in bytes.
        size: u64,
        /// Generation seed; equal seeds generate equal bytes.
        seed: u64,
    },
}

impl Content {
    /// Real content from bytes.
    pub fn bytes(b: impl Into<Bytes>) -> Self {
        Content::Bytes(b.into())
    }

    /// Synthetic content of `size` bytes.
    pub fn synthetic(size: u64, seed: u64) -> Self {
        Content::Synthetic { size, seed }
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Content::Bytes(b) => b.len() as u64,
            Content::Synthetic { size, .. } => *size,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialise `[offset, offset+len)` (clamped to the object's end).
    ///
    /// Synthetic reads are deterministic in `(seed, offset, len)` — the same
    /// range always yields the same bytes, independent of read order, so
    /// segment-level digests are stable.
    pub fn slice(&self, offset: u64, len: usize) -> Bytes {
        match self {
            Content::Bytes(b) => {
                let start = (offset as usize).min(b.len());
                let end = (start + len).min(b.len());
                b.slice(start..end)
            }
            Content::Synthetic { size, seed } => {
                let start = offset.min(*size);
                let end = (start + len as u64).min(*size);
                let mut out = Vec::with_capacity((end - start) as usize);
                // Generate 64-byte blocks keyed by block index so random
                // access is order-independent.
                const BLOCK: u64 = 64;
                let mut block_idx = start / BLOCK;
                while (block_idx * BLOCK) < end {
                    let mut rng = DetRng::new(*seed ^ block_idx.wrapping_mul(0x9E37_79B9));
                    let mut block = [0u8; BLOCK as usize];
                    for chunk in block.chunks_exact_mut(8) {
                        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
                    }
                    let block_start = block_idx * BLOCK;
                    let from = start.max(block_start) - block_start;
                    let to = end.min(block_start + BLOCK) - block_start;
                    out.extend_from_slice(&block[from as usize..to as usize]);
                    block_idx += 1;
                }
                Bytes::from(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_content_slicing() {
        let c = Content::bytes(&b"hello world"[..]);
        assert_eq!(c.len(), 11);
        assert_eq!(c.slice(0, 5).as_ref(), b"hello");
        assert_eq!(c.slice(6, 100).as_ref(), b"world", "clamped at end");
        assert_eq!(c.slice(100, 5).len(), 0, "past the end");
    }

    #[test]
    fn synthetic_deterministic_and_order_independent() {
        let c = Content::synthetic(10_000, 42);
        assert_eq!(c.len(), 10_000);
        let a = c.slice(1000, 500);
        let b = c.slice(1000, 500);
        assert_eq!(a, b, "same range, same bytes");
        // Reading a different range first must not change the result.
        let _ = c.slice(0, 64);
        assert_eq!(c.slice(1000, 500), a);
        // Random access equals a covering read's sub-range.
        let covering = c.slice(900, 700);
        assert_eq!(&covering[100..600], a.as_ref());
    }

    #[test]
    fn synthetic_different_seeds_differ() {
        let a = Content::synthetic(256, 1).slice(0, 256);
        let b = Content::synthetic(256, 2).slice(0, 256);
        assert_ne!(a, b);
    }

    #[test]
    fn synthetic_clamps_at_end() {
        let c = Content::synthetic(100, 7);
        assert_eq!(c.slice(90, 64).len(), 10);
        assert_eq!(c.slice(100, 64).len(), 0);
        // Full read assembles exactly `size` bytes.
        assert_eq!(c.slice(0, 200).len(), 100);
    }

    #[test]
    fn unaligned_reads_consistent_with_aligned() {
        let c = Content::synthetic(1024, 99);
        let full = c.slice(0, 1024);
        for (off, len) in [(3u64, 61usize), (63, 2), (64, 64), (511, 513)] {
            let part = c.slice(off, len);
            assert_eq!(
                part.as_ref(),
                &full[off as usize..off as usize + len],
                "range ({off},{len})"
            );
        }
    }
}
