//! The data-loading tool.
//!
//! The paper (§V-B) loads the human reference database and the rice/kidney
//! SRA samples onto PVCs with a one-time scripted operation. [`DataLoader`]
//! is that script: it writes the described datasets into a repo and
//! publishes the catalog. It is generic over dataset descriptions —
//! `lidc-genomics` supplies the concrete genomics catalog.

use crate::catalog::Catalog;
use crate::content::Content;
use crate::repo::Repo;
use lidc_ndn::name::Name;

/// Description of one dataset to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Target object name (relative names are joined onto the lake prefix).
    pub name: Name,
    /// Size in bytes (loaded as synthetic content).
    pub size: u64,
    /// Deterministic content seed.
    pub seed: u64,
    /// Catalog description.
    pub description: String,
}

impl DatasetSpec {
    /// Construct a spec.
    pub fn new(name: Name, size: u64, seed: u64, description: impl Into<String>) -> Self {
        DatasetSpec {
            name,
            size,
            seed,
            description: description.into(),
        }
    }
}

/// Load statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadStats {
    /// Objects written.
    pub objects: usize,
    /// Total bytes (declared synthetic sizes).
    pub bytes: u64,
}

/// The loader.
#[derive(Debug, Default)]
pub struct DataLoader {
    specs: Vec<DatasetSpec>,
}

impl DataLoader {
    /// Empty loader.
    pub fn new() -> Self {
        DataLoader::default()
    }

    /// Queue a dataset.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, spec: DatasetSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Queue many datasets.
    pub fn add_all(mut self, specs: impl IntoIterator<Item = DatasetSpec>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Write everything into `repo` under `lake_prefix` and publish the
    /// catalog. Idempotent: re-running overwrites the same names.
    pub fn load_into(&self, repo: &dyn Repo, lake_prefix: &Name) -> LoadStats {
        let mut catalog = Catalog::new();
        let mut stats = LoadStats::default();
        for spec in &self.specs {
            let full_name = lake_prefix.join(&spec.name);
            repo.put(&full_name, Content::synthetic(spec.size, spec.seed));
            catalog.add(full_name, spec.size, spec.description.clone());
            stats.objects += 1;
            stats.bytes += spec.size;
        }
        catalog.publish(repo, lake_prefix);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::MemRepo;
    use lidc_ndn::name;

    fn loader() -> DataLoader {
        DataLoader::new()
            .add(DatasetSpec::new(
                name!("/ref/human"),
                3_200_000_000,
                0xCAFE,
                "human reference",
            ))
            .add_all((0..3).map(|i| {
                DatasetSpec::new(
                    Name::parse(&format!("/sra/rice/SRR{i}")).unwrap(),
                    1_000_000,
                    i,
                    format!("rice sample {i}"),
                )
            }))
    }

    #[test]
    fn loads_objects_and_catalog() {
        let repo = MemRepo::new();
        let prefix = name!("/ndn/k8s/data");
        let stats = loader().load_into(&repo, &prefix);
        assert_eq!(stats.objects, 4);
        assert_eq!(stats.bytes, 3_200_000_000 + 3_000_000);
        assert!(repo.contains(&name!("/ndn/k8s/data/ref/human")));
        assert!(repo.contains(&name!("/ndn/k8s/data/sra/rice/SRR2")));
        let catalog = Catalog::load(&repo, &prefix).unwrap();
        assert_eq!(catalog.entries.len(), 4);
        assert_eq!(catalog.total_bytes(), stats.bytes);
    }

    #[test]
    fn reload_is_idempotent() {
        let repo = MemRepo::new();
        let prefix = name!("/lake");
        let l = loader();
        let s1 = l.load_into(&repo, &prefix);
        let s2 = l.load_into(&repo, &prefix);
        assert_eq!(s1, s2);
        // 4 objects + 1 catalog.
        assert_eq!(repo.list(&prefix).len(), 5);
    }

    #[test]
    fn content_is_deterministic_per_seed() {
        let repo = MemRepo::new();
        let prefix = name!("/lake");
        loader().load_into(&repo, &prefix);
        let a = repo.get(&name!("/lake/sra/rice/SRR1")).unwrap().slice(0, 64);
        let b = Content::synthetic(1_000_000, 1).slice(0, 64);
        assert_eq!(a, b);
    }
}
