//! Repositories: where the data lake keeps objects.
//!
//! A [`Repo`] maps NDN names to [`Content`]. Two implementations:
//! [`MemRepo`] (standalone, in-memory) and [`NfsRepo`] (backed by the
//! cluster's [`NfsExport`], i.e. the PVC-mounted NFS server of the paper's
//! testbed — §IV: "a Kubernetes PVC … mounts it to an NFS server, which
//! functions like a remote data lake").

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::content::Content;
use lidc_k8s::storage::NfsExport;
use lidc_ndn::name::Name;

/// A named-object store. All methods take `&self`; implementations use
/// interior mutability so the handle can be shared between the file server,
/// the gateway, and compute jobs.
pub trait Repo: Send + Sync {
    /// Store (or replace) an object.
    fn put(&self, name: &Name, content: Content);
    /// Fetch an object.
    fn get(&self, name: &Name) -> Option<Content>;
    /// Whether an object exists.
    fn contains(&self, name: &Name) -> bool {
        self.get(name).is_some()
    }
    /// Remove an object; true if it existed.
    fn remove(&self, name: &Name) -> bool;
    /// Names under `prefix`, in canonical order.
    fn list(&self, prefix: &Name) -> Vec<Name>;
    /// Sum of object sizes (synthetic sizes count fully).
    fn total_bytes(&self) -> u64;
}

/// Shared repo handle.
pub type SharedRepo = Arc<dyn Repo>;

/// In-memory repository.
#[derive(Debug, Default)]
pub struct MemRepo {
    // lidc-lint: allow(actor-isolation) reason="the repo models shared storage (the paper's NFS-backed lake), deliberately visible from every cluster; the BTreeMap keeps listings canonical"
    objects: RwLock<BTreeMap<Name, Content>>,
}

impl MemRepo {
    /// Empty repo.
    pub fn new() -> Self {
        MemRepo::default()
    }

    /// Empty shared repo.
    pub fn shared() -> SharedRepo {
        Arc::new(MemRepo::new())
    }
}

impl Repo for MemRepo {
    fn put(&self, name: &Name, content: Content) {
        self.objects.write().insert(name.clone(), content);
    }

    fn get(&self, name: &Name) -> Option<Content> {
        self.objects.read().get(name).cloned()
    }

    fn remove(&self, name: &Name) -> bool {
        self.objects.write().remove(name).is_some()
    }

    fn list(&self, prefix: &Name) -> Vec<Name> {
        self.objects
            .read()
            .keys()
            .filter(|n| prefix.is_prefix_of(n))
            .cloned()
            .collect()
    }

    fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(Content::len).sum()
    }
}

/// Repository persisted on the cluster's NFS export (PVC-backed).
///
/// Object names map to file paths (`<uri>` → file key); synthetic content is
/// stored as a tiny manifest line rather than materialised bytes, mirroring
/// how the simulation avoids holding multi-GB datasets in memory.
#[derive(Debug, Clone)]
pub struct NfsRepo {
    export: NfsExport,
}

const SYNTH_PREFIX: &str = "#synthetic:";

impl NfsRepo {
    /// Wrap an export.
    pub fn new(export: NfsExport) -> Self {
        NfsRepo { export }
    }

    /// Shared handle.
    pub fn shared(export: NfsExport) -> SharedRepo {
        Arc::new(NfsRepo::new(export))
    }

    fn path_of(name: &Name) -> String {
        name.to_uri()
    }
}

impl Repo for NfsRepo {
    fn put(&self, name: &Name, content: Content) {
        let path = Self::path_of(name);
        match content {
            Content::Bytes(b) => self.export.write(path, b),
            Content::Synthetic { size, seed } => self
                .export
                .write(path, format!("{SYNTH_PREFIX}{size}:{seed}").into_bytes()),
        }
    }

    fn get(&self, name: &Name) -> Option<Content> {
        let raw = self.export.read(&Self::path_of(name))?;
        if let Ok(text) = std::str::from_utf8(&raw) {
            if let Some(rest) = text.strip_prefix(SYNTH_PREFIX) {
                let mut parts = rest.splitn(2, ':');
                let size = parts.next()?.parse().ok()?;
                let seed = parts.next()?.parse().ok()?;
                return Some(Content::Synthetic { size, seed });
            }
        }
        Some(Content::Bytes(raw))
    }

    fn remove(&self, name: &Name) -> bool {
        self.export.delete(&Self::path_of(name))
    }

    fn list(&self, prefix: &Name) -> Vec<Name> {
        // URI prefixes align with name prefixes only at component
        // boundaries; filter properly.
        self.export
            .list(&Self::path_of(prefix))
            .into_iter()
            .filter_map(|p| Name::parse(&p).ok())
            .filter(|n| prefix.is_prefix_of(n))
            .collect()
    }

    fn total_bytes(&self) -> u64 {
        // Account synthetic manifests at their declared size.
        let mut total = 0u64;
        for path in self.export.list("/") {
            if let Ok(name) = Name::parse(&path) {
                if let Some(c) = self.get(&name) {
                    total += c.len();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lidc_ndn::name;

    fn exercise(repo: &dyn Repo) {
        let a = name!("/ndn/k8s/data/rice/SRR1");
        let b = name!("/ndn/k8s/data/rice/SRR2");
        let c = name!("/ndn/k8s/data/kidney/SRR3");
        assert!(!repo.contains(&a));
        repo.put(&a, Content::bytes(&b"AAAA"[..]));
        repo.put(&b, Content::synthetic(1_000_000, 7));
        repo.put(&c, Content::bytes(&b"CC"[..]));
        assert!(repo.contains(&a));
        assert_eq!(repo.get(&a).unwrap().slice(0, 10).as_ref(), b"AAAA");
        assert_eq!(repo.get(&b).unwrap().len(), 1_000_000);
        // Synthetic survives the round trip with identical bytes.
        let s1 = repo.get(&b).unwrap().slice(500, 64);
        let s2 = Content::synthetic(1_000_000, 7).slice(500, 64);
        assert_eq!(s1, s2);
        assert_eq!(repo.list(&name!("/ndn/k8s/data/rice")).len(), 2);
        assert_eq!(repo.list(&name!("/ndn/k8s/data")).len(), 3);
        assert_eq!(repo.total_bytes(), 1_000_000 + 4 + 2);
        assert!(repo.remove(&a));
        assert!(!repo.remove(&a));
        assert_eq!(repo.list(&name!("/ndn/k8s/data")).len(), 2);
    }

    #[test]
    fn mem_repo_behaviour() {
        exercise(&MemRepo::new());
    }

    #[test]
    fn nfs_repo_behaviour() {
        exercise(&NfsRepo::new(NfsExport::new()));
    }

    #[test]
    fn nfs_repo_shares_export_with_cluster() {
        let export = NfsExport::new();
        let repo = NfsRepo::new(export.clone());
        repo.put(&name!("/d/x"), Content::bytes(&b"42"[..]));
        // Visible from the raw export (e.g. to a pod mounting the PVC).
        assert!(export.exists("/d/x"));
        // And writes from the pod side are visible in the repo.
        export.write("/d/y", Bytes::from_static(b"021"));
        assert!(repo.contains(&name!("/d/y")));
    }

    #[test]
    fn overwrite_replaces() {
        let repo = MemRepo::new();
        let n = name!("/x");
        repo.put(&n, Content::bytes(&b"v1"[..]));
        repo.put(&n, Content::bytes(&b"v2"[..]));
        assert_eq!(repo.get(&n).unwrap().slice(0, 10).as_ref(), b"v2");
    }

    #[test]
    fn list_respects_component_boundaries() {
        let repo = MemRepo::new();
        repo.put(&name!("/data/rice"), Content::bytes(&b"1"[..]));
        repo.put(&name!("/data/rice-extra"), Content::bytes(&b"2"[..]));
        let listed = repo.list(&name!("/data/rice"));
        assert_eq!(listed.len(), 1, "/data/rice-extra is not under /data/rice");
    }
}
