//! Property-based tests for the data lake: segmentation/reassembly round
//! trips, repo semantics, and catalog text-codec round trips.

use bytes::Bytes;
use lidc_datalake::catalog::Catalog;
use lidc_datalake::content::Content;
use lidc_datalake::repo::MemRepo;
use lidc_datalake::segment::{segment_count, segment_data, FetchProgress, SegmentFetch};
use lidc_ndn::name::Name;
use lidc_simcore::time::SimDuration;
use proptest::prelude::*;

fn lake_name(parts: &[String]) -> Name {
    let mut n = Name::parse("/ndn/k8s/data").unwrap();
    for p in parts {
        n = n.child_str(p);
    }
    n
}

proptest! {
    #[test]
    fn segment_count_covers_every_byte(len in 0u64..1 << 30, seg in 1usize..1 << 22) {
        let count = segment_count(len, seg);
        // Enough segments to cover, never a fully-empty trailing segment
        // (except the single empty segment of an empty object).
        if len == 0 {
            prop_assert_eq!(count, 1);
        } else {
            prop_assert!(count * seg as u64 >= len);
            prop_assert!((count - 1) * (seg as u64) < len);
        }
    }

    /// Segment an object, shuffle delivery, reassemble through the
    /// windowed fetch state machine: the bytes must round-trip.
    #[test]
    fn segmentation_reassembly_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        seg_size in 1usize..512,
        window in 1usize..12,
        seed in any::<u64>(),
    ) {
        let base = Name::parse("/ndn/k8s/data/obj").unwrap();
        let content = Content::bytes(Bytes::from(payload.clone()));
        let total = segment_count(content.len(), seg_size);
        let mut segments: Vec<_> = (0..total)
            .map(|i| {
                segment_data(&base, &content, i, seg_size, SimDuration::from_secs(60))
                    .expect("in range")
            })
            .collect();
        prop_assert!(segment_data(&base, &content, total, seg_size, SimDuration::ZERO).is_none());

        // Deterministic shuffle of arrival order.
        let mut rng = lidc_simcore::rng::DetRng::new(seed);
        rng.shuffle(&mut segments);

        let mut fetch = SegmentFetch::new(base, window);
        let _first = fetch.start();
        let mut done: Option<Bytes> = None;
        for data in &segments {
            match fetch.on_data(data) {
                FetchProgress::Done(bytes) => {
                    done = Some(bytes);
                    break;
                }
                FetchProgress::Continue(_more) => {}
            }
        }
        let bytes = done.expect("reassembly completed");
        prop_assert_eq!(bytes.as_ref(), payload.as_slice());
    }

    #[test]
    fn synthetic_content_is_deterministic_and_sliceable(
        size in 0u64..1 << 20,
        seed in any::<u64>(),
        offset in 0u64..1 << 20,
        len in 0usize..4096,
    ) {
        let a = Content::synthetic(size, seed);
        let b = Content::synthetic(size, seed);
        prop_assert_eq!(a.len(), size);
        let off = offset.min(size);
        prop_assert_eq!(a.slice(off, len), b.slice(off, len));
        prop_assert!(a.slice(off, len).len() as u64 <= size.saturating_sub(off).min(len as u64));
        // Different seeds diverge (over non-trivial sizes).
        if size >= 16 {
            let c = Content::synthetic(size, seed.wrapping_add(1));
            prop_assert_ne!(a.slice(0, 16), c.slice(0, 16));
        }
    }

    #[test]
    fn repo_put_get_remove(
        entries in proptest::collection::btree_map(
            "[a-z0-9-]{1,12}",
            proptest::collection::vec(any::<u8>(), 0..64),
            1..16,
        ),
    ) {
        let repo = MemRepo::shared();
        for (k, v) in &entries {
            let name = lake_name(std::slice::from_ref(k));
            repo.put(&name, Content::bytes(Bytes::from(v.clone())));
        }
        for (k, v) in &entries {
            let name = lake_name(std::slice::from_ref(k));
            prop_assert!(repo.contains(&name));
            let got = repo.get(&name).expect("present");
            prop_assert_eq!(got.len(), v.len() as u64);
            let bytes = got.slice(0, v.len());
            prop_assert_eq!(bytes.as_ref(), v.as_slice());
        }
        // Overwrite keeps the newest bytes.
        let (k0, _) = entries.iter().next().unwrap();
        let name = lake_name(std::slice::from_ref(k0));
        repo.put(&name, Content::bytes(&b"replaced"[..]));
        let bytes = repo.get(&name).unwrap().slice(0, 8);
        prop_assert_eq!(bytes.as_ref(), b"replaced");
    }

    #[test]
    fn catalog_text_round_trip(
        entries in proptest::collection::btree_map(
            "[a-z0-9-]{1,12}",
            (0u64..1 << 40, "[ -~&&[^|]]{0,24}"),
            0..12,
        ),
    ) {
        let mut catalog = Catalog::new();
        for (k, (size, desc)) in &entries {
            catalog.add(lake_name(std::slice::from_ref(k)), *size, desc.clone());
        }
        let text = catalog.to_text();
        let parsed = Catalog::from_text(&text).expect("parses back");
        prop_assert_eq!(parsed.entries.len(), catalog.entries.len());
        prop_assert_eq!(parsed.total_bytes(), catalog.total_bytes());
        for e in &catalog.entries {
            let found = parsed.find(&e.name).expect("entry survives");
            prop_assert_eq!(found.size, e.size);
        }
    }
}
