//! The acceptance gate: the whole workspace scans clean. Any new
//! violation — or any allow that went stale — fails this test (and the
//! dedicated CI step that runs the binary).

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = lidc_lint::scan_workspace(&root).expect("scan");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn workspace_scan_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf();
    let a = lidc_lint::scan_workspace(&root).expect("scan");
    let b = lidc_lint::scan_workspace(&root).expect("scan");
    assert_eq!(a, b, "a linter about determinism had better be deterministic");
}
