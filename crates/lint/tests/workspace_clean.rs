//! The acceptance gate: the whole workspace scans clean. Any new
//! violation — or any allow that went stale — fails this test (and the
//! dedicated CI step that runs the binary).

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = lidc_lint::scan_workspace(&root).expect("scan");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn workspace_scan_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf();
    let a = lidc_lint::scan_workspace(&root).expect("scan");
    let b = lidc_lint::scan_workspace(&root).expect("scan");
    assert_eq!(a, b, "a linter about determinism had better be deterministic");
}

/// The catalogue must carry all nine enforced rules (plus the two that
/// police the allow directives themselves), and the workspace must be
/// clean under every one of them — reported per rule so a regression
/// names the contract it broke.
#[test]
fn every_rule_is_cataloged_and_workspace_clean() {
    let enforced = [
        "wall-clock",
        "ambient-rng",
        "unordered-iter",
        "actor-isolation",
        "float-accum",
        "panic-path",
        "effect-purity",
        "metric-key",
        "horizon-safety",
    ];
    let police = ["unused-allow", "allow-syntax"];
    for r in enforced.iter().chain(&police) {
        assert!(
            lidc_lint::rules::ALL.contains(r),
            "rule `{r}` missing from the catalogue"
        );
        assert!(!lidc_lint::rules::describe(r).is_empty());
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf();
    let findings = lidc_lint::scan_workspace(&root).expect("scan");
    for r in enforced.iter().chain(&police) {
        let hits: Vec<String> =
            findings.iter().filter(|f| f.rule == *r).map(|f| f.render()).collect();
        assert!(hits.is_empty(), "rule `{r}` regressed:\n{}", hits.join("\n"));
    }
}

/// `--changed` reporting is a strict narrowing of the full scan: it must
/// never invent findings the workspace pass does not have.
#[test]
fn changed_scan_is_a_subset_of_the_full_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf();
    if !root.join(".git").exists() {
        return; // packaged source, no git metadata — nothing to diff
    }
    let full = lidc_lint::scan_workspace(&root).expect("scan");
    let changed = lidc_lint::scan_changed(&root, "HEAD").expect("changed scan");
    for f in &changed {
        assert!(full.contains(f), "changed-only finding {} not in the full scan", f.render());
    }
}
