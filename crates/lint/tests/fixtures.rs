//! Fixture tests: every rule is demonstrated by a snippet the engine
//! flags — and stops flagging under a scoped `allow` — plus the
//! exemption matrix (test regions, bench crate, engine crate) and the
//! policing of the allow directives themselves.

use lidc_lint::{analyze, classify, FileCtx};

/// Actor-crate source context (the strictest configuration).
fn actor_ctx() -> FileCtx {
    classify("crates/ndn/src/forwarder.rs")
}

/// Non-actor library source context.
fn lib_ctx() -> FileCtx {
    classify("crates/genomics/src/aligner.rs")
}

fn rules_at(ctx: &FileCtx, src: &str) -> Vec<(String, u32)> {
    analyze(ctx, src)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

#[test]
fn wall_clock_instant_now_flagged_and_allowed() {
    let src = "fn t() { let s = std::time::Instant::now(); }";
    let f = rules_at(&lib_ctx(), src);
    assert_eq!(f, vec![("wall-clock".to_string(), 1)]);

    let allowed = "fn t() {\n    // lidc-lint: allow(wall-clock) reason=\"calibration measures the host\"\n    let s = std::time::Instant::now();\n}";
    assert!(rules_at(&lib_ctx(), allowed).is_empty(), "allow suppresses and is marked used");
}

#[test]
fn wall_clock_system_time_flagged() {
    let src = "use std::time::SystemTime;\nfn t() -> SystemTime { SystemTime::now() }";
    let f = rules_at(&lib_ctx(), src);
    assert!(f.iter().all(|(r, _)| r == "wall-clock"));
    assert_eq!(f.len(), 2, "one finding per line, deduped within a line");
}

#[test]
fn wall_clock_exempt_in_bench_crate_tests_and_cfg_test() {
    let src = "fn t() { let s = std::time::Instant::now(); }";
    assert!(rules_at(&classify("crates/bench/src/bin/table1.rs"), src).is_empty());
    assert!(rules_at(&classify("crates/ndn/tests/props.rs"), src).is_empty());

    let gated = "#[cfg(test)]\nmod tests {\n    fn t() { let s = std::time::Instant::now(); }\n}";
    assert!(rules_at(&lib_ctx(), gated).is_empty(), "cfg(test) region is exempt");
}

#[test]
fn ambient_rng_flagged_even_in_tests() {
    let src = "fn r() -> u64 { rand::thread_rng().gen() }";
    assert_eq!(rules_at(&lib_ctx(), src), vec![("ambient-rng".to_string(), 1)]);
    assert_eq!(
        rules_at(&classify("tests/chaos.rs"), src),
        vec![("ambient-rng".to_string(), 1)],
        "seeded tests are part of the contract too"
    );
    let src2 = "fn r() -> f64 { rand::random() }";
    assert_eq!(rules_at(&lib_ctx(), src2), vec![("ambient-rng".to_string(), 1)]);
}

#[test]
fn unordered_iter_flagged_without_sort() {
    let src = "struct S { faces: HashMap<u32, Face> }\nimpl S {\n    fn ids(&self) -> Vec<u32> {\n        self.faces.keys().copied().collect()\n    }\n}";
    assert_eq!(rules_at(&actor_ctx(), src), vec![("unordered-iter".to_string(), 4)]);
}

#[test]
fn unordered_iter_ok_when_feeding_a_sort() {
    let same_stmt = "struct S { faces: HashMap<u32, Face> }\nfn f(s: &S) {\n    let v: BTreeSet<u32> = s.faces.keys().copied().collect();\n}";
    assert!(rules_at(&actor_ctx(), same_stmt).is_empty());

    let next_stmt = "struct S { faces: HashMap<u32, Face> }\nimpl S {\n    fn ids(&self) -> Vec<u32> {\n        let mut ids: Vec<u32> = self.faces.keys().copied().collect();\n        ids.sort_unstable();\n        ids\n    }\n}";
    assert!(rules_at(&actor_ctx(), next_stmt).is_empty(), "sort in the following statement counts");
}

#[test]
fn unordered_iter_ok_under_order_insensitive_reduction() {
    let src = "struct S { faces: HashMap<u32, Face> }\nfn n(s: &S) -> usize { s.faces.values().count() }";
    assert!(rules_at(&actor_ctx(), src).is_empty());
    let sum = "struct S { load: FxHashMap<u32, u64> }\nfn n(s: &S) -> u64 { s.load.values().sum::<u64>() }";
    assert!(rules_at(&actor_ctx(), sum).is_empty(), "integer sums commute");
}

#[test]
fn unordered_iter_for_loop_requires_annotation() {
    let src = "struct S { faces: HashMap<u32, Face> }\nfn f(s: &S) {\n    for (k, v) in &s.faces {\n        touch(k, v);\n    }\n}";
    assert_eq!(rules_at(&actor_ctx(), src), vec![("unordered-iter".to_string(), 3)]);

    let allowed = "struct S { faces: HashMap<u32, Face> }\nfn f(s: &S) {\n    // lidc-lint: allow(unordered-iter) reason=\"commutative per-face counter bump\"\n    for (k, v) in &s.faces {\n        touch(k, v);\n    }\n}";
    assert!(rules_at(&actor_ctx(), allowed).is_empty());
}

#[test]
fn unordered_iter_for_loop_header_method_form_flagged_once() {
    let src = "struct S { pit: FxHashMap<u64, Entry> }\nfn f(s: &S) {\n    for key in s.pit.keys() {\n        touch(key);\n    }\n}";
    assert_eq!(rules_at(&actor_ctx(), src), vec![("unordered-iter".to_string(), 3)]);
}

#[test]
fn unordered_iter_tracks_let_bound_constructors() {
    let src = "fn f() {\n    let mut seen = FxHashSet::default();\n    fill(&mut seen);\n    for s in &seen { touch(s); }\n}";
    assert_eq!(rules_at(&actor_ctx(), src), vec![("unordered-iter".to_string(), 4)]);
}

#[test]
fn float_accum_flagged_over_hash_iteration() {
    let src = "struct S { load: HashMap<u32, f64> }\nfn t(s: &S) -> f64 { s.load.values().sum::<f64>() }";
    assert_eq!(rules_at(&actor_ctx(), src), vec![("float-accum".to_string(), 2)]);

    let ascribed = "struct S { load: HashMap<u32, f64> }\nfn t(s: &S) -> f64 {\n    let total: f64 = s.load.values().sum();\n    total\n}";
    assert_eq!(rules_at(&actor_ctx(), ascribed), vec![("float-accum".to_string(), 3)]);
}

#[test]
fn float_accum_allowed_with_reason() {
    let src = "struct S { load: HashMap<u32, f64> }\nfn t(s: &S) -> f64 {\n    // lidc-lint: allow(float-accum) reason=\"diagnostic display only, never compared\"\n    s.load.values().sum::<f64>()\n}";
    assert!(rules_at(&actor_ctx(), src).is_empty());
}

#[test]
fn actor_isolation_flags_shared_state_in_actor_crates_only() {
    let src = "use parking_lot::RwLock;\nstruct S { inner: Arc<RwLock<State>> }";
    let f = rules_at(&actor_ctx(), src);
    assert_eq!(
        f,
        vec![
            ("actor-isolation".to_string(), 2),
            ("horizon-safety".to_string(), 2),
        ],
        "the usage site flags (both isolation and, since PR 9, horizon \
         coupling); the import alone is not shared state"
    );
    assert!(
        rules_at(&lib_ctx(), src).is_empty(),
        "genomics is a compute library, not an actor crate"
    );
    assert!(
        rules_at(&classify("crates/simcore/src/engine.rs"), src).is_empty(),
        "the engine implements the machinery and is exempt"
    );

    let use_tree = "use std::sync::{Arc, Mutex};\nuse std::cell::RefCell;";
    assert!(
        rules_at(&actor_ctx(), use_tree).is_empty(),
        "brace-nested use trees are imports too"
    );
}

#[test]
fn actor_isolation_flags_static_mut_everywhere() {
    let src = "static mut COUNTER: u64 = 0;";
    assert_eq!(
        rules_at(&classify("crates/simcore/src/engine.rs"), src),
        vec![("actor-isolation".to_string(), 1)],
        "static mut is banned even in the engine"
    );
}

#[test]
fn unused_allow_is_a_finding() {
    let src = "// lidc-lint: allow(wall-clock) reason=\"left behind after a refactor\"\nfn f() { }";
    assert_eq!(rules_at(&lib_ctx(), src), vec![("unused-allow".to_string(), 1)]);
}

#[test]
fn malformed_allow_is_a_finding() {
    let src = "fn f() { } // lidc-lint: allow(wall-clock)";
    assert_eq!(rules_at(&lib_ctx(), src), vec![("allow-syntax".to_string(), 1)]);
    let unknown = "fn f() { } // lidc-lint: allow(no-such-rule) reason=\"x\"";
    assert_eq!(rules_at(&lib_ctx(), unknown), vec![("allow-syntax".to_string(), 1)]);
}

#[test]
fn allow_on_wrong_rule_does_not_suppress() {
    let src = "fn t() {\n    // lidc-lint: allow(ambient-rng) reason=\"wrong rule\"\n    let s = std::time::Instant::now();\n}";
    let f = rules_at(&lib_ctx(), src);
    assert!(f.contains(&("wall-clock".to_string(), 3)), "finding survives: {f:?}");
    assert!(f.contains(&("unused-allow".to_string(), 2)), "and the allow is unused: {f:?}");
}

#[test]
fn trailing_allow_covers_its_own_line() {
    let src = "fn t() {\n    let s = std::time::Instant::now(); // lidc-lint: allow(wall-clock) reason=\"host calibration\"\n}";
    assert!(rules_at(&lib_ctx(), src).is_empty());
}

#[test]
fn idents_inside_strings_and_comments_never_fire() {
    let src = "fn f() -> &'static str {\n    // Instant::now and thread_rng and HashMap in a comment\n    \"SystemTime rand::random static mut\"\n}";
    assert!(rules_at(&actor_ctx(), src).is_empty());
}

#[test]
fn findings_render_rustc_style() {
    let src = "fn t() { let s = std::time::Instant::now(); }";
    let f = analyze(&classify("crates/core/src/gateway.rs"), src);
    assert_eq!(f.len(), 1);
    let line = f[0].render();
    assert!(
        line.starts_with("crates/core/src/gateway.rs:1: rule[wall-clock]: "),
        "got: {line}"
    );
}

// ---------------------------------------------------------------------
// Cross-file semantic rules (PR 9). These need `analyze_files` — the
// call graph only exists across a whole file set.

use lidc_lint::{analyze_files, SourceFile};

fn multi(files: &[(&str, &str)]) -> Vec<(String, String, u32)> {
    let files: Vec<SourceFile> = files
        .iter()
        .map(|(p, s)| SourceFile { ctx: classify(p), src: (*s).to_string() })
        .collect();
    analyze_files(&files)
        .into_iter()
        .map(|f| (f.file, f.rule.to_string(), f.line))
        .collect()
}

const HANDLER_CALLS_HELPER: &str = "pub struct F;\n\
impl Actor for F {\n\
    fn on_message(&mut self, ctx: &mut Ctx<'_>) {\n\
        helpers::poke();\n\
    }\n\
}";

#[test]
fn panic_path_flags_unwrap_reachable_from_handler_cross_file() {
    let helper = "pub fn poke() {\n    let v: Option<u32> = None;\n    v.unwrap();\n}";
    let f = multi(&[
        ("crates/ndn/src/actor_fixture.rs", HANDLER_CALLS_HELPER),
        ("crates/ndn/src/helpers.rs", helper),
    ]);
    assert_eq!(
        f,
        vec![("crates/ndn/src/helpers.rs".to_string(), "panic-path".to_string(), 3)],
        "the panic site is flagged in the callee, not at the handler"
    );
}

#[test]
fn panic_path_allow_on_the_site_suppresses() {
    let helper = "pub fn poke() {\n    let v: Option<u32> = Some(1);\n    // lidc-lint: allow(panic-path) reason=\"v is Some on the line above\"\n    v.unwrap();\n}";
    let f = multi(&[
        ("crates/ndn/src/actor_fixture.rs", HANDLER_CALLS_HELPER),
        ("crates/ndn/src/helpers.rs", helper),
    ]);
    assert!(f.is_empty(), "scoped allow must suppress (and count as used): {f:?}");
}

#[test]
fn panic_path_ignores_non_actor_crates_and_unreachable_fns() {
    // Same shape in a compute library: not an actor crate, no finding.
    let f = multi(&[
        ("crates/genomics/src/actor_fixture.rs", HANDLER_CALLS_HELPER),
        ("crates/genomics/src/helpers.rs", "pub fn poke() { None::<u32>.unwrap(); }"),
    ]);
    assert!(f.is_empty(), "genomics is not an actor crate: {f:?}");

    // An unwrap in a fn no handler reaches stays silent.
    let f = multi(&[(
        "crates/ndn/src/quiet.rs",
        "pub fn cold() { None::<u32>.unwrap(); }",
    )]);
    assert!(f.is_empty(), "unreachable from any handler: {f:?}");
}

#[test]
fn effect_purity_flags_ctx_spawn_from_concurrent_actor() {
    let src = "pub struct W;\n\
impl Actor for W {\n\
    fn concurrency(&self) -> Concurrency { Concurrency::Concurrent }\n\
    fn on_message(&mut self, ctx: &mut Ctx<'_>) {\n\
        self.work(ctx);\n\
    }\n\
}\n\
impl W {\n\
    fn work(&mut self, ctx: &mut Ctx<'_>) {\n\
        ctx.spawn(\"child\", W);\n\
    }\n\
}";
    let f = multi(&[("crates/ndn/src/wave.rs", src)]);
    assert_eq!(
        f,
        vec![("crates/ndn/src/wave.rs".to_string(), "effect-purity".to_string(), 10)],
        "ctx.spawn reachable from a Concurrent handler is the violation"
    );

    // The identical actor declared Exclusive may spawn freely.
    let exclusive = src.replace("Concurrency::Concurrent", "Concurrency::Exclusive");
    let f = multi(&[("crates/ndn/src/wave.rs", exclusive.as_str())]);
    assert!(f.is_empty(), "Exclusive actors may spawn: {f:?}");
}

/// A minimal stand-in for the checked-in metric registry.
const REGISTRY_FIXTURE: &str = "/// Interests forwarded.\npub const NDN_TX: &str = \"ndn.tx\";\n";

#[test]
fn metric_key_flags_unregistered_and_orphaned_keys() {
    let user = "fn f(ctx: &mut Ctx<'_>) {\n    ctx.metrics().incr(\"ndn.tx\", 1);\n    ctx.metrics().incr(\"ndn.txx\", 1);\n}";
    let f = multi(&[
        (lidc_lint::semantic::REGISTRY_PATH, REGISTRY_FIXTURE),
        ("crates/ndn/src/metrics_user.rs", user),
    ]);
    assert_eq!(
        f,
        vec![("crates/ndn/src/metrics_user.rs".to_string(), "metric-key".to_string(), 3)],
        "the typo'd key is flagged; the registered one is not"
    );

    // A registered key that nothing records is an orphan — flagged at
    // the registry, so the schema cannot rot.
    let f = multi(&[
        (lidc_lint::semantic::REGISTRY_PATH, REGISTRY_FIXTURE),
        ("crates/ndn/src/metrics_user.rs", "fn f() {}"),
    ]);
    assert_eq!(
        f,
        vec![(lidc_lint::semantic::REGISTRY_PATH.to_string(), "metric-key".to_string(), 2)],
        "the orphaned registry entry is flagged at its declaration"
    );
}

#[test]
fn metric_key_dynamic_key_needs_allow() {
    let user = "fn f(ctx: &mut Ctx<'_>, key: &str) {\n    ctx.metrics().incr(key, 1);\n}";
    let f = multi(&[
        (lidc_lint::semantic::REGISTRY_PATH, REGISTRY_FIXTURE),
        ("crates/ndn/src/metrics_user.rs", user),
    ]);
    // The dynamic key plus the now-orphaned registry entry.
    assert!(
        f.contains(&("crates/ndn/src/metrics_user.rs".to_string(), "metric-key".to_string(), 2)),
        "a non-literal key cannot be checked and must be flagged: {f:?}"
    );

    let allowed = "fn f(ctx: &mut Ctx<'_>, key: &str) {\n    // lidc-lint: allow(metric-key) reason=\"key is one of the registered ndn.* constants\"\n    ctx.metrics().incr(key, 1);\n}";
    let f = multi(&[
        (lidc_lint::semantic::REGISTRY_PATH, REGISTRY_FIXTURE),
        ("crates/ndn/src/recorder.rs", "fn rec(ctx: &mut Ctx<'_>) { ctx.metrics().incr(\"ndn.tx\", 1); }"),
        ("crates/ndn/src/metrics_user.rs", allowed),
    ]);
    assert!(f.is_empty(), "the annotated dynamic key is accepted: {f:?}");
}

#[test]
fn horizon_safety_flags_connect_runtime_outside_net() {
    let src = "fn wire(sim: &mut Sim, a: ActorId, b: ActorId) {\n    connect_runtime(sim, a, b);\n}";
    let f = multi(&[("crates/core/src/wiring.rs", src)]);
    assert_eq!(
        f,
        vec![("crates/core/src/wiring.rs".to_string(), "horizon-safety".to_string(), 2)],
        "runtime wiring bypasses the declared lookahead"
    );

    // The defining module and #[cfg(test)] regions are exempt.
    let f = multi(&[("crates/ndn/src/net.rs", src)]);
    assert!(f.is_empty(), "net.rs implements connect_runtime: {f:?}");
}

#[test]
fn horizon_safety_allow_must_record_the_clamp() {
    let missing = "// lidc-lint: allow(horizon-safety, actor-isolation) reason=\"shared read-mostly board\"\npub type Board = Arc<RwLock<State>>;";
    let f = multi(&[("crates/core/src/board.rs", missing)]);
    assert_eq!(
        f,
        vec![("crates/core/src/board.rs".to_string(), "horizon-safety".to_string(), 2)],
        "an allow whose reason skips the clamp decision is incomplete"
    );

    let noted = "// lidc-lint: allow(horizon-safety, actor-isolation) reason=\"shared read-mostly board; horizon runs clamp the sharing groups to zero lookahead\"\npub type Board = Arc<RwLock<State>>;";
    let f = multi(&[("crates/core/src/board.rs", noted)]);
    assert!(f.is_empty(), "the clamp-noted allow suppresses: {f:?}");
}
