//! CLI for `lidc_lint`.
//!
//! ```text
//! lidc_lint --workspace            # scan the enclosing cargo workspace
//! lidc_lint path/to/file.rs ...    # scan specific files
//! lidc_lint --changed=<base>       # workspace analysis, changed-file reporting
//! lidc_lint --json --workspace     # machine-readable findings
//! lidc_lint --rules                # list the rule catalogue
//! lidc_lint --rules=a,b ...        # keep only the listed rules' findings
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
//! or I/O errors — so the CI step is just `cargo run -p lidc_lint
//! --release -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut workspace = false;
    let mut list_rules = false;
    let mut changed: Option<String> = None;
    let mut rule_filter: Option<Vec<String>> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--rules" => list_rules = true,
            "--changed" => changed = Some("HEAD".to_owned()),
            flag if flag.starts_with("--changed=") => {
                changed = Some(flag["--changed=".len()..].to_owned());
            }
            flag if flag.starts_with("--rules=") => {
                let mut wanted = Vec::new();
                for id in flag["--rules=".len()..].split(',').filter(|s| !s.is_empty()) {
                    if !lidc_lint::rules::ALL.contains(&id) {
                        eprintln!("lidc_lint: unknown rule `{id}` in --rules= (run --rules for the catalogue)");
                        return ExitCode::from(2);
                    }
                    wanted.push(id.to_owned());
                }
                rule_filter = Some(wanted);
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("lidc_lint: unknown flag `{flag}` (see --help)");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    if list_rules {
        for r in lidc_lint::rules::ALL {
            println!("{r:15} {}", lidc_lint::rules::describe(r));
        }
        return ExitCode::SUCCESS;
    }
    if !workspace && changed.is_none() && paths.is_empty() {
        eprintln!("lidc_lint: nothing to scan — pass --workspace, --changed, or file paths (see --help)");
        return ExitCode::from(2);
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lidc_lint: cannot read current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match lidc_lint::find_workspace_root(&cwd) {
        Some(r) => r,
        None if workspace || changed.is_some() => {
            eprintln!("lidc_lint: no enclosing cargo workspace found from {}", cwd.display());
            return ExitCode::from(2);
        }
        None => cwd.clone(),
    };

    let mut findings = Vec::new();
    if workspace {
        match lidc_lint::scan_workspace(&root) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("lidc_lint: workspace scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(base) = &changed {
        match lidc_lint::scan_changed(&root, base) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("lidc_lint: changed-file scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for p in &paths {
        match lidc_lint::scan_file(&root, p) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("lidc_lint: cannot scan {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Some(wanted) = &rule_filter {
        findings.retain(|f| wanted.iter().any(|w| w == f.rule));
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings.dedup();

    if json {
        println!("{}", lidc_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("lidc_lint: clean");
        } else {
            eprintln!(
                "lidc_lint: {} finding{} — see docs/DETERMINISM.md for the contract and the allow escape hatch",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "lidc_lint — workspace determinism & actor-isolation lint

USAGE:
    lidc_lint [--json] [--rules=a,b] (--workspace | --changed[=BASE] | FILE...)
    lidc_lint --rules

FLAGS:
    --workspace        scan every policed .rs file in the enclosing workspace
    --changed[=BASE]   analyze the whole workspace but report findings only in
                       files `git diff --name-only BASE` (default HEAD) lists,
                       plus untracked files — the pre-commit mode
    --json             emit findings as a JSON array
    --rules            list the rule catalogue
    --rules=a,b        keep only the listed rules' findings
    -h, --help         this text

Findings print as `file:line: rule[<id>]: message`. A deliberate
violation carries a scoped escape hatch on (or directly above) the line:

    // lidc-lint: allow(<rule>) reason=\"why order/time cannot matter here\"

Unused allows are themselves findings. The contract is documented in
docs/DETERMINISM.md."
    );
}
