//! The rule passes: token-pattern matchers over one lexed file.
//!
//! Everything here is deliberately heuristic — no type information, no
//! AST — but tuned so that every miss is on the safe side for the
//! codebase's idioms:
//!
//! * hash-container receivers are recognized from *declarations* in the
//!   same file (`name: HashMap<...>` fields/params, `let name =
//!   FxHashMap::default()` bindings), so a map handed across files under a
//!   fresh name can slip through — the reviewer's job, not the linter's;
//! * "feeds a sort" is a window scan: the rest of the statement plus the
//!   immediately following statement. A sort three statements later needs
//!   an `allow` with a reason, which is exactly the documentation the
//!   determinism contract wants at such a site.

use crate::allow;
use crate::callgraph::CallGraph;
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::rules;
use crate::semantic;
use crate::symbols;

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileCtx {
    /// Workspace-relative path (forward slashes), used in findings.
    pub rel_path: String,
    /// Under `crates/bench/` — exempt from `wall-clock` (benches measure
    /// real time by definition).
    pub is_bench_crate: bool,
    /// Under a `tests/`, `benches/`, or `examples/` directory — exempt
    /// from `wall-clock`, `unordered-iter`, `float-accum`,
    /// `actor-isolation` (but **not** `ambient-rng`: tests must be
    /// seeded too, or failures don't reproduce).
    pub is_test_code: bool,
    /// Source of an actor crate (`ndn`, `core`, `k8s`, `datalake`,
    /// `baseline`) — the `actor-isolation` shared-state ban applies.
    pub is_actor_crate: bool,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// The rustc-style single-line rendering.
    pub fn render(&self) -> String {
        format!("{}:{}: rule[{}]: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Hash containers whose iteration order is arbitrary.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods that iterate a container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
];

/// Sinks that restore a canonical order downstream of hash iteration.
const SORTERS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_by_cached_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Order-insensitive reductions (commutative over any iteration order —
/// float sums excepted, which `float-accum` handles first).
const REDUCERS: &[&str] = &[
    "count", "sum", "product", "min", "max", "min_by_key", "max_by_key", "all", "any", "len",
];

/// Shared-state primitives banned inside actor crates.
const SHARED_STATE: &[&str] = &["Mutex", "RwLock", "RefCell"];

/// One file handed to [`analyze_files`]: where it sits plus its source.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub ctx: FileCtx,
    pub src: String,
}

/// Analyze one file in isolation. Cross-file rules still run, but see
/// only this file — fixture tests exercise them by co-locating the actor
/// impl / registry / call chain in one source. Workspace scans go through
/// [`analyze_files`].
pub fn analyze(ctx: &FileCtx, src: &str) -> Vec<Finding> {
    analyze_files(&[SourceFile {
        ctx: ctx.clone(),
        src: src.to_string(),
    }])
}

/// Analyze a set of files as one workspace: per-file token rules, then
/// the symbol-graph/call-graph semantic rules ([`semantic`]), then allow
/// suppression per file. Findings come back sorted by (file, line, rule).
pub fn analyze_files(files: &[SourceFile]) -> Vec<Finding> {
    let mut lexeds: Vec<Lexed> = Vec::new();
    let mut allows_per = Vec::new();
    let mut bad_per = Vec::new();
    let mut regions_per: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut raw_per: Vec<Vec<Finding>> = Vec::new();
    for sf in files {
        let lexed = lex(&sf.src);
        let (allows, bad) = allow::collect(&lexed);
        let regions = test_regions(&lexed.toks);
        raw_per.push(raw_findings(&sf.ctx, &lexed, &regions));
        lexeds.push(lexed);
        allows_per.push(allows);
        bad_per.push(bad);
        regions_per.push(regions);
    }

    // The semantic layer sees every file at once.
    let ws = symbols::Workspace::build(
        files
            .iter()
            .zip(lexeds.iter())
            .zip(regions_per.iter())
            .map(|((sf, lexed), regions)| (sf.ctx.clone(), lexed.clone(), regions.clone()))
            .collect(),
    );
    let cg = CallGraph::build(&ws);
    let by_path: std::collections::BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, sf)| (sf.ctx.rel_path.as_str(), i))
        .collect();
    for f in semantic::run(&ws, &cg, &mut allows_per) {
        match by_path.get(f.file.as_str()) {
            Some(&i) => {
                if !raw_per[i]
                    .iter()
                    .any(|g| g.rule == f.rule && g.line == f.line)
                {
                    raw_per[i].push(f);
                }
            }
            None => unreachable!("semantic finding for unanalyzed file"),
        }
    }

    let mut findings = Vec::new();
    for (((sf, raw), allows), bad) in files
        .iter()
        .zip(raw_per)
        .zip(allows_per.iter_mut())
        .zip(bad_per)
    {
        findings.extend(suppress(&sf.ctx, raw, allows, bad));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    findings
}

/// Apply allow suppression to one file's raw findings and report
/// unused/malformed directives.
fn suppress(
    ctx: &FileCtx,
    raw: Vec<Finding>,
    allows: &mut [allow::Allow],
    bad_allows: Vec<allow::BadAllow>,
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();
    'next: for f in raw {
        for a in allows.iter_mut() {
            if a.covers == f.line && a.rules.iter().any(|r| r == f.rule) {
                a.used = true;
                continue 'next;
            }
        }
        findings.push(f);
    }
    for a in allows.iter() {
        if !a.used {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: a.line,
                rule: rules::UNUSED_ALLOW,
                message: format!(
                    "allow({}) suppressed nothing — remove it or move it onto the offending line",
                    a.rules.join(", ")
                ),
            });
        }
    }
    for b in bad_allows {
        findings.push(Finding {
            file: ctx.rel_path.clone(),
            line: b.line,
            rule: rules::ALLOW_SYNTAX,
            message: b.message,
        });
    }
    findings
}

/// The per-file token-pattern rules (PR 7's catalogue), without allow
/// suppression — [`analyze_files`] applies that after the semantic layer
/// has contributed its findings.
fn raw_findings(ctx: &FileCtx, lexed: &Lexed, test_regions: &[(u32, u32)]) -> Vec<Finding> {
    let toks = &lexed.toks;
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));

    let mut raw: Vec<Finding> = Vec::new();
    let push = |rule: &'static str, line: u32, message: String, raw: &mut Vec<Finding>| {
        // One finding per (rule, line): several banned idents on a line
        // are one decision for the human reading the report.
        if !raw.iter().any(|f| f.rule == rule && f.line == line) {
            raw.push(Finding {
                file: ctx.rel_path.clone(),
                line,
                rule,
                message,
            });
        }
    };

    // --- wall-clock ------------------------------------------------------
    if !ctx.is_bench_crate && !ctx.is_test_code {
        for i in 0..toks.len() {
            if in_test(toks[i].line) {
                continue;
            }
            if toks[i].is_ident("Instant")
                && matches2(toks, i + 1, ':', ':')
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
            {
                push(
                    rules::WALL_CLOCK,
                    toks[i].line,
                    "`Instant::now()` outside crates/bench and test code — simulated time must come from the engine".into(),
                    &mut raw,
                );
            }
            if toks[i].is_ident("SystemTime") {
                push(
                    rules::WALL_CLOCK,
                    toks[i].line,
                    "`SystemTime` outside crates/bench and test code — wall-clock reads make runs host-dependent".into(),
                    &mut raw,
                );
            }
        }
    }

    // --- ambient-rng (applies everywhere, tests included) ----------------
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("thread_rng")
            || t.is_ident("OsRng")
            || t.is_ident("getrandom")
            || t.is_ident("from_entropy")
        {
            push(
                rules::AMBIENT_RNG,
                t.line,
                format!(
                    "ambient RNG `{}` — all randomness must derive from the master seed (Ctx::rng() or DetRng::derive*)",
                    t.text
                ),
                &mut raw,
            );
        }
        if t.is_ident("rand")
            && matches2(toks, i + 1, ':', ':')
            && toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            push(
                rules::AMBIENT_RNG,
                t.line,
                "`rand::random` — all randomness must derive from the master seed (Ctx::rng() or DetRng::derive*)".into(),
                &mut raw,
            );
        }
    }

    // --- unordered-iter / float-accum ------------------------------------
    if !ctx.is_test_code {
        let table = hash_symbols(toks);
        for cand in iteration_sites(toks, &table) {
            if in_test(cand.line) {
                continue;
            }
            let post = forward_window(toks, cand.start);
            let pre = backward_window(toks, cand.start);
            let has = |set: &[&str], win: &[usize]| {
                win.iter().any(|&j| {
                    toks[j].kind == TokKind::Ident && set.contains(&toks[j].text.as_str())
                })
            };
            let float_marker = pre
                .iter()
                .chain(post.iter())
                .any(|&j| is_float_marker(&toks[j]));
            let accumulates = has(&["sum", "product", "fold"], &post);
            if accumulates && float_marker {
                push(
                    rules::FLOAT_ACCUM,
                    cand.line,
                    format!(
                        "float accumulation over unordered iteration of `{}` — float sums are order-sensitive in the low bits; reduce in sorted order or annotate",
                        cand.receiver
                    ),
                    &mut raw,
                );
                continue;
            }
            // Sorters may appear after the iteration (`.collect()` then
            // `.sort()`, or `.collect::<BTreeMap<_, _>>()`) or before it
            // (`let v: BTreeSet<_> = map.keys().collect()`). A bare loop
            // header (`for k in map.keys() {`) carries no marker, so it
            // still flags.
            let ordered = has(SORTERS, &post) || has(SORTERS, &pre) || has(REDUCERS, &post);
            if !ordered {
                push(
                    rules::UNORDERED_ITER,
                    cand.line,
                    format!(
                        "iteration over hash container `{}` does not visibly feed a sort or order-insensitive reduction — sort the items or annotate why order cannot matter",
                        cand.receiver
                    ),
                    &mut raw,
                );
            }
        }
    }

    // --- actor-isolation --------------------------------------------------
    if !ctx.is_test_code {
        for i in 0..toks.len() {
            if in_test(toks[i].line) {
                continue;
            }
            if toks[i].is_ident("static") && toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
                push(
                    rules::ACTOR_ISOLATION,
                    toks[i].line,
                    "`static mut` — global mutable state breaks actor isolation (and is UB-prone); route state through an actor".into(),
                    &mut raw,
                );
            }
            if ctx.is_actor_crate
                && toks[i].kind == TokKind::Ident
                && SHARED_STATE.contains(&toks[i].text.as_str())
                && !in_use_statement(toks, i)
            {
                push(
                    rules::ACTOR_ISOLATION,
                    toks[i].line,
                    format!(
                        "shared-state primitive `{}` in an actor crate — actors communicate only through the engine; annotate with the architectural justification if this is deliberate",
                        toks[i].text
                    ),
                    &mut raw,
                );
            }
        }
    }

    raw
}

/// `toks[i] == a && toks[i+1] == b` for punctuation.
fn matches2(toks: &[Tok], i: usize, a: char, b: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(a)) && toks.get(i + 1).is_some_and(|t| t.is_punct(b))
}

/// Line ranges covered by `#[test]`- or `#[cfg(test)]`-gated items
/// (attribute line through the matching close brace).
pub fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') || !toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Scan the attribute body for the ident `test`.
        let attr_line = toks[i].line;
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut is_test_attr = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
            } else if toks[j].is_ident("test") {
                is_test_attr = true;
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Find the gated item's body: first `{` at depth 0 (then match it)
        // or `;` (attribute on a bodiless item).
        let mut depth = 0i32;
        let mut k = j;
        let mut close_line = attr_line;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
                if depth == 1 {
                    // Walk to the matching close brace.
                    let mut m = k + 1;
                    let mut d = 1i32;
                    while m < toks.len() && d > 0 {
                        if toks[m].is_punct('{') {
                            d += 1;
                        } else if toks[m].is_punct('}') {
                            d -= 1;
                        }
                        m += 1;
                    }
                    close_line = toks[m.saturating_sub(1).min(toks.len() - 1)].line;
                    k = m;
                    break;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                close_line = t.line;
                k += 1;
                break;
            }
            k += 1;
        }
        regions.push((attr_line, close_line));
        i = k;
    }
    regions
}

/// Names declared with a hash-container type in this file: struct fields
/// and fn params (`name: HashMap<..>` / `name: &FxHashMap<..>`), plus
/// `let` bindings whose initializer mentions a hash type
/// (`let m = FxHashMap::default()`).
fn hash_symbols(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let add = |n: &str, names: &mut Vec<String>| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for i in 0..toks.len() {
        // `name : <type window containing a hash type>` — exclude `::`.
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !(i > 0 && toks[i - 1].is_punct(':'))
        {
            let mut depth = 0i32;
            for j in (i + 2)..toks.len().min(i + 50) {
                let t = &toks[j];
                if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0
                    && (t.is_punct(',') || t.is_punct(';') || t.is_punct('=') || t.is_punct('{'))
                {
                    break;
                } else if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                    add(&toks[i].text, &mut names);
                    break;
                }
            }
        }
        // `let [mut] name = <window containing a hash type>`.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else { continue };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let mut depth = 0i32;
            for t in toks.iter().take(j + 80).skip(j + 1) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                } else if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                    add(&name_tok.text, &mut names);
                    break;
                }
            }
        }
    }
    names
}

/// One detected hash-iteration site.
struct IterSite {
    /// Token index the scan windows anchor on.
    start: usize,
    line: u32,
    receiver: String,
}

/// Find iteration sites over known hash receivers: `recv.iter()`-style
/// chains and `for pat in [&][mut] path.recv {` loops.
fn iteration_sites(toks: &[Tok], table: &[String]) -> Vec<IterSite> {
    let mut sites = Vec::new();
    let known = |s: &str| table.iter().any(|n| n == s);
    for i in 0..toks.len() {
        // Method form: `<recv> . <iter_method> (`.
        if toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && known(&toks[i - 2].text)
        {
            sites.push(IterSite {
                start: i,
                line: toks[i].line,
                receiver: toks[i - 2].text.clone(),
            });
        }
        // For-loop form: `for <pat> in <expr ending in a known name> {`.
        if toks[i].is_ident("for") {
            // Locate `in` at pattern depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut found_in = None;
            while j < toks.len().min(i + 40) {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                    // `impl Trait for Type {` and friends — not a loop.
                    break;
                } else if depth == 0 && t.is_ident("in") {
                    found_in = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_idx) = found_in else { continue };
            // The iterated expression: tokens up to the body `{`.
            let mut depth = 0i32;
            let mut last_ident: Option<usize> = None;
            let mut has_method_call = false;
            let mut k = in_idx + 1;
            while k < toks.len().min(in_idx + 40) {
                let t = &toks[k];
                if t.is_punct('{') && depth == 0 {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.kind == TokKind::Ident {
                    if ITER_METHODS.contains(&t.text.as_str())
                        && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                    {
                        // `for x in map.iter()` — the method form above
                        // already considered this site.
                        has_method_call = true;
                    }
                    last_ident = Some(k);
                }
                k += 1;
            }
            if has_method_call {
                continue;
            }
            if let Some(li) = last_ident {
                if known(&toks[li].text) {
                    sites.push(IterSite {
                        start: li,
                        line: toks[li].line,
                        receiver: toks[li].text.clone(),
                    });
                }
            }
        }
    }
    sites
}

/// Is token `i` inside a `use …;` item? Imports are not shared state —
/// only *usage* sites (types, constructors) need a justification, so the
/// actor-isolation rule skips them.
fn in_use_statement(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            // `use a::{b, c};` nests braces; keep walking if the brace
            // itself belongs to a use-tree (previous token is `::`-ish).
            if t.is_punct('{')
                && j >= 2
                && toks[j - 2].is_punct(':')
            {
                j -= 1;
                continue;
            }
            break;
        }
        j -= 1;
    }
    toks.get(j).is_some_and(|t| t.is_ident("use"))
}

/// Tokens from `start` to the end of the statement, plus the following
/// statement (where `ids.sort_unstable()` conventionally lives). A `{`
/// at depth 0 ends the window: whatever a block body does to the items
/// cannot canonicalize the order they were visited in.
fn forward_window(toks: &[Tok], start: usize) -> Vec<usize> {
    let mut win = Vec::new();
    let mut depth = 0i32;
    let mut i = start;
    let mut statements = 0u32;
    while i < toks.len().min(start + 220) {
        let t = &toks[i];
        if depth == 0 && t.is_punct('{') {
            break;
        }
        if depth == 0 && t.is_punct('}') {
            break;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            statements += 1;
            if statements == 2 {
                break;
            }
        }
        win.push(i);
        i += 1;
    }
    win
}

/// Tokens from the start of the enclosing statement up to `start` — where
/// a `let total: f64 = ...` type ascription lives.
fn backward_window(toks: &[Tok], start: usize) -> Vec<usize> {
    let mut win = Vec::new();
    let mut depth = 0i32;
    let mut i = start;
    while i > 0 && win.len() < 80 {
        i -= 1;
        let t = &toks[i];
        if t.is_punct('}') && depth == 0 {
            // The previous statement was a block — statement boundary.
            break;
        }
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            break;
        }
        win.push(i);
    }
    win
}

/// Token that signals float arithmetic: `f64`/`f32` (turbofish or
/// ascription) or a float literal (`0.0`, `1e-9`, `2f64`).
fn is_float_marker(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => t.text == "f64" || t.text == "f32",
        TokKind::Literal => {
            let s = &t.text;
            if !s.chars().next().is_some_and(|c| c.is_ascii_digit()) || s.starts_with("0x") {
                return false;
            }
            // `1.5`, `2f64`, `1e-9` — but not `1usize` (the `e` of a type
            // suffix is not an exponent unless a digit or sign follows).
            s.contains('.')
                || s.ends_with("f64")
                || s.ends_with("f32")
                || s
                    .char_indices()
                    .any(|(i, c)| {
                        (c == 'e' || c == 'E')
                            && s[i + 1..]
                                .chars()
                                .next()
                                .is_some_and(|n| n.is_ascii_digit() || n == '+' || n == '-')
                    })
        }
        _ => false,
    }
}
