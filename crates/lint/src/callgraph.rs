//! A conservative workspace call graph over the [`crate::symbols`] tables.
//!
//! Call sites are recognized from the token stream; resolution tries, in
//! order:
//!
//! 1. **Path calls** (`Type::method(`, `module::func(`): if the
//!    penultimate segment names a type with that method, the edge goes to
//!    those definitions; otherwise candidates are filtered to fns whose
//!    module path ends with the leading segments (after `use`-alias
//!    expansion).
//! 2. **Method calls** (`recv.method(`): the receiver's type comes from
//!    the PR-7 symbol-table machinery generalized to arbitrary types —
//!    `self` (the enclosing impl type), declared params (`ctx: &mut
//!    Ctx<'_>`), `let`-ascribed or constructor-bound locals (`let f =
//!    Forwarder::new(...)`), and one level of `self.field` lookup through
//!    struct field types. A hit resolves to that type's method.
//! 3. **Opaque fallback**: anything unresolvable keeps an edge *by bare
//!    name* to every workspace fn with that name. This over-approximates
//!    (dyn dispatch, chained receivers, trait calls all stay covered), so
//!    reachability never silently drops a path — the soundness the
//!    inter-procedural rules lean on.
//!
//! Bare lowercase calls (`helper(`) resolve within the defining file's
//! crate first; bare uppercase parens (`Some(`, `Packet(`) are constructor
//! applications, not calls.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::symbols::{base_ty_of, FnDef, FnId, Workspace};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name.
    pub tok: usize,
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Resolved receiver type, when the receiver's declared type was found
    /// (method calls only).
    pub recv_ty: Option<String>,
    /// Resolved callee definitions; empty means the call is **opaque** —
    /// nothing in the workspace matched, or matching was by-name only and
    /// found nothing.
    pub callees: Vec<FnId>,
    /// True when resolution fell back to by-name matching (or found
    /// nothing at all) rather than a type/path hit.
    pub opaque: bool,
}

/// The call graph: per-fn call sites plus a reachability helper.
pub struct CallGraph {
    /// `sites[f]` — call sites found in fn `f`'s body (nested fn bodies
    /// excluded: those belong to the nested definition).
    pub sites: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Build the graph for every fn in `ws`.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut sites = Vec::with_capacity(ws.fns.len());
        for id in 0..ws.fns.len() {
            sites.push(extract_sites(ws, id));
        }
        CallGraph { sites }
    }

    /// Every fn reachable from `roots` (inclusive) following resolved
    /// edges.
    pub fn reachable(&self, roots: &[FnId]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut stack: Vec<FnId> = roots.to_vec();
        while let Some(f) = stack.pop() {
            for site in &self.sites[f] {
                for &callee in &site.callees {
                    if seen.insert(callee) {
                        stack.push(callee);
                    }
                }
            }
        }
        seen
    }
}

/// Local name → base type ident, for one fn: params, `let` ascriptions,
/// constructor bindings, and `.len()`/`.count()` results (usize — the
/// `div`-by-variable heuristic wants those).
pub fn local_types(ws: &Workspace, id: FnId) -> BTreeMap<String, String> {
    let f = &ws.fns[id];
    let toks = ws.toks_of(id);
    let mut map: BTreeMap<String, String> = BTreeMap::new();
    if let Some(ty) = &f.self_ty {
        map.insert("self".into(), ty.clone());
    }
    // --- params: `ident : <type window>` at paren depth 1 of the sig ----
    let (s0, s1) = f.sig;
    let mut depth = 0i32;
    let mut i = s0;
    while i < s1 {
        let t = &toks[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !(i > 0 && toks[i - 1].is_punct(':'))
        {
            // Type window: through the `,` at depth 1 or the closing `)`.
            let mut d = 0i32;
            let mut j = i + 2;
            let start = j;
            while j < s1 {
                let t = &toks[j];
                if (t.is_punct(',') || t.is_punct(')')) && d == 0 {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    d -= 1;
                }
                j += 1;
            }
            let win: Vec<usize> = (start..j).collect();
            if let Some(ty) = base_ty_of(toks, &win) {
                map.insert(t.text.clone(), ty);
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // --- lets in the body ------------------------------------------------
    let (b0, b1) = f.body;
    let mut i = b0;
    while i < b1 {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i = j;
            continue;
        };
        let name = name_tok.text.clone();
        // Ascription: `let name: Type = ...`.
        if toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut d = 0i32;
            let mut k = j + 2;
            let start = k;
            while k < b1 {
                let t = &toks[k];
                if (t.is_punct('=') || t.is_punct(';')) && d == 0 {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    d -= 1;
                }
                k += 1;
            }
            let win: Vec<usize> = (start..k).collect();
            if let Some(ty) = base_ty_of(toks, &win) {
                map.insert(name, ty);
            }
            i = k;
            continue;
        }
        // Constructor binding: `let name = Type::...(` / `Type {`.
        if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
            let k = j + 2;
            if let Some(t) = toks.get(k) {
                if t.kind == TokKind::Ident
                    && t.text.chars().next().is_some_and(|c| c.is_uppercase())
                    && (toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        || toks.get(k + 1).is_some_and(|t| t.is_punct('{')))
                {
                    map.insert(name.clone(), t.text.clone());
                }
            }
            // `.len()` / `.count()` tail before the `;` → usize.
            let mut d = 0i32;
            let mut k = j + 2;
            while k < b1 {
                let t = &toks[k];
                if t.is_punct(';') && d == 0 {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    d -= 1;
                }
                if d == 0
                    && t.is_punct('.')
                    && toks
                        .get(k + 1)
                        .is_some_and(|t| t.is_ident("len") || t.is_ident("count"))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(')'))
                    && toks.get(k + 4).is_some_and(|t| t.is_punct(';'))
                {
                    map.insert(name.clone(), "usize".into());
                }
                k += 1;
            }
            i = k;
            continue;
        }
        i = j + 1;
    }
    map
}

/// Token ranges of fns nested strictly inside `id`'s body (they get their
/// own definitions; the outer fn must not scan them).
fn nested_ranges(ws: &Workspace, id: FnId) -> Vec<(usize, usize)> {
    let f = &ws.fns[id];
    let (b0, b1) = f.body;
    ws.files[f.file]
        .fns
        .iter()
        .filter(|&&other| other != id)
        .map(|&other| ws.fns[other].body)
        .filter(|&(o0, o1)| o0 > b0 && o1 <= b1)
        .collect()
}

/// Walk `id`'s body and extract call sites.
fn extract_sites(ws: &Workspace, id: FnId) -> Vec<CallSite> {
    let f = &ws.fns[id];
    let toks = ws.toks_of(id);
    let (b0, b1) = f.body;
    if b0 == b1 {
        return Vec::new();
    }
    let locals = local_types(ws, id);
    let nested = nested_ranges(ws, id);
    let in_nested = |i: usize| nested.iter().any(|&(a, b)| (a..b).contains(&i));
    let mut out = Vec::new();
    let mut i = b0;
    while i < b1 {
        if in_nested(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let name = t.text.clone();
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        // `fn name(` — a declaration, not a call.
        if prev.is_some_and(|p| p.is_ident("fn")) {
            i += 1;
            continue;
        }
        // Method call: `recv . name (`.
        if prev.is_some_and(|p| p.is_punct('.')) {
            let site = resolve_method(ws, f, &locals, toks, i, name);
            out.push(site);
            i += 1;
            continue;
        }
        // Path call: `seg :: name (`.
        if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            let site = resolve_path(ws, f, toks, i, name);
            out.push(site);
            i += 1;
            continue;
        }
        // Bare call — skip keywords, constructors, and macro heads.
        if KEYWORDS.contains(&name.as_str())
            || name.chars().next().is_some_and(|c| c.is_uppercase())
        {
            i += 1;
            continue;
        }
        let callees = resolve_bare(ws, f, &name);
        let opaque = callees.is_empty();
        out.push(CallSite {
            tok: i,
            line: t.line,
            name,
            recv_ty: None,
            callees,
            opaque,
        });
        i += 1;
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "in", "move", "fn", "unsafe", "as",
    "else", "break", "continue", "where", "use", "pub", "mod", "impl", "trait", "struct", "enum",
];

fn resolve_method(
    ws: &Workspace,
    f: &FnDef,
    locals: &BTreeMap<String, String>,
    toks: &[Tok],
    i: usize,
    name: String,
) -> CallSite {
    // Receiver tokens: walk back over `.`-joined segments.
    //   v.name(          → v
    //   self.name(       → self
    //   self.field.name( → field type via the struct table
    let mut recv_ty: Option<String> = None;
    if i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == TokKind::Ident {
        let r = &toks[i - 2].text;
        let prev_is_chain = i >= 3 && (toks[i - 3].is_punct('.') || toks[i - 3].is_punct(')'));
        if !prev_is_chain {
            recv_ty = locals.get(r).cloned();
        } else if i >= 4 && toks[i - 3].is_punct('.') && toks[i - 4].is_ident("self") {
            // `self.field.name(` — field type of the enclosing impl type.
            if let Some(self_ty) = &f.self_ty {
                recv_ty = ws.files[f.file]
                    .fields
                    .get(&(self_ty.clone(), r.clone()))
                    .cloned();
            }
        }
    }
    if let Some(ty) = &recv_ty {
        if let Some(ids) = ws.methods.get(&(ty.clone(), name.clone())) {
            return CallSite {
                tok: i,
                line: toks[i].line,
                name,
                recv_ty,
                callees: ids.clone(),
                opaque: false,
            };
        }
    }
    // Opaque: every method/fn with this name, anywhere.
    let callees = ws.by_name.get(&name).cloned().unwrap_or_default();
    CallSite {
        tok: i,
        line: toks[i].line,
        name,
        recv_ty,
        callees,
        opaque: true,
    }
}

fn resolve_path(ws: &Workspace, f: &FnDef, toks: &[Tok], i: usize, name: String) -> CallSite {
    // Collect leading path segments: `a :: b :: name (`.
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        // Skip a turbofish/generic group: `Type::<T>::name` — rare; the
        // segment before `<...>` still resolves below via by-name.
        if j < 3 || toks[j - 3].kind != TokKind::Ident {
            break;
        }
        segs.push(toks[j - 3].text.clone());
        j -= 3;
    }
    segs.reverse();
    // Expand a leading `use` alias (`shard::ShardedPit::insert` where
    // `shard` was imported) into its full path for module matching.
    if let Some(first) = segs.first() {
        if let Some(full) = ws.files[f.file].aliases.get(first) {
            let mut expanded = full.clone();
            expanded.extend(segs[1..].iter().cloned());
            segs = expanded;
        }
    }
    // `Type::method(` — penultimate segment is a type with this method.
    if let Some(ty) = segs.last() {
        if let Some(ids) = ws.methods.get(&(ty.clone(), name.clone())) {
            return CallSite {
                tok: i,
                line: toks[i].line,
                name,
                recv_ty: Some(ty.clone()),
                callees: ids.clone(),
                opaque: false,
            };
        }
    }
    // `module::func(` — by-name candidates whose module path ends with the
    // written segments (crate-prefix aliases like `lidc_ndn` match the
    // crate name `ndn` loosely via suffix/contains).
    let candidates = ws.by_name.get(&name).cloned().unwrap_or_default();
    if !segs.is_empty() {
        let narrowed: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&c| {
                let m = &ws.fns[c].module;
                segs.iter().all(|s| {
                    let s = s.strip_prefix("lidc_").unwrap_or(s);
                    m.iter().any(|seg| seg == s) || ws.fns[c].self_ty.as_deref() == Some(s)
                })
            })
            .collect();
        if !narrowed.is_empty() {
            return CallSite {
                tok: i,
                line: toks[i].line,
                name,
                recv_ty: None,
                callees: narrowed,
                opaque: false,
            };
        }
    }
    CallSite {
        tok: i,
        line: toks[i].line,
        name,
        recv_ty: None,
        callees: candidates,
        opaque: true,
    }
}

fn resolve_bare(ws: &Workspace, f: &FnDef, name: &str) -> Vec<FnId> {
    let candidates = ws.by_name.get(name).cloned().unwrap_or_default();
    // Same file first, then same crate, then everything — the usual
    // shadowing order, approximated.
    let same_file: Vec<FnId> = candidates
        .iter()
        .copied()
        .filter(|&c| ws.fns[c].file == f.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<FnId> = candidates
        .iter()
        .copied()
        .filter(|&c| ws.fns[c].module.first() == f.module.first())
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::test_regions;
    use crate::classify;
    use crate::lexer::lex;

    fn build(files: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| {
                    let lexed = lex(s);
                    let regions = test_regions(&lexed.toks);
                    (classify(p), lexed, regions)
                })
                .collect(),
        );
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn fn_named(ws: &Workspace, name: &str) -> FnId {
        ws.by_name.get(name).map(|v| v[0]).unwrap()
    }

    #[test]
    fn direct_call_resolves_same_file() {
        let (ws, cg) = build(&[(
            "crates/ndn/src/x.rs",
            "fn a() { b(); }\nfn b() {}",
        )]);
        let a = fn_named(&ws, "a");
        let b = fn_named(&ws, "b");
        assert_eq!(cg.sites[a].len(), 1);
        assert_eq!(cg.sites[a][0].callees, vec![b]);
        assert!(!cg.sites[a][0].opaque);
        assert!(cg.reachable(&[a]).contains(&b));
    }

    #[test]
    fn method_resolves_via_declared_param_type() {
        let (ws, cg) = build(&[(
            "crates/ndn/src/x.rs",
            "struct Pit;\nimpl Pit {\n    fn probe(&self) {}\n}\nfn scan(pit: &mut Pit) { pit.probe(); }",
        )]);
        let scan = fn_named(&ws, "scan");
        let probe = fn_named(&ws, "probe");
        let site = &cg.sites[scan][0];
        assert_eq!(site.recv_ty.as_deref(), Some("Pit"));
        assert_eq!(site.callees, vec![probe]);
        assert!(!site.opaque);
    }

    #[test]
    fn method_resolves_via_let_bound_constructor() {
        let (ws, cg) = build(&[(
            "crates/ndn/src/x.rs",
            "struct Fwd;\nimpl Fwd {\n    fn new() -> Fwd { Fwd }\n    fn go(&self) {}\n}\nfn run() {\n    let f = Fwd::new();\n    f.go();\n}",
        )]);
        let run = fn_named(&ws, "run");
        let go = fn_named(&ws, "go");
        let go_site = cg.sites[run].iter().find(|s| s.name == "go").unwrap();
        assert_eq!(go_site.recv_ty.as_deref(), Some("Fwd"));
        assert_eq!(go_site.callees, vec![go]);
    }

    #[test]
    fn self_field_resolves_through_struct_table() {
        let (ws, cg) = build(&[(
            "crates/ndn/src/x.rs",
            "struct Pit;\nimpl Pit {\n    fn sweep(&mut self) {}\n}\nstruct Fwd { pit: Pit }\nimpl Fwd {\n    fn tick(&mut self) { self.pit.sweep(); }\n}",
        )]);
        let tick = fn_named(&ws, "tick");
        let sweep = fn_named(&ws, "sweep");
        let site = &cg.sites[tick][0];
        assert_eq!(site.recv_ty.as_deref(), Some("Pit"));
        assert_eq!(site.callees, vec![sweep]);
    }

    #[test]
    fn unresolvable_method_keeps_opaque_by_name_edges() {
        let (ws, cg) = build(&[(
            "crates/ndn/src/x.rs",
            "struct A;\nimpl A {\n    fn select(&self) {}\n}\nstruct B;\nimpl B {\n    fn select(&self) {}\n}\nfn pick(x: &Chooser) { x.strategy().select(); }",
        )]);
        let pick = fn_named(&ws, "pick");
        let site = cg.sites[pick].iter().find(|s| s.name == "select").unwrap();
        assert!(site.opaque, "chained receiver is unresolvable");
        assert_eq!(site.callees.len(), 2, "by-name fallback keeps both impls");
    }

    #[test]
    fn cross_file_path_call_resolves_by_module() {
        let (ws, cg) = build(&[
            (
                "crates/ndn/src/net.rs",
                "pub fn connect() {}",
            ),
            (
                "crates/core/src/overlay.rs",
                "use lidc_ndn::net;\nfn wire() { net::connect(); }",
            ),
        ]);
        let wire = fn_named(&ws, "wire");
        let connect = fn_named(&ws, "connect");
        let site = &cg.sites[wire][0];
        assert_eq!(site.callees, vec![connect]);
        assert!(!site.opaque);
    }

    #[test]
    fn reachability_transits_methods_and_stops_at_unrelated() {
        let (ws, cg) = build(&[(
            "crates/ndn/src/x.rs",
            "struct T;\nimpl T {\n    fn a(&self) { self.b(); }\n    fn b(&self) { free(); }\n}\nfn free() {}\nfn island() {}",
        )]);
        let a = fn_named(&ws, "a");
        let r = cg.reachable(&[a]);
        assert!(r.contains(&fn_named(&ws, "b")));
        assert!(r.contains(&fn_named(&ws, "free")));
        assert!(!r.contains(&fn_named(&ws, "island")));
    }

    #[test]
    fn nested_fn_bodies_are_not_scanned_as_outer_sites() {
        let (ws, cg) = build(&[(
            "crates/ndn/src/x.rs",
            "fn outer() {\n    fn inner() { deep(); }\n    inner();\n}\nfn deep() {}",
        )]);
        let outer = fn_named(&ws, "outer");
        let names: Vec<&str> = cg.sites[outer].iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["inner"], "deep() belongs to inner, not outer");
        // But reachability still flows outer → inner → deep.
        assert!(cg.reachable(&[outer]).contains(&fn_named(&ws, "deep")));
    }
}
