//! A hand-rolled Rust lexer, just deep enough for rule matching.
//!
//! The linter never needs types or an AST — every rule is a pattern over
//! identifiers, punctuation, and attribute/brace structure — so the lexer
//! only has to get the *boundaries* right: comments (line, nested block),
//! string/char/byte literals (plain and raw), lifetimes vs. char literals,
//! numbers, identifiers. Everything inside a literal or comment is opaque
//! to the rules, which is what makes it safe for the linter to scan its
//! own sources (rule names appear there only as string constants).

/// Token classes. Punctuation stays one character per token; rules that
/// need `::` or `#[` match adjacent tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `in`, `let`, `static`, `mut`, ...).
    Ident,
    /// One punctuation character.
    Punct,
    /// String / raw string / byte string / char / number literal.
    Literal,
    /// `'lifetime` (or a loop label).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment with its 1-based line (the line the comment *starts* on).
/// `text` excludes the `//` / `/*` markers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The lexed file: the token stream plus every comment (the allow-directive
/// parser consumes the comments; the rules consume the tokens).
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated constructs are tolerated (the tail is
/// swallowed into the open token) — the linter runs on code that already
/// compiles, so this path only matters for malformed fixtures.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.iter().filter(|&&c| c == '\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: b[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1;
            let mut j = start;
            while j < b.len() && depth > 0 {
                if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                text: b[start..end].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Raw strings / raw byte strings: r"..", r#".."#, br#".."#.
        if c == 'r' || c == 'b' || c == 'c' {
            if let Some((tok_len, consumed)) = raw_string_len(&b[i..]) {
                let text: String = b[i..i + tok_len].iter().collect();
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text,
                    line,
                });
                bump_lines!(b[i..i + consumed]);
                i += consumed;
                continue;
            }
        }
        // Plain strings and byte strings.
        if c == '"' || ((c == 'b' || c == 'c') && i + 1 < b.len() && b[i + 1] == '"') {
            let start = i;
            let mut j = if c == '"' { i + 1 } else { i + 2 };
            while j < b.len() {
                match b[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let text: String = b[start..j.min(b.len())].iter().collect();
            bump_lines!(b[start..j.min(b.len())]);
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text,
                line,
            });
            i = j;
            continue;
        }
        // Char literal vs. lifetime. After `'`: a lifetime is `'ident` NOT
        // followed by a closing quote; anything else is a char literal.
        if c == '\'' {
            let mut j = i + 1;
            let is_lifetime = j < b.len()
                && (b[j].is_alphabetic() || b[j] == '_')
                && !(j + 1 < b.len() && b[j + 1] == '\'');
            if is_lifetime {
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: consume escapes until the closing quote.
            while j < b.len() {
                match b[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: b[i..j.min(b.len())].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numbers (0x.., 1_000, 1.5e-9, suffixes). `1..2` keeps the range
        // dots; `.5`-style floats don't occur in rustc-accepted code.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i + 1;
            if c == '0' && j < b.len() && (b[j] == 'x' || b[j] == 'o' || b[j] == 'b') {
                j += 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            } else {
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
                // Fractional part — only when not a `..` range.
                if j + 1 < b.len() && b[j] == '.' && b[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                        j += 1;
                    }
                }
                // Exponent.
                if j < b.len() && (b[j] == 'e' || b[j] == 'E') {
                    let mut k = j + 1;
                    if k < b.len() && (b[k] == '+' || b[k] == '-') {
                        k += 1;
                    }
                    if k < b.len() && b[k].is_ascii_digit() {
                        j = k;
                        while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix (u64, f32, usize...).
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: b[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Identifiers / keywords (incl. raw identifiers `r#type`).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i + 1;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Raw identifier `r#ident` is caught above via raw_string_len
        // returning None and `r` lexing as an ident; the `#` and name lex
        // as separate tokens, which is fine for our patterns.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// If `rest` starts a raw (byte) string (`r"`, `r#`, `br`, `cr` forms),
/// return `(token_len, consumed)` — both equal — else `None`.
fn raw_string_len(rest: &[char]) -> Option<(usize, usize)> {
    let mut j = 0usize;
    if rest[j] == 'b' || rest[j] == 'c' {
        j += 1;
    }
    if j >= rest.len() || rest[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < rest.len() && rest[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= rest.len() || rest[j] != '"' {
        return None;
    }
    j += 1;
    // Find closing `"####` with the same number of hashes.
    while j < rest.len() {
        if rest[j] == '"' {
            let mut k = 0usize;
            while k < hashes && j + 1 + k < rest.len() && rest[j + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                let end = j + 1 + hashes;
                return Some((end, end));
            }
        }
        j += 1;
    }
    Some((rest.len(), rest.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap in a /* nested */ block */
            let s = "thread_rng inside a string";
            let r = r#"SystemTime raw"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let lx = lex(src);
        let b_tok = lx.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3, "multi-line string advanced the line count");
    }

    #[test]
    fn comments_carry_text_and_line() {
        let lx = lex("let x = 1; // lidc-lint: allow(wall-clock) reason=\"t\"\nlet y = 2;");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("lidc-lint"));
        assert_eq!(lx.comments[0].line, 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lx = lex("for i in 0..10 {}");
        let dots = lx.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
