//! `lidc_lint` — workspace determinism & actor-isolation static analysis.
//!
//! The LIDC workspace's central claim is a determinism contract:
//! bit-identical schedules, metrics, and chaos fingerprints for a fixed
//! seed at any thread count and shard width. That contract is enforced by
//! convention (BTreeMap by default, per-actor `DetRng` streams, seeded
//! `FaultSchedule::generate`) — and conventions erode. This crate is the
//! tool that makes the convention checkable on every commit: a hand-rolled
//! lexer plus lightweight token-pattern rule passes (no rustc plumbing, no
//! vendored dependencies) that flag the ways nondeterminism has actually
//! tried to enter this codebase:
//!
//! * [`rules::WALL_CLOCK`] — `Instant::now` / `SystemTime` outside
//!   `crates/bench` and test code;
//! * [`rules::AMBIENT_RNG`] — `thread_rng` / `rand::random` / OS entropy
//!   anywhere;
//! * [`rules::UNORDERED_ITER`] — hash-container iteration that doesn't
//!   visibly feed a sort or an order-insensitive reduction;
//! * [`rules::ACTOR_ISOLATION`] — `static mut`, or `Mutex`/`RwLock`/
//!   `RefCell` shared state inside actor crates;
//! * [`rules::FLOAT_ACCUM`] — float accumulation over unordered
//!   iteration.
//!
//! Sites where a rule is deliberately broken carry a scoped, justified
//! escape hatch (`// lidc-lint: allow(<rule>) reason="..."` — see
//! [`allow`]); an allow that suppresses nothing is itself a finding.
//! `docs/DETERMINISM.md` is the human-facing statement of the contract.

pub mod allow;
pub mod analyze;
pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod semantic;
pub mod symbols;

pub use analyze::{analyze, analyze_files, FileCtx, Finding, SourceFile};

use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose `src/` is actor code: state lives inside actors, and
/// actors communicate only through the engine. (`simcore` is the engine —
/// it *implements* the concurrency machinery — and `genomics` is a pure
/// compute library called from actors; neither is subject to the
/// shared-state ban.)
const ACTOR_CRATES: &[&str] = &[
    "crates/ndn/",
    "crates/core/",
    "crates/k8s/",
    "crates/datalake/",
    "crates/baseline/",
];

/// Classify a workspace-relative path into a [`FileCtx`].
pub fn classify(rel_path: &str) -> FileCtx {
    let is_test_code = rel_path
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    FileCtx {
        rel_path: rel_path.to_string(),
        is_bench_crate: rel_path.starts_with("crates/bench/"),
        is_test_code,
        is_actor_crate: !is_test_code && ACTOR_CRATES.iter().any(|c| rel_path.starts_with(c)),
    }
}

/// Scan one file on disk. `root` anchors the relative path used in
/// findings and classification.
pub fn scan_file(root: &Path, path: &Path) -> std::io::Result<Vec<Finding>> {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let src = fs::read_to_string(path)?;
    Ok(analyze(&classify(&rel), &src))
}

/// Directories never scanned: vendored stand-ins (external idiom, not
/// ours to police), build output, VCS metadata, and the linter's own
/// test fixtures (which exist to violate the rules).
fn skip_dir(rel: &str) -> bool {
    rel == "vendor"
        || rel == "target"
        || rel.starts_with(".")
        || rel == "crates/lint/tests/fixtures"
        || rel.ends_with("/target")
}

/// Recursively collect every `.rs` file under `root` that the lint
/// polices, in sorted order (deterministic output, of course).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if path.is_dir() {
                if !skip_dir(&rel) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Load every policed `.rs` file under `root` into memory, classified.
/// The semantic rules need the whole workspace in view even when the
/// caller only wants findings for a subset of files.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<analyze::SourceFile>> {
    let mut out = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(analyze::SourceFile {
            ctx: classify(&rel),
            src: fs::read_to_string(&path)?,
        });
    }
    Ok(out)
}

/// Scan the whole workspace rooted at `root` — per-file rules plus the
/// cross-file semantic rules. Findings come back sorted by
/// (file, line, rule).
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_files(&load_workspace(root)?))
}

/// Scan the workspace but keep only findings in files `git` reports as
/// changed relative to `base` (tracked diffs plus untracked files). The
/// whole workspace is still loaded and analyzed so the cross-file rules
/// see every caller — only the *reporting* is narrowed, which is what a
/// pre-commit hook wants: fast signal, no false "clean" from a blinkered
/// call graph.
pub fn scan_changed(root: &Path, base: &str) -> std::io::Result<Vec<Finding>> {
    let changed = git_changed_files(root, base)?;
    let mut findings = analyze_files(&load_workspace(root)?);
    findings.retain(|f| changed.contains(&f.file));
    Ok(findings)
}

/// The `.rs` files `git diff --name-only <base>` lists, plus untracked
/// ones, as workspace-relative forward-slash paths.
fn git_changed_files(root: &Path, base: &str) -> std::io::Result<std::collections::BTreeSet<String>> {
    let mut out = std::collections::BTreeSet::new();
    for args in [
        vec!["diff", "--name-only", base, "--"],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let run = std::process::Command::new("git").arg("-C").arg(root).args(&args).output()?;
        if !run.status.success() {
            return Err(std::io::Error::other(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&run.stderr).trim()
            )));
        }
        for line in String::from_utf8_lossy(&run.stdout).lines() {
            let line = line.trim();
            if line.ends_with(".rs") {
                out.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(out)
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Render findings as a JSON array (hand-rolled: the linter takes no
/// dependencies).
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            esc(f.rule),
            esc(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let c = classify("crates/ndn/src/forwarder.rs");
        assert!(c.is_actor_crate && !c.is_test_code && !c.is_bench_crate);
        let c = classify("crates/ndn/tests/props.rs");
        assert!(!c.is_actor_crate && c.is_test_code);
        let c = classify("crates/bench/src/bin/table1.rs");
        assert!(c.is_bench_crate && !c.is_actor_crate);
        let c = classify("crates/bench/benches/micro.rs");
        assert!(c.is_test_code);
        let c = classify("crates/simcore/src/engine.rs");
        assert!(!c.is_actor_crate, "the engine implements the machinery");
        let c = classify("tests/chaos.rs");
        assert!(c.is_test_code);
        let c = classify("src/lib.rs");
        assert!(!c.is_test_code && !c.is_actor_crate);
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let f = vec![Finding {
            file: "a\\b.rs".into(),
            line: 3,
            rule: "wall-clock",
            message: "say \"no\"".into(),
        }];
        let j = to_json(&f);
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("\\\"no\\\""));
    }
}
