//! The workspace symbol graph: who defines what, where.
//!
//! PR 7's rules were per-file token patterns; the inter-procedural rules
//! (`panic-path`, `effect-purity`) need to know which *function* a token
//! lives in and which functions that function can call. This module builds
//! the definition side of that picture from the lexed token streams:
//!
//! * every `fn` item — free functions, `impl` methods (with their enclosing
//!   type and, for `impl Trait for Type`, the trait), trait default
//!   methods, and nested fns — with its body token range;
//! * per-file `use` aliases (`use a::b::C;`, `use a::b::{C, D as E};`) so
//!   path calls resolve across crates;
//! * struct field types (`self.field.method()` receiver resolution);
//! * the module path each item sits in (crate name + `mod` nesting).
//!
//! Everything stays deliberately conservative and heuristic — no rustc, no
//! type inference beyond declared/let-bound types (the PR-7 machinery,
//! generalized from hash containers to arbitrary base type idents). Where
//! resolution fails, the call graph keeps an *opaque* edge so reachability
//! over-approximates instead of silently dropping paths.

use std::collections::BTreeMap;

use crate::analyze::FileCtx;
use crate::lexer::{Lexed, Tok, TokKind};

/// Index of a function definition in [`Workspace::fns`].
pub type FnId = usize;

/// One `fn` definition anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// The function's bare name.
    pub name: String,
    /// Base ident of the enclosing `impl` type (`Forwarder` for
    /// `impl Actor for Forwarder`), if any.
    pub self_ty: Option<String>,
    /// Base ident of the implemented trait (`Actor` in the example), or the
    /// trait a default method body sits in.
    pub trait_name: Option<String>,
    /// Module path: crate name, then `mod` nesting inside the file.
    pub module: Vec<String>,
    /// Token index range of the signature: `fn` through the token before
    /// the body `{` (or the terminating `;`).
    pub sig: (usize, usize),
    /// Token index range of the body including both braces; `start == end`
    /// for bodiless trait declarations.
    pub body: (usize, usize),
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Defined inside a test region or a test/bench/example file — such
    /// fns participate in resolution (soundness) but never host findings.
    pub is_test: bool,
}

/// One analyzed file: classification, token stream, and its symbols.
pub struct FileSyms {
    pub ctx: FileCtx,
    pub lexed: Lexed,
    /// `#[test]` / `#[cfg(test)]` line regions (from `analyze`).
    pub test_regions: Vec<(u32, u32)>,
    /// `use` aliases: local name → full path segments.
    pub aliases: BTreeMap<String, Vec<String>>,
    /// Struct field types: (struct name, field name) → base type ident.
    pub fields: BTreeMap<(String, String), String>,
    /// FnIds defined in this file, in source order.
    pub fns: Vec<FnId>,
}

/// The whole workspace's symbol tables.
pub struct Workspace {
    pub files: Vec<FileSyms>,
    pub fns: Vec<FnDef>,
    /// Bare fn/method name → every definition with that name.
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// (enclosing type, method name) → definitions.
    pub methods: BTreeMap<(String, String), Vec<FnId>>,
}

/// Derive the module path prefix from a workspace-relative path:
/// crate name (`crates/ndn/...` → `ndn`, else the root crate `lidc`),
/// then the in-crate file path with `src`/`lib`/`main`/`mod` elided
/// (`crates/ndn/src/net.rs` → `["ndn", "net"]`).
fn module_of(rel_path: &str) -> Vec<String> {
    let mut parts: Vec<&str> = rel_path.split('/').collect();
    let krate = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts.drain(..2).nth(1).unwrap().to_string()
    } else {
        "lidc".to_string()
    };
    let mut module = vec![krate];
    for (i, part) in parts.iter().enumerate() {
        let seg = if i + 1 == parts.len() {
            part.strip_suffix(".rs").unwrap_or(part)
        } else {
            part
        };
        if matches!(seg, "src" | "lib" | "main" | "mod") {
            continue;
        }
        module.push(seg.to_string());
    }
    module
}

impl Workspace {
    /// Build the symbol graph over `files` (classification + lexed stream +
    /// test regions per file, in scan order).
    pub fn build(files: Vec<(FileCtx, Lexed, Vec<(u32, u32)>)>) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            methods: BTreeMap::new(),
        };
        for (ctx, lexed, test_regions) in files {
            let file_idx = ws.files.len();
            let module = module_of(&ctx.rel_path);
            let mut fs = FileSyms {
                ctx,
                lexed,
                test_regions,
                aliases: BTreeMap::new(),
                fields: BTreeMap::new(),
                fns: Vec::new(),
            };
            let end = fs.lexed.toks.len();
            let toks = fs.lexed.toks.clone();
            let regions = fs.test_regions.clone();
            let mut items = ItemParser {
                file: file_idx,
                file_is_test: fs.ctx.is_test_code,
                test_regions: &regions,
                toks: &toks,
                module,
                aliases: &mut fs.aliases,
                fields: &mut fs.fields,
                out: &mut ws.fns,
                fn_ids: &mut fs.fns,
            };
            items.parse_items(0, end, None);
            ws.files.push(fs);
        }
        for (id, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(ty) = &f.self_ty {
                ws.methods
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
        }
        ws
    }

    /// The token stream of the file defining `id`.
    pub fn toks_of(&self, id: FnId) -> &[Tok] {
        &self.files[self.fns[id].file].lexed.toks
    }

    /// True when `line` in `file` sits in a test region.
    pub fn in_test_region(&self, file: usize, line: u32) -> bool {
        self.files[file]
            .test_regions
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }
}

/// Enclosing-impl context while parsing.
#[derive(Clone)]
struct ImplCtx {
    self_ty: Option<String>,
    trait_name: Option<String>,
}

struct ItemParser<'a> {
    file: usize,
    file_is_test: bool,
    test_regions: &'a [(u32, u32)],
    toks: &'a [Tok],
    module: Vec<String>,
    aliases: &'a mut BTreeMap<String, Vec<String>>,
    fields: &'a mut BTreeMap<(String, String), String>,
    out: &'a mut Vec<FnDef>,
    fn_ids: &'a mut Vec<FnId>,
}

impl ItemParser<'_> {
    /// Parse item-position constructs in `[i, end)`; `impl_ctx` is set
    /// inside an `impl`/`trait` body (so `fn` items become methods).
    fn parse_items(&mut self, mut i: usize, end: usize, impl_ctx: Option<&ImplCtx>) {
        while i < end {
            let t = &self.toks[i];
            if t.is_ident("mod") && self.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let name = self.toks[i + 1].text.clone();
                match self.toks.get(i + 2) {
                    Some(t) if t.is_punct('{') => {
                        let close = match_brace(self.toks, i + 2, end);
                        self.module.push(name);
                        self.parse_items(i + 3, close, None);
                        self.module.pop();
                        i = close + 1;
                        continue;
                    }
                    _ => {
                        i += 2;
                        continue;
                    }
                }
            }
            if t.is_ident("use") {
                i = self.parse_use(i, end);
                continue;
            }
            if t.is_ident("impl") {
                i = self.parse_impl(i, end);
                continue;
            }
            if t.is_ident("trait")
                && self.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let name = self.toks[i + 1].text.clone();
                // Find the trait body `{` at depth 0 (skipping supertrait
                // bounds and where clauses), then parse default methods.
                let mut j = i + 2;
                let mut depth = 0i32;
                while j < end {
                    let t = &self.toks[j];
                    if t.is_punct('{') && depth == 0 {
                        break;
                    }
                    bump_depth_at(self.toks, j, &mut depth);
                    if t.is_punct(';') && depth == 0 {
                        break; // `trait Alias = ...;` — nothing to parse
                    }
                    j += 1;
                }
                if j < end && self.toks[j].is_punct('{') {
                    let close = match_brace(self.toks, j, end);
                    let ctx = ImplCtx {
                        self_ty: None,
                        trait_name: Some(name),
                    };
                    self.parse_items(j + 1, close, Some(&ctx));
                    i = close + 1;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if t.is_ident("struct")
                && self.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                i = self.parse_struct(i, end);
                continue;
            }
            if t.is_ident("fn") && self.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                i = self.parse_fn(i, end, impl_ctx);
                continue;
            }
            // Skip balanced brace groups we don't model (enum bodies, const
            // initializers, macro invocation bodies...).
            if t.is_punct('{') {
                i = match_brace(self.toks, i, end) + 1;
                continue;
            }
            i += 1;
        }
    }

    /// `use a::b::C;` / `use a::b::{C, D as E, f::G};` — record leaf
    /// aliases. Returns the index after the `;`.
    fn parse_use(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        let mut prefix: Vec<String> = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // prefix lengths at `{`
        let mut last: Option<String> = None;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct(';') {
                if let Some(name) = last.take() {
                    let mut path = prefix.clone();
                    path.push(name.clone());
                    self.aliases.insert(name, path);
                }
                return j + 1;
            }
            if t.kind == TokKind::Ident {
                if t.text == "as" {
                    // `X as Y`: the alias is Y, the path leaf is X.
                    let leaf = last.take();
                    if let (Some(leaf), Some(alias)) = (
                        leaf,
                        self.toks.get(j + 1).filter(|t| t.kind == TokKind::Ident),
                    ) {
                        let mut path = prefix.clone();
                        path.push(leaf);
                        self.aliases.insert(alias.text.clone(), path);
                    }
                    j += 2;
                    continue;
                }
                last = Some(t.text.clone());
            } else if t.is_punct(':')
                && self.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                j += 2;
                continue;
            } else if t.is_punct('{') {
                stack.push(prefix.len());
            } else if t.is_punct(',') {
                if let Some(name) = last.take() {
                    let mut path = prefix.clone();
                    path.push(name.clone());
                    self.aliases.insert(name, path);
                }
                // Reset to the depth of the innermost group.
                if let Some(&base) = stack.last() {
                    prefix.truncate(base);
                }
            } else if t.is_punct('}') {
                if let Some(name) = last.take() {
                    let mut path = prefix.clone();
                    path.push(name.clone());
                    self.aliases.insert(name, path);
                }
                if let Some(base) = stack.pop() {
                    prefix.truncate(base);
                }
            } else if t.is_punct('*') {
                last = None; // glob — nothing to alias
            }
            j += 1;
        }
        end
    }

    /// `impl<...> [Trait for] Type { ... }` — parse the header, then the
    /// body as methods. Returns the index after the body.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        // Skip the generic parameter group right after `impl`.
        if j < end && self.toks[j].is_punct('<') {
            j = match_angle(self.toks, j, end) + 1;
        }
        // Collect header tokens up to the body `{` (stopping a depth-0
        // `where` clause changes nothing: `for` can't appear there first).
        let mut depth = 0i32;
        let mut header: Vec<usize> = Vec::new();
        while j < end {
            let t = &self.toks[j];
            if t.is_punct('{') && depth == 0 {
                break;
            }
            if t.is_punct(';') && depth == 0 {
                return j + 1; // `impl Trait for Type;`-style (rare)
            }
            bump_depth_at(self.toks, j, &mut depth);
            header.push(j);
            j += 1;
        }
        if j >= end {
            return end;
        }
        // Split at a top-level `for` (lifetimes `for<'a>` sit inside `<>`
        // groups and are never at our recorded depth 0 — match_angle above
        // and bump_depth track `<` only after `impl`, so a `for<'a>` HRTB
        // in a where clause could confuse us; impl headers in this
        // workspace don't use them).
        let split = header.iter().position(|&k| {
            self.toks[k].is_ident("for")
                && !self.toks.get(k + 1).is_some_and(|t| t.is_punct('<'))
        });
        let (trait_name, ty_toks) = match split {
            Some(p) => (
                base_ty_of(self.toks, &header[..p]),
                header[p + 1..].to_vec(),
            ),
            None => (None, header.clone()),
        };
        let self_ty = base_ty_of(self.toks, &ty_toks);
        let close = match_brace(self.toks, j, end);
        let ctx = ImplCtx {
            self_ty,
            trait_name,
        };
        self.parse_items(j + 1, close, Some(&ctx));
        close + 1
    }

    /// `struct Name { field: Type, ... }` — record field base types.
    fn parse_struct(&mut self, i: usize, end: usize) -> usize {
        let name = self.toks[i + 1].text.clone();
        let mut j = i + 2;
        let mut depth = 0i32;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct('{') && depth == 0 {
                break;
            }
            if t.is_punct(';') && depth == 0 {
                return j + 1; // unit or tuple struct
            }
            if t.is_punct('(') && depth == 0 {
                // Tuple struct: skip the field list, then expect `;`.
                let mut d = 1i32;
                j += 1;
                while j < end && d > 0 {
                    if self.toks[j].is_punct('(') {
                        d += 1;
                    } else if self.toks[j].is_punct(')') {
                        d -= 1;
                    }
                    j += 1;
                }
                continue;
            }
            bump_depth_at(self.toks, j, &mut depth);
            j += 1;
        }
        if j >= end {
            return end;
        }
        let close = match_brace(self.toks, j, end);
        // Fields: `ident :` at brace depth 1, type window up to the
        // field-separating `,` at depth 1.
        let mut k = j + 1;
        while k < close {
            let t = &self.toks[k];
            if t.kind == TokKind::Ident
                && self.toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && !self.toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                let field = t.text.clone();
                // Type window: through the `,` at depth 0 (rel. to here).
                let mut d = 0i32;
                let mut m = k + 2;
                let start = m;
                while m < close {
                    let t = &self.toks[m];
                    if t.is_punct(',') && d == 0 {
                        break;
                    }
                    bump_depth_at(self.toks, m, &mut d);
                    m += 1;
                }
                let win: Vec<usize> = (start..m).collect();
                if let Some(ty) = base_ty_of(self.toks, &win) {
                    self.fields.insert((name.clone(), field), ty);
                }
                k = m + 1;
                continue;
            }
            // Skip attribute groups and visibility modifiers naturally.
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                let mut d = 1i32;
                k += 1;
                while k < close && d > 0 {
                    let t = &self.toks[k];
                    if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                        d += 1;
                    } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                        d -= 1;
                    }
                    k += 1;
                }
                continue;
            }
            k += 1;
        }
        close + 1
    }

    /// `fn name(...) [-> T] [where ...] { body }` — record the definition
    /// and recurse into the body for nested items. Returns the index after
    /// the body (or the `;` for bodiless declarations).
    fn parse_fn(&mut self, i: usize, end: usize, impl_ctx: Option<&ImplCtx>) -> usize {
        let name = self.toks[i + 1].text.clone();
        let line = self.toks[i].line;
        // Scan for the body `{` at depth 0, or a `;` (trait declaration).
        let mut j = i + 2;
        let mut depth = 0i32;
        // Skip generic params on the fn itself.
        if j < end && self.toks[j].is_punct('<') {
            j = match_angle(self.toks, j, end) + 1;
        }
        let sig_start = i;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct('{') && depth == 0 {
                break;
            }
            if t.is_punct(';') && depth == 0 {
                // Bodiless: trait method declaration / extern fn.
                self.push_fn(name, line, (sig_start, j), (j, j), impl_ctx);
                return j + 1;
            }
            bump_depth_at(self.toks, j, &mut depth);
            j += 1;
        }
        if j >= end {
            return end;
        }
        let close = match_brace(self.toks, j, end);
        self.push_fn(
            name,
            line,
            (sig_start, j),
            (j, close + 1),
            impl_ctx,
        );
        // Nested items (fns, impls) inside the body.
        self.parse_items(j + 1, close, None);
        close + 1
    }

    fn push_fn(
        &mut self,
        name: String,
        line: u32,
        sig: (usize, usize),
        body: (usize, usize),
        impl_ctx: Option<&ImplCtx>,
    ) {
        let in_test_region = self
            .test_regions
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line));
        let id = self.out.len();
        self.out.push(FnDef {
            file: self.file,
            name,
            self_ty: impl_ctx.and_then(|c| c.self_ty.clone()),
            trait_name: impl_ctx.and_then(|c| c.trait_name.clone()),
            module: self.module.clone(),
            sig,
            body,
            line,
            is_test: self.file_is_test || in_test_region,
        });
        self.fn_ids.push(id);
    }
}

/// Index of the `}` matching the `{` at `open` (or `end - 1`).
pub fn match_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 1i32;
    let mut i = open + 1;
    while i < end {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Index of the `>` matching the `<` at `open` (or `end - 1`). The lexer
/// emits `>>` as two tokens, so plain counting works.
fn match_angle(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 1i32;
    let mut i = open + 1;
    while i < end {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

fn bump_depth(t: &Tok, depth: &mut i32) {
    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
        *depth += 1;
    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
        *depth -= 1;
    }
}

/// [`bump_depth`], except a `>` that closes a `->` return arrow (or a
/// `=>` fat arrow) is an operator, not a generic-group close. The lexer
/// emits single-char puncts, so the arrow arrives as two tokens.
fn bump_depth_at(toks: &[Tok], i: usize, depth: &mut i32) {
    if toks[i].is_punct('>')
        && i > 0
        && (toks[i - 1].is_punct('-') || toks[i - 1].is_punct('='))
    {
        return;
    }
    bump_depth(&toks[i], depth);
}

/// Base type ident of a type token window: skips references, `mut`,
/// `dyn`/`impl`, lifetimes; resolves the path's **last** segment before any
/// generic arguments (`tables::shard::ShardedPit<K>` → `ShardedPit`,
/// `&mut Ctx<'_>` → `Ctx`, `Arc<RwLock<T>>` → `Arc`).
pub fn base_ty_of(toks: &[Tok], win: &[usize]) -> Option<String> {
    let mut last: Option<String> = None;
    let mut depth = 0i32;
    for &k in win {
        let t = &toks[k];
        if t.is_punct('<') {
            // Generic args of the segment we just read — done at depth 0.
            if depth == 0 && last.is_some() {
                return last;
            }
            depth += 1;
            continue;
        }
        if t.is_punct('>') {
            depth -= 1;
            continue;
        }
        if depth > 0 {
            continue;
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "mut" | "dyn" | "impl" | "const" => {}
                "where" => break,
                _ => last = Some(t.text.clone()),
            }
        } else if t.is_punct('(') {
            // Tuple / fn-pointer type — no single base ident.
            if last.is_none() {
                return None;
            }
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::test_regions;
    use crate::classify;
    use crate::lexer::lex;

    fn build_one(path: &str, src: &str) -> Workspace {
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        Workspace::build(vec![(classify(path), lexed, regions)])
    }

    #[test]
    fn free_fn_and_method_defs() {
        let ws = build_one(
            "crates/ndn/src/x.rs",
            "fn free() { helper(); }\n\
             struct Fwd { pit: Pit }\n\
             impl Fwd {\n    fn probe(&self) {}\n}\n\
             impl Actor for Fwd {\n    fn on_message(&mut self) {}\n}",
        );
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "probe", "on_message"]);
        assert_eq!(ws.fns[0].self_ty, None);
        assert_eq!(ws.fns[1].self_ty.as_deref(), Some("Fwd"));
        assert_eq!(ws.fns[2].self_ty.as_deref(), Some("Fwd"));
        assert_eq!(ws.fns[2].trait_name.as_deref(), Some("Actor"));
        assert_eq!(ws.fns[0].module, vec!["ndn", "x"]);
        assert_eq!(
            ws.files[0].fields.get(&("Fwd".into(), "pit".into())),
            Some(&"Pit".to_string())
        );
    }

    #[test]
    fn generic_impl_and_module_nesting() {
        let ws = build_one(
            "crates/core/src/x.rs",
            "mod inner {\n    impl<K: Ord> Table<K> {\n        fn get(&self) {}\n    }\n}",
        );
        assert_eq!(ws.fns.len(), 1);
        assert_eq!(ws.fns[0].self_ty.as_deref(), Some("Table"));
        assert_eq!(ws.fns[0].module, vec!["core", "x", "inner"]);
    }

    #[test]
    fn use_aliases_resolve_leaves_and_renames() {
        let ws = build_one(
            "crates/core/src/x.rs",
            "use lidc_ndn::net::connect;\nuse std::collections::{BTreeMap, HashMap as Unordered};\n",
        );
        let al = &ws.files[0].aliases;
        assert_eq!(
            al.get("connect"),
            Some(&vec!["lidc_ndn".to_string(), "net".into(), "connect".into()])
        );
        assert_eq!(
            al.get("Unordered"),
            Some(&vec!["std".to_string(), "collections".into(), "HashMap".into()])
        );
        assert!(al.get("HashMap").is_none(), "renamed import keeps only the alias");
    }

    #[test]
    fn nested_fns_are_separate_defs() {
        let ws = build_one(
            "crates/core/src/x.rs",
            "fn outer() {\n    fn inner() {}\n    inner();\n}",
        );
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &ws.fns[0];
        let inner = &ws.fns[1];
        assert!(
            inner.body.0 > outer.body.0 && inner.body.1 <= outer.body.1,
            "inner body nests inside outer body"
        );
    }

    #[test]
    fn trait_default_methods_carry_the_trait() {
        let ws = build_one(
            "crates/simcore/src/x.rs",
            "trait Actor {\n    fn on_message(&mut self);\n    fn on_batch(&mut self) {\n        self.on_message();\n    }\n}",
        );
        assert_eq!(ws.fns.len(), 2);
        assert_eq!(ws.fns[0].trait_name.as_deref(), Some("Actor"));
        assert_eq!(ws.fns[0].body.0, ws.fns[0].body.1, "declaration has no body");
        assert!(ws.fns[1].body.1 > ws.fns[1].body.0);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let ws = build_one(
            "crates/core/src/x.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}",
        );
        assert!(!ws.fns[0].is_test);
        assert!(ws.fns[1].is_test);
    }

    #[test]
    fn base_ty_examples() {
        let cases = [
            ("Ctx<'_>", Some("Ctx")),
            ("&mut Ctx<'_>", Some("Ctx")),
            ("tables::shard::ShardedPit<K>", Some("ShardedPit")),
            ("Arc<RwLock<T>>", Some("Arc")),
            ("u64", Some("u64")),
        ];
        for (src, want) in cases {
            let lexed = lex(src);
            let win: Vec<usize> = (0..lexed.toks.len()).collect();
            assert_eq!(
                base_ty_of(&lexed.toks, &win).as_deref(),
                want,
                "src = {src}"
            );
        }
    }
}
