//! The scoped escape hatch: `// lidc-lint: allow(<rule>) reason="..."`.
//!
//! An allow directive suppresses findings of the named rule(s) on the line
//! it covers: its **own** line when it trails code, otherwise the **next**
//! line that carries any token. The reason string is mandatory — an allow
//! is a claim that a human judged the site, and the claim must say why.
//! Directives are themselves linted: one that matches no finding is an
//! [`crate::rules::UNUSED_ALLOW`] finding (stale allows rot into blanket
//! exemptions otherwise), and one that doesn't parse is
//! [`crate::rules::ALLOW_SYNTAX`].

use crate::lexer::{Comment, Lexed};

/// A parsed allow directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids this directive suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// The source line whose findings this directive covers.
    pub covers: u32,
    /// Set when the directive suppressed at least one finding.
    pub used: bool,
}

/// A directive that failed to parse, with the line and the gripe.
#[derive(Debug, Clone)]
pub struct BadAllow {
    pub line: u32,
    pub message: String,
}

/// The marker every directive starts with (after comment trimming).
pub const MARKER: &str = "lidc-lint:";

/// Extract all allow directives (and malformed attempts) from the lexed
/// file. `covers` resolution needs the token stream: a directive covers
/// its own line if any token shares it, else the first token line after it.
pub fn collect(lexed: &Lexed) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix(MARKER) else {
            continue;
        };
        match parse_directive(rest.trim()) {
            Ok((rules, reason)) => {
                let covers = resolve_covers(lexed, c);
                allows.push(Allow {
                    rules,
                    reason,
                    line: c.line,
                    covers,
                    used: false,
                });
            }
            Err(message) => bad.push(BadAllow {
                line: c.line,
                message,
            }),
        }
    }
    (allows, bad)
}

/// Parse `allow(rule[, rule]*) reason="..."` after the marker.
fn parse_directive(s: &str) -> Result<(Vec<String>, String), String> {
    let Some(rest) = s.strip_prefix("allow") else {
        return Err(format!("expected `allow(...)` after `{MARKER}`"));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `(` in allow directive".into());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow() names no rule".into());
    }
    for r in &rules {
        if !crate::rules::is_known(r) {
            return Err(format!("unknown rule `{r}` in allow directive"));
        }
    }
    let rest = rest[close + 1..].trim_start();
    let Some(rest) = rest.strip_prefix("reason=") else {
        return Err("allow directive is missing `reason=\"...\"`".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("reason must be a quoted string".into());
    };
    let Some(close) = rest.find('"') else {
        return Err("unclosed reason string".into());
    };
    let reason = rest[..close].trim().to_string();
    if reason.is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((rules, reason))
}

/// A trailing directive covers its own line; a directive on its own line
/// covers the next line that carries a token.
fn resolve_covers(lexed: &Lexed, c: &Comment) -> u32 {
    if lexed.toks.iter().any(|t| t.line == c.line) {
        return c.line;
    }
    lexed
        .toks
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > c.line)
        .min()
        .unwrap_or(c.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_directive_covers_its_own_line() {
        let src = "let t = now(); // lidc-lint: allow(wall-clock) reason=\"calibration\"";
        let (allows, bad) = collect(&lex(src));
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].covers, 1);
        assert_eq!(allows[0].rules, vec!["wall-clock"]);
        assert_eq!(allows[0].reason, "calibration");
    }

    #[test]
    fn own_line_directive_covers_next_token_line() {
        let src = "\n// lidc-lint: allow(unordered-iter) reason=\"commutative\"\n\nlet x = 1;";
        let (allows, _) = collect(&lex(src));
        assert_eq!(allows[0].line, 2);
        assert_eq!(allows[0].covers, 4);
    }

    #[test]
    fn multi_rule_directive() {
        let src = "// lidc-lint: allow(unordered-iter, float-accum) reason=\"sorted downstream\"\nf();";
        let (allows, _) = collect(&lex(src));
        assert_eq!(allows[0].rules.len(), 2);
    }

    #[test]
    fn malformed_directives_are_reported() {
        for src in [
            "// lidc-lint: allow() reason=\"x\"",
            "// lidc-lint: allow(wall-clock)",
            "// lidc-lint: allow(wall-clock) reason=\"\"",
            "// lidc-lint: allow(not-a-rule) reason=\"x\"",
            "// lidc-lint: permit(wall-clock) reason=\"x\"",
        ] {
            let (allows, bad) = collect(&lex(src));
            assert!(allows.is_empty(), "{src}");
            assert_eq!(bad.len(), 1, "{src}");
        }
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (allows, bad) = collect(&lex("// just a note about lidc-lint rules\nf();"));
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
