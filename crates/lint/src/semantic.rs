//! The inter-procedural rule families (PR 9): `panic-path`,
//! `effect-purity`, `metric-key`, `horizon-safety`.
//!
//! These run over the [`crate::symbols::Workspace`] + [`crate::callgraph`]
//! layer instead of single files, which is what lets them state *reachability*
//! claims: "no `unwrap` is reachable from an actor handler", "no
//! `ctx.spawn` is reachable from a `Concurrency::Concurrent` actor's
//! handlers" — the contracts PR 6 and PR 8 could only assert at runtime.
//! All resolution is conservative (see `callgraph`): an unresolvable call
//! keeps by-name edges, so a clean scan really means no statically visible
//! path exists.

use std::collections::{BTreeMap, BTreeSet};

use crate::allow::Allow;
use crate::analyze::Finding;
use crate::callgraph::{local_types, CallGraph};
use crate::lexer::TokKind;
use crate::rules;
use crate::symbols::{FnId, Workspace};

/// The metric-key registry: the observability layer's schema.
pub const REGISTRY_PATH: &str = "crates/simcore/src/metrics_keys.rs";

/// Actor handler methods — the roots of `panic-path` and `effect-purity`
/// reachability.
const HANDLERS: &[&str] = &["on_message", "on_batch", "on_start"];

/// Run every semantic rule. `allows` is indexed like `ws.files`; the
/// `horizon-safety` shared-state check inspects reasons directly (the
/// zero-clamp note is mandatory), every other finding goes through the
/// generic suppression pass later.
pub fn run(ws: &Workspace, cg: &CallGraph, allows: &mut [Vec<Allow>]) -> Vec<Finding> {
    let mut out = Vec::new();
    panic_path(ws, cg, &mut out);
    effect_purity(ws, cg, &mut out);
    metric_key(ws, &mut out);
    horizon_safety(ws, allows, &mut out);
    out
}

/// Dedup: one finding per (file, line, rule).
fn push(out: &mut Vec<Finding>, file: &str, line: u32, rule: &'static str, message: String) {
    if !out
        .iter()
        .any(|f| f.rule == rule && f.line == line && f.file == file)
    {
        out.push(Finding {
            file: file.to_string(),
            line,
            rule,
            message,
        });
    }
}

/// Breadth-first reachability recording, per reached fn, the root handler
/// it was first reached from (for the finding message).
fn reach_with_roots(cg: &CallGraph, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
    let mut origin: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: Vec<FnId> = Vec::new();
    for &r in roots {
        origin.entry(r).or_insert(r);
        queue.push(r);
    }
    let mut qi = 0;
    while qi < queue.len() {
        let f = queue[qi];
        qi += 1;
        let root = origin[&f];
        for site in &cg.sites[f] {
            for &callee in &site.callees {
                if let std::collections::btree_map::Entry::Vacant(e) = origin.entry(callee) {
                    e.insert(root);
                    queue.push(callee);
                }
            }
        }
    }
    origin
}

fn qualified(ws: &Workspace, id: FnId) -> String {
    let f = &ws.fns[id];
    match &f.self_ty {
        Some(ty) => format!("{}::{}", ty, f.name),
        None => f.name.clone(),
    }
}

/// Known-integer base types for the division heuristic (float division
/// yields inf, it never panics — only integer division can abort).
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// `panic-path`: `unwrap`/`expect`/panicking macros/indexing-by-variable/
/// integer-division-by-variable in any fn reachable from an
/// `Actor::on_message`/`on_batch`/`on_start` impl, when the site sits in an
/// actor crate. A panic on one of these paths aborts the whole sim — under
/// fault injection that converts "degraded" into "crashed", which is
/// exactly what the LIDC location-independence claim cannot afford.
fn panic_path(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Finding>) {
    let roots: Vec<FnId> = (0..ws.fns.len())
        .filter(|&id| {
            let f = &ws.fns[id];
            !f.is_test
                && f.trait_name.as_deref() == Some("Actor")
                && HANDLERS.contains(&f.name.as_str())
                && ws.files[f.file].ctx.is_actor_crate
        })
        .collect();
    let origin = reach_with_roots(cg, &roots);
    for (&id, &root) in &origin {
        let f = &ws.fns[id];
        let fctx = &ws.files[f.file].ctx;
        if f.is_test || !fctx.is_actor_crate {
            continue;
        }
        let via = if id == root {
            format!("actor handler `{}`", qualified(ws, id))
        } else {
            format!(
                "`{}`, reachable from actor handler `{}`",
                qualified(ws, id),
                qualified(ws, root)
            )
        };
        scan_panic_sites(ws, id, &via, fctx.rel_path.clone(), out);
    }
}

fn scan_panic_sites(
    ws: &Workspace,
    id: FnId,
    via: &str,
    file: String,
    out: &mut Vec<Finding>,
) {
    let toks = ws.toks_of(id);
    let (b0, b1) = ws.fns[id].body;
    let nested: Vec<(usize, usize)> = ws.files[ws.fns[id].file]
        .fns
        .iter()
        .filter(|&&o| o != id)
        .map(|&o| ws.fns[o].body)
        .filter(|&(o0, o1)| o0 > b0 && o1 <= b1)
        .collect();
    let in_nested = |i: usize| nested.iter().any(|&(a, b)| (a..b).contains(&i));
    let locals = local_types(ws, id);
    let mut i = b0;
    while i < b1 {
        if in_nested(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(...)`.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > b0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            push(
                out,
                &file,
                t.line,
                rules::PANIC_PATH,
                format!(
                    "`.{}()` in {} — a poisoned Option/Result on this path aborts the sim; return a typed error, degrade gracefully, or annotate the invariant",
                    t.text, via
                ),
            );
        }
        // Panicking macros.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            push(
                out,
                &file,
                t.line,
                rules::PANIC_PATH,
                format!(
                    "`{}!` in {} — an explicit abort on an actor path; degrade gracefully (NACK, drop, metric) or annotate why the state is impossible",
                    t.text, via
                ),
            );
        }
        // Indexing by a bare variable: `recv[ident]`.
        if t.is_punct('[')
            && i > b0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'))
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_punct(']'))
            && !in_nested(i)
        {
            // Exclude obvious type positions (`[u8]` never parses here:
            // prev would be `&`/`<`) and attribute heads (prev is `#`).
            let idx = &toks[i + 1].text;
            if !INT_TYPES.contains(&idx.as_str()) {
                push(
                    out,
                    &file,
                    t.line,
                    rules::PANIC_PATH,
                    format!(
                        "indexing `[{idx}]` by a variable in {via} — out-of-range aborts the sim; use `.get({idx})` and handle the miss, or annotate the bound invariant"
                    ),
                );
            }
        }
        // Integer division by a bare variable of known integer type.
        if t.is_punct('/')
            && i > b0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].kind == TokKind::Literal
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'))
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && !toks.get(i + 2).is_some_and(|t| t.is_punct('(') || t.is_punct('.'))
        {
            let divisor = &toks[i + 1].text;
            if locals
                .get(divisor)
                .is_some_and(|ty| INT_TYPES.contains(&ty.as_str()))
            {
                push(
                    out,
                    &file,
                    t.line,
                    rules::PANIC_PATH,
                    format!(
                        "integer division by variable `{divisor}` in {via} — zero aborts the sim; guard with `max(1)`/an explicit check, or annotate the nonzero invariant"
                    ),
                );
            }
        }
        i += 1;
    }
}

/// `effect-purity`: `ctx.spawn`/`ctx.kill`/`ctx.halt` reachable from a
/// `Concurrency::Concurrent` actor's handlers. The engine *panics* when a
/// wave worker tries these (engine.rs documents the contract); this proves
/// the workspace honors it before any wave ever runs.
fn effect_purity(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Finding>) {
    // Types whose `concurrency()` impl mentions `Concurrent`.
    let mut concurrent: BTreeSet<String> = BTreeSet::new();
    for f in &ws.fns {
        if f.name == "concurrency" && !f.is_test {
            if let Some(ty) = &f.self_ty {
                let toks = ws.toks_of(ws.fns.iter().position(|g| std::ptr::eq(g, f)).unwrap());
                let (b0, b1) = f.body;
                if toks[b0..b1].iter().any(|t| t.is_ident("Concurrent")) {
                    concurrent.insert(ty.clone());
                }
            }
        }
    }
    let roots: Vec<FnId> = (0..ws.fns.len())
        .filter(|&id| {
            let f = &ws.fns[id];
            !f.is_test
                && HANDLERS.contains(&f.name.as_str())
                && f.self_ty.as_ref().is_some_and(|ty| concurrent.contains(ty))
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    let origin = reach_with_roots(cg, &roots);
    for (&id, &root) in &origin {
        let f = &ws.fns[id];
        if f.is_test {
            continue;
        }
        let toks = ws.toks_of(id);
        for site in &cg.sites[id] {
            if !matches!(site.name.as_str(), "spawn" | "kill" | "halt") {
                continue;
            }
            // Only the engine's effect API counts: a resolved `Ctx`
            // receiver, or an unresolved receiver literally named `ctx`
            // (`std::thread::scope(|scope| scope.spawn(..))` and
            // `Builder::spawn` are host threads, not engine effects).
            let recv_ident = (site.tok >= 2
                && toks[site.tok - 1].is_punct('.')
                && toks[site.tok - 2].kind == TokKind::Ident)
                .then(|| toks[site.tok - 2].text.as_str());
            let hits_ctx = site.recv_ty.as_deref() == Some("Ctx")
                || (site.recv_ty.is_none() && recv_ident == Some("ctx"));
            if !hits_ctx {
                continue;
            }
            let via = if id == root {
                format!("handler `{}`", qualified(ws, id))
            } else {
                format!(
                    "`{}`, reachable from handler `{}`",
                    qualified(ws, id),
                    qualified(ws, root)
                )
            };
            push(
                out,
                &ws.files[f.file].ctx.rel_path,
                site.line,
                rules::EFFECT_PURITY,
                format!(
                    "`ctx.{}` in {} of a Concurrency::Concurrent actor — wave workers panic on spawn/kill/halt at runtime; route the effect through an Exclusive actor or drop the Concurrent declaration",
                    site.name, via
                ),
            );
        }
    }
}

/// Parse the checked-in registry (`crates/simcore/src/metrics_keys.rs`):
/// every `pub const NAME: &str = "key";` item. Returns key → line.
pub fn parse_registry(ws: &Workspace) -> Option<(usize, BTreeMap<String, u32>)> {
    let file = ws
        .files
        .iter()
        .position(|f| f.ctx.rel_path == REGISTRY_PATH)?;
    let toks = &ws.files[file].lexed.toks;
    let mut keys = BTreeMap::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        if toks[i].is_ident("const")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct(':')
        {
            // Scan forward to `= "literal" ;` within the item.
            let mut j = i + 3;
            while j < toks.len() && !toks[j].is_punct(';') && !toks[j].is_punct('=') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('=') {
                if let Some(t) = toks.get(j + 1) {
                    if t.kind == TokKind::Literal && t.text.starts_with('"') {
                        let key = t.text.trim_matches('"').to_string();
                        keys.insert(key, toks[i + 1].line);
                    }
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    Some((file, keys))
}

/// Metrics recording methods whose first argument is the key.
const RECORDERS: &[&str] = &["incr", "record", "record_duration", "set_max"];

/// `metric-key`: every counter/histogram key recorded in non-test code
/// must appear in the checked-in registry, and every registered key must
/// be live somewhere — typos and orphans are both schema violations.
fn metric_key(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some((reg_file, registry)) = parse_registry(ws) else {
        // No registry in the analyzed set (single-file fixture runs
        // without one): nothing to check against.
        return;
    };
    // Literal occurrences of each registered key outside the registry
    // file, for the orphan check (any file, tests included — a key only a
    // test asserts on is still live schema).
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (fi, fs) in ws.files.iter().enumerate() {
        if fi == reg_file {
            continue;
        }
        for t in &fs.lexed.toks {
            if t.kind == TokKind::Literal && t.text.starts_with('"') {
                let lit = t.text.trim_matches('"');
                if let Some((k, _)) = registry.get_key_value(lit) {
                    seen.insert(k.as_str());
                }
            }
        }
    }
    for (key, &line) in &registry {
        if !seen.contains(key.as_str()) {
            push(
                out,
                REGISTRY_PATH,
                line,
                rules::METRIC_KEY,
                format!(
                    "registered metric key \"{key}\" is recorded nowhere — remove it from the registry or wire up the recording site"
                ),
            );
        }
    }
    // Recording sites: `.recorder("key", ...)` with ≥2 top-level args (the
    // one-arg forms are `Histogram::record(v)` etc., which carry no key).
    for fs in &ws.files {
        let ctx = &fs.ctx;
        if ctx.is_test_code || ctx.is_bench_crate {
            continue;
        }
        if ctx.rel_path == REGISTRY_PATH || ctx.rel_path == "crates/simcore/src/metrics.rs" {
            continue; // the schema and the mechanism, not users of it
        }
        let toks = &fs.lexed.toks;
        let in_test = |line: u32| fs.test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !RECORDERS.contains(&t.text.as_str())
                || i == 0
                || !toks[i - 1].is_punct('.')
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                || in_test(t.line)
            {
                continue;
            }
            // Count top-level args and grab the first token of arg 0.
            let mut depth = 0i32;
            let mut args = 0usize;
            let mut j = i + 1;
            let first_arg = toks.get(i + 2);
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        if j > i + 2 {
                            args += 1; // the final arg
                        }
                        break;
                    }
                } else if t.is_punct(',') && depth == 1 {
                    args += 1;
                }
                j += 1;
            }
            if args < 2 {
                continue;
            }
            match first_arg {
                Some(a) if a.kind == TokKind::Literal && a.text.starts_with('"') => {
                    let key = a.text.trim_matches('"');
                    if !registry.contains_key(key) {
                        push(
                            out,
                            &ctx.rel_path,
                            t.line,
                            rules::METRIC_KEY,
                            format!(
                                "metric key \"{key}\" is not in the registry ({REGISTRY_PATH}) — register it with a doc comment, or fix the typo"
                            ),
                        );
                    }
                }
                _ => {
                    push(
                        out,
                        &ctx.rel_path,
                        t.line,
                        rules::METRIC_KEY,
                        format!(
                            "metric key passed to `.{}` is not a string literal — the registry cannot check it; use a registered constant or annotate how every expansion is registered",
                            t.text
                        ),
                    );
                }
            }
        }
    }
}

/// `horizon-safety`: (a) `connect_runtime` callers bypass the lookahead
/// declaration `net::connect` makes (docs/ENGINE.md's caveat, enforced);
/// (b) `Arc<RwLock<...>>`/`Arc<Mutex<...>>`-shaped shared state in
/// `crates/core`/`crates/ndn` couples actor groups outside the event
/// system, so each declaration must carry an allow whose reason records
/// the zero-clamp decision (the lookahead matrix entry that keeps the
/// sharing safe in horizon mode).
fn horizon_safety(ws: &Workspace, allows: &mut [Vec<Allow>], out: &mut Vec<Finding>) {
    for (fi, fs) in ws.files.iter().enumerate() {
        let ctx = &fs.ctx;
        if ctx.is_test_code {
            continue;
        }
        let toks = &fs.lexed.toks;
        let in_test = |line: u32| fs.test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));
        // (a) connect_runtime callers — anywhere but its defining module.
        if ctx.rel_path != "crates/ndn/src/net.rs" {
            for i in 0..toks.len() {
                let t = &toks[i];
                if t.is_ident("connect_runtime")
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !in_test(t.line)
                    && !(i > 0 && toks[i - 1].is_ident("fn"))
                {
                    push(
                        out,
                        &ctx.rel_path,
                        t.line,
                        rules::HORIZON_SAFETY,
                        "`connect_runtime` does not declare cross-group lookahead (docs/ENGINE.md) — use `net::connect` pre-run, or declare the lookahead explicitly and annotate".into(),
                    );
                }
            }
        }
        // (b) shared-state types in the horizon-coupling crates.
        let coupling_crate = ctx.rel_path.starts_with("crates/core/")
            || ctx.rel_path.starts_with("crates/ndn/");
        if !coupling_crate {
            continue;
        }
        for i in 0..toks.len() {
            let t = &toks[i];
            if !(t.is_ident("Arc")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| t.is_ident("RwLock") || t.is_ident("Mutex")))
            {
                continue;
            }
            if in_test(t.line) {
                continue;
            }
            let inner = &toks[i + 2].text;
            // The zero-clamp note is checked *here*, not in the generic
            // suppression pass: an allow(horizon-safety) whose reason skips
            // the clamp decision is an incomplete justification.
            let covering = allows[fi]
                .iter_mut()
                .find(|a| a.covers == t.line && a.rules.iter().any(|r| r == rules::HORIZON_SAFETY));
            match covering {
                Some(a) if a.reason.to_lowercase().contains("clamp") => {
                    a.used = true; // suppressed, note present
                }
                Some(a) => {
                    a.used = true;
                    // Forfeit the rule so the generic suppression pass
                    // cannot eat the incomplete-justification finding
                    // with the very directive it is complaining about.
                    a.rules.retain(|r| r != rules::HORIZON_SAFETY);
                    push(
                        out,
                        &ctx.rel_path,
                        t.line,
                        rules::HORIZON_SAFETY,
                        format!(
                            "`Arc<{inner}<...>>` allow is missing the zero-clamp note — the reason must record which lookahead entries are clamped to zero (or why no clamp is needed), see docs/ENGINE.md"
                        ),
                    );
                }
                None => {
                    push(
                        out,
                        &ctx.rel_path,
                        t.line,
                        rules::HORIZON_SAFETY,
                        format!(
                            "shared-state type `Arc<{inner}<...>>` couples actor groups outside the event system — in horizon mode this needs a zero-clamp lookahead entry; annotate with allow(horizon-safety) and a reason recording the clamp"
                        ),
                    );
                }
            }
        }
    }
}
