//! The rule catalogue. One id per enforced invariant; `docs/DETERMINISM.md`
//! carries the long-form rationale.

/// Wall-clock reads (`Instant::now`, `SystemTime`) outside `crates/bench`
/// and test code. Simulated time comes from the engine; a wall-clock read
/// in the sim path would make schedules host-dependent.
pub const WALL_CLOCK: &str = "wall-clock";

/// Ambient/global RNG (`thread_rng`, `rand::random`, OS entropy). All
/// randomness must flow from the master seed via `Ctx::rng()` or a
/// `DetRng::derive*` stream.
pub const AMBIENT_RNG: &str = "ambient-rng";

/// Iterating a `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` in non-test
/// code without feeding a sort or an order-insensitive reduction. Hash
/// iteration order is arbitrary; letting it reach behaviour is how
/// nondeterminism sneaks past the seed.
pub const UNORDERED_ITER: &str = "unordered-iter";

/// Shared-state primitives (`static mut`, `Mutex`, `RwLock`, `RefCell`)
/// in actor crates. Actors communicate only through the engine; shared
/// mutable state bypasses the deterministic dispatch order.
pub const ACTOR_ISOLATION: &str = "actor-isolation";

/// Accumulating floats out of an unordered container. Float addition is
/// not associative, so even a "harmless" sum over hash iteration order
/// produces run-to-run drift in the low bits.
pub const FLOAT_ACCUM: &str = "float-accum";

/// An allow directive that suppressed nothing. Stale allows are how
/// scoped exemptions decay into blanket ones.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// An allow directive that does not parse (unknown rule, missing reason).
pub const ALLOW_SYNTAX: &str = "allow-syntax";

/// Every rule id, for `--help` output and allow validation.
pub const ALL: &[&str] = &[
    WALL_CLOCK,
    AMBIENT_RNG,
    UNORDERED_ITER,
    ACTOR_ISOLATION,
    FLOAT_ACCUM,
    UNUSED_ALLOW,
    ALLOW_SYNTAX,
];

/// True when `id` names a rule an allow directive may suppress.
/// (`unused-allow` / `allow-syntax` police the directives themselves and
/// cannot be allowed away.)
pub fn is_known(id: &str) -> bool {
    id == WALL_CLOCK
        || id == AMBIENT_RNG
        || id == UNORDERED_ITER
        || id == ACTOR_ISOLATION
        || id == FLOAT_ACCUM
}

/// One-line description per rule (the `--rules` listing).
pub fn describe(id: &str) -> &'static str {
    match id {
        _ if id == WALL_CLOCK => {
            "wall-clock reads (Instant::now / SystemTime) outside crates/bench and test code"
        }
        _ if id == AMBIENT_RNG => {
            "ambient RNG (thread_rng / rand::random / OS entropy) anywhere; use Ctx::rng() or a DetRng stream"
        }
        _ if id == UNORDERED_ITER => {
            "hash-container iteration in non-test code that neither feeds a sort nor an order-insensitive reduction"
        }
        _ if id == ACTOR_ISOLATION => {
            "static mut, or Mutex/RwLock/RefCell shared state inside actor crates"
        }
        _ if id == FLOAT_ACCUM => "float accumulation over unordered-container iteration",
        _ if id == UNUSED_ALLOW => "allow directive that suppressed no finding",
        _ if id == ALLOW_SYNTAX => "allow directive that does not parse",
        _ => "unknown rule",
    }
}
