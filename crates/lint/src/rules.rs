//! The rule catalogue. One id per enforced invariant; `docs/DETERMINISM.md`
//! carries the long-form rationale.

/// Wall-clock reads (`Instant::now`, `SystemTime`) outside `crates/bench`
/// and test code. Simulated time comes from the engine; a wall-clock read
/// in the sim path would make schedules host-dependent.
pub const WALL_CLOCK: &str = "wall-clock";

/// Ambient/global RNG (`thread_rng`, `rand::random`, OS entropy). All
/// randomness must flow from the master seed via `Ctx::rng()` or a
/// `DetRng::derive*` stream.
pub const AMBIENT_RNG: &str = "ambient-rng";

/// Iterating a `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` in non-test
/// code without feeding a sort or an order-insensitive reduction. Hash
/// iteration order is arbitrary; letting it reach behaviour is how
/// nondeterminism sneaks past the seed.
pub const UNORDERED_ITER: &str = "unordered-iter";

/// Shared-state primitives (`static mut`, `Mutex`, `RwLock`, `RefCell`)
/// in actor crates. Actors communicate only through the engine; shared
/// mutable state bypasses the deterministic dispatch order.
pub const ACTOR_ISOLATION: &str = "actor-isolation";

/// Accumulating floats out of an unordered container. Float addition is
/// not associative, so even a "harmless" sum over hash iteration order
/// produces run-to-run drift in the low bits.
pub const FLOAT_ACCUM: &str = "float-accum";

/// A panic site (`unwrap`/`expect`/panicking macro/indexing-by-variable/
/// integer division by variable) reachable from an `Actor` handler in an
/// actor crate. A panic on a handler path aborts the whole sim — under
/// fault injection that turns "degraded" into "crashed".
pub const PANIC_PATH: &str = "panic-path";

/// `ctx.spawn`/`kill`/`halt` reachable from a `Concurrency::Concurrent`
/// actor's handlers. The engine panics when a wave worker attempts these;
/// this rule proves the contract statically.
pub const EFFECT_PURITY: &str = "effect-purity";

/// Metrics key hygiene: every key recorded in non-test code must appear
/// in `crates/simcore/src/metrics_keys.rs`, and every registered key must
/// be recorded somewhere. The registry is the observability schema.
pub const METRIC_KEY: &str = "metric-key";

/// Horizon-mode coupling outside the declared lookahead matrix:
/// `connect_runtime` callers (which bypass `net::connect`'s lookahead
/// declaration), and `Arc<RwLock/Mutex>`-shaped shared state in
/// `crates/core`/`crates/ndn` without a zero-clamp note in its allow.
pub const HORIZON_SAFETY: &str = "horizon-safety";

/// An allow directive that suppressed nothing. Stale allows are how
/// scoped exemptions decay into blanket ones.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// An allow directive that does not parse (unknown rule, missing reason).
pub const ALLOW_SYNTAX: &str = "allow-syntax";

/// Every rule id, for `--help` output and allow validation.
pub const ALL: &[&str] = &[
    WALL_CLOCK,
    AMBIENT_RNG,
    UNORDERED_ITER,
    ACTOR_ISOLATION,
    FLOAT_ACCUM,
    PANIC_PATH,
    EFFECT_PURITY,
    METRIC_KEY,
    HORIZON_SAFETY,
    UNUSED_ALLOW,
    ALLOW_SYNTAX,
];

/// True when `id` names a rule an allow directive may suppress.
/// (`unused-allow` / `allow-syntax` police the directives themselves and
/// cannot be allowed away.)
pub fn is_known(id: &str) -> bool {
    id == WALL_CLOCK
        || id == AMBIENT_RNG
        || id == UNORDERED_ITER
        || id == ACTOR_ISOLATION
        || id == FLOAT_ACCUM
        || id == PANIC_PATH
        || id == EFFECT_PURITY
        || id == METRIC_KEY
        || id == HORIZON_SAFETY
}

/// One-line description per rule (the `--rules` listing).
pub fn describe(id: &str) -> &'static str {
    match id {
        _ if id == WALL_CLOCK => {
            "wall-clock reads (Instant::now / SystemTime) outside crates/bench and test code"
        }
        _ if id == AMBIENT_RNG => {
            "ambient RNG (thread_rng / rand::random / OS entropy) anywhere; use Ctx::rng() or a DetRng stream"
        }
        _ if id == UNORDERED_ITER => {
            "hash-container iteration in non-test code that neither feeds a sort nor an order-insensitive reduction"
        }
        _ if id == ACTOR_ISOLATION => {
            "static mut, or Mutex/RwLock/RefCell shared state inside actor crates"
        }
        _ if id == FLOAT_ACCUM => "float accumulation over unordered-container iteration",
        _ if id == PANIC_PATH => {
            "panic site (unwrap/expect/panic!/index-by-variable/int-div-by-variable) reachable from an Actor handler in an actor crate"
        }
        _ if id == EFFECT_PURITY => {
            "ctx.spawn/kill/halt reachable from a Concurrency::Concurrent actor's handlers (wave workers panic on these at runtime)"
        }
        _ if id == METRIC_KEY => {
            "metric key recorded but not registered in crates/simcore/src/metrics_keys.rs, or registered but never recorded"
        }
        _ if id == HORIZON_SAFETY => {
            "connect_runtime bypassing net::connect's lookahead declaration, or Arc<RwLock/Mutex> shared state in crates/core|ndn without a zero-clamp note"
        }
        _ if id == UNUSED_ALLOW => "allow directive that suppressed no finding",
        _ if id == ALLOW_SYNTAX => "allow directive that does not parse",
        _ => "unknown rule",
    }
}
