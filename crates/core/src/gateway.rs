//! The LIDC gateway: the per-cluster decision-maker (paper Fig. 4).
//!
//! "The Gateway acts as a decision-maker, determining how to process the
//! incoming Interest. If the Interest relates to computational tasks, the
//! Gateway parses the Interest to understand details such as the specific
//! application to be activated, the target dataset, and other application
//! parameters like memory capacity and CPU needs. Once these details are
//! clear, the Gateway initiates a Kubernetes job to run the desired
//! computation task." (§III-C)
//!
//! The gateway is an NDN producer on the cluster's gateway NFD. It:
//!
//! 1. classifies Interests by the LIDC name grammar;
//! 2. runs application-specific validation;
//! 3. consults the result cache (future-work §VII, implemented);
//! 4. plans the job through the genomics cost model and creates a
//!    Kubernetes Job;
//! 5. answers `/ndn/k8s/status/<cluster>/<job>` checks against the API
//!    server;
//! 6. publishes completed results back into the data lake and feeds the
//!    completion-time predictor.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use lidc_datalake::content::Content;
use lidc_datalake::repo::SharedRepo;
use lidc_genomics::blast::{plan_blast, BlastError};
use lidc_genomics::costmodel::CostModel;
use lidc_k8s::cluster::{Cluster, Nudge};
use lidc_k8s::job::JobCondition;
use lidc_k8s::meta::ObjectKey;
use lidc_k8s::pod::{ContainerSpec, PodSpec, WorkloadSpec};
use lidc_k8s::resources::Resources;
use lidc_ndn::app::Producer;
use lidc_ndn::forwarder::AppRx;
use lidc_ndn::name::Name;
use lidc_ndn::packet::{ContentType, Data, Interest, Packet};
use lidc_simcore::engine::{Actor, Ctx, Msg};
use lidc_simcore::time::SimDuration;

use crate::cache::{CachedResult, ResultCache};
use crate::naming::{classify, data_prefix, ComputeRequest, JobId, RequestKind};
use crate::predictor::{JobFeatures, RuntimePredictor};
use crate::status::{JobState, SubmitAck};
use crate::validation::ValidatorRegistry;

/// Shared handle to a predictor (placement strategies read it).
pub type SharedPredictor = Arc<RwLock<RuntimePredictor>>;

/// Gateway tuning knobs.
pub struct GatewayConfig {
    /// Cluster name (prefixed onto job ids).
    pub cluster_name: String,
    /// Result-cache capacity (0 = off; the base paper system runs without).
    pub result_cache_capacity: usize,
    /// Freshness of submit-ack Data. Zero means acks are never "fresh", so
    /// `MustBeFresh` compute Interests always reach the gateway; a long
    /// freshness lets the NDN Content Store answer identical requests (the
    /// network half of the caching ablation).
    pub ack_freshness: SimDuration,
    /// Freshness of status responses.
    pub status_freshness: SimDuration,
    /// Validators.
    pub validators: ValidatorRegistry,
    /// Cost model used for planning.
    pub model: CostModel,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            cluster_name: "cluster".to_owned(),
            result_cache_capacity: 0,
            ack_freshness: SimDuration::ZERO,
            status_freshness: SimDuration::from_millis(100),
            validators: ValidatorRegistry::standard(),
            model: CostModel::paper_calibrated(),
        }
    }
}

/// Per-job bookkeeping.
#[derive(Debug, Clone)]
struct JobRecord {
    request: ComputeRequest,
    k8s_key: ObjectKey,
    /// Result name relative to the lake prefix.
    output_rel: Name,
    output_bytes: u64,
    input_bytes: u64,
    expected: SimDuration,
    published: bool,
}

/// Gateway statistics (diagnostics and experiment outputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Jobs admitted and created on Kubernetes.
    pub jobs_created: u64,
    /// Requests rejected by validation.
    pub validation_failures: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Status queries served.
    pub status_queries: u64,
    /// Results published to the lake.
    pub results_published: u64,
    /// Interests that did not parse as any LIDC request.
    pub unknown_requests: u64,
}

/// Internal timer: check whether a job finished (and publish its result).
#[derive(Debug)]
struct CheckJob {
    job_id: String,
}

/// The gateway actor.
pub struct Gateway {
    producer: Option<Producer>,
    config: GatewayConfig,
    cluster: Cluster,
    repo: SharedRepo,
    lake_prefix: Name,
    cache: ResultCache,
    predictor: SharedPredictor,
    jobs: HashMap<String, JobRecord>,
    next_job: u64,
    /// Statistics.
    pub stats: GatewayStats,
}

impl Gateway {
    /// Build a gateway for `cluster`, publishing results into `repo`.
    pub fn new(config: GatewayConfig, cluster: Cluster, repo: SharedRepo) -> Self {
        let cache = ResultCache::new(config.result_cache_capacity);
        Gateway {
            producer: None,
            config,
            cluster,
            repo,
            lake_prefix: data_prefix(),
            cache,
            predictor: Arc::new(RwLock::new(RuntimePredictor::new())),
            jobs: HashMap::new(),
            next_job: 0,
            stats: GatewayStats::default(),
        }
    }

    /// Set the producer after the face is attached (done by the deployer).
    pub fn set_producer(&mut self, producer: Producer) {
        self.producer = Some(producer);
    }

    /// The shared completion-time predictor.
    pub fn predictor(&self) -> SharedPredictor {
        self.predictor.clone()
    }

    /// Replace the predictor with a shared one (the overlay injects its
    /// network-wide predictor so every gateway's observations train the
    /// same model — the §VII "intelligence in the network").
    pub fn set_predictor(&mut self, predictor: SharedPredictor) {
        self.predictor = predictor;
    }

    /// Result-cache statistics.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    fn reply(&self, ctx: &mut Ctx<'_>, data: Data) {
        self.producer.expect("gateway deployed").reply(ctx, data);
    }

    fn reply_nack(&mut self, ctx: &mut Ctx<'_>, name: Name, message: String) {
        let data = Data::new(name, message.into_bytes())
            .with_content_type(ContentType::Nack)
            .with_freshness(SimDuration::from_millis(100))
            .sign_digest();
        self.reply(ctx, data);
    }

    fn on_compute(&mut self, interest: Interest, request: ComputeRequest, ctx: &mut Ctx<'_>) {
        // 1. Application-specific validation (§IV-B).
        if let Err(e) = self.config.validators.validate(&request) {
            self.stats.validation_failures += 1;
            ctx.metrics().incr("gateway.validation_failures", 1);
            self.reply_nack(ctx, interest.name, format!("validation-error: {e}"));
            return;
        }
        // 2. Result cache (§VII future work, implemented).
        let cache_key = request.canonical_key();
        if self.cache.enabled() {
            if let Some(cached) = self.cache.get(&cache_key) {
                self.stats.cache_hits += 1;
                ctx.metrics().incr("gateway.cache_hits", 1);
                let ack = SubmitAck {
                    job_id: cached.job_id.clone(),
                    cluster: self.config.cluster_name.clone(),
                    state: "Completed".to_owned(),
                };
                let data = Data::new(interest.name, ack.to_text().into_bytes())
                    .with_freshness(self.config.ack_freshness)
                    .sign_digest();
                self.reply(ctx, data);
                return;
            }
        }
        // 3. Plan the job.
        let plan = match self.plan(&request) {
            Ok(p) => p,
            Err(message) => {
                self.stats.validation_failures += 1;
                self.reply_nack(ctx, interest.name, message);
                return;
            }
        };
        // 4. Create the Kubernetes job.
        let seq = self.next_job;
        self.next_job += 1;
        let job_id = format!("{}/job-{seq}", self.config.cluster_name);
        let k8s_name = format!("job-{seq}");
        let template = PodSpec::single(ContainerSpec {
            name: request.app.to_lowercase(),
            image: format!("lidc/{}:latest", request.app.to_lowercase()),
            requests: Resources::new(request.cpu_cores, request.mem_gib),
            workload: WorkloadSpec::Run {
                duration: plan.duration,
                output: Some((plan.output_rel.to_uri(), plan.output_bytes)),
            },
        });
        let created = {
            let now = ctx.now();
            let job = lidc_k8s::job::Job::new(
                lidc_k8s::meta::ObjectMeta::named(&k8s_name),
                template,
                2,
            );
            self.cluster.api.write().create_job(job, now)
        };
        let key = match created {
            Ok(key) => key,
            Err(e) => {
                self.reply_nack(ctx, interest.name, format!("job-create-failed: {e}"));
                return;
            }
        };
        ctx.send(self.cluster.actor, Nudge);
        self.jobs.insert(job_id.clone(), JobRecord {
            request: request.clone(),
            k8s_key: key,
            output_rel: plan.output_rel,
            output_bytes: plan.output_bytes,
            input_bytes: plan.input_bytes,
            expected: plan.duration,
            published: false,
        });
        self.stats.jobs_created += 1;
        ctx.metrics().incr("gateway.jobs_created", 1);
        // Check for completion a little after the expected finish (covers
        // the pod-start latency; re-arms itself while the job is queued).
        ctx.schedule_self(
            plan.duration + SimDuration::from_secs(2),
            CheckJob {
                job_id: job_id.clone(),
            },
        );
        // 5. Acknowledge with the job id (§IV-A).
        let ack = SubmitAck {
            job_id,
            cluster: self.config.cluster_name.clone(),
            state: "Pending".to_owned(),
        };
        let data = Data::new(interest.name, ack.to_text().into_bytes())
            .with_freshness(self.config.ack_freshness)
            .sign_digest();
        self.reply(ctx, data);
    }

    fn plan(&self, request: &ComputeRequest) -> Result<PlannedJob, String> {
        // Admission: the job's pod must fit on at least one ready node even
        // when empty — otherwise it would sit Pending forever and the
        // client would poll indefinitely. NACK now instead (the overlay
        // then lets the client try a bigger cluster).
        let wanted = Resources::new(request.cpu_cores, request.mem_gib);
        let feasible = {
            let api = self.cluster.api.read();
            api.nodes
                .values()
                .any(|n| n.ready && wanted.fits_in(&n.allocatable))
        };
        if !feasible {
            return Err(format!(
                "infeasible: cpu={} mem={}GiB exceeds every node on this cluster",
                request.cpu_cores, request.mem_gib
            ));
        }
        if request.app == "BLAST" {
            let srr = request.param("srr").ok_or("missing srr")?;
            let reference = request.param("ref").ok_or("missing ref")?;
            let plan = plan_blast(
                &self.config.model,
                srr,
                reference,
                request.cpu_cores,
                request.mem_gib,
            )
            .map_err(|e: BlastError| format!("plan-error: {e}"))?;
            // The input must actually be in the lake (loaded per §V-B).
            let input_full = self.lake_prefix.join(&plan.input_name);
            if !self.repo.contains(&input_full) {
                return Err(format!("input-not-in-lake: {input_full}"));
            }
            // Results carry the cluster segment so retrieval routes here.
            let output_rel = Name::root()
                .child_str("results")
                .child_str(&self.config.cluster_name)
                .child_str(&format!("{srr}-vs-{}", reference.to_uppercase()));
            Ok(PlannedJob {
                duration: plan.duration,
                output_bytes: plan.output_bytes,
                output_rel,
                input_bytes: plan.input_bytes,
            })
        } else {
            // Generic app: input size from `input=` (lake object) or `size=`.
            let input_bytes = if let Some(input) = request.param("input") {
                let name = Name::parse(input).map_err(|e| format!("bad input name: {e}"))?;
                let full = self.lake_prefix.join(&name);
                match self.repo.get(&full) {
                    Some(c) => c.len(),
                    None => return Err(format!("input-not-in-lake: {full}")),
                }
            } else if let Some(size) = request.param("size") {
                size.parse::<u64>().map_err(|_| "bad size parameter".to_owned())?
            } else {
                1_000_000_000
            };
            let est = self.config.model.estimate(
                &request.app,
                None,
                input_bytes,
                request.cpu_cores,
                request.mem_gib,
            );
            let output_rel = Name::root()
                .child_str("results")
                .child_str(&self.config.cluster_name)
                .child_str(&format!(
                    "{}-{:x}",
                    request.app.to_lowercase(),
                    fnv(request.canonical_key().as_bytes())
                ));
            Ok(PlannedJob {
                duration: est.duration,
                output_bytes: est.output_bytes,
                output_rel,
                input_bytes,
            })
        }
    }

    fn on_status(&mut self, interest: Interest, id: JobId, ctx: &mut Ctx<'_>) {
        self.stats.status_queries += 1;
        ctx.metrics().incr("gateway.status_queries", 1);
        let Some(record) = self.jobs.get(&id.0).cloned() else {
            self.reply_nack(ctx, interest.name, format!("unknown-job: {id}"));
            return;
        };
        // "The client can inquire about the status of a job by asking the
        // gateway, which then checks with the Kubernetes service." (§IV)
        let job = self.cluster.job(&record.k8s_key);
        let started_at = job.as_ref().and_then(|j| j.status.started_at);
        let condition = job.map(|j| (j.status.condition, j.status.message.clone()));
        let state = match condition {
            None | Some((JobCondition::Pending, _)) => JobState::Pending,
            Some((JobCondition::Running, _)) => JobState::Running {
                eta_secs: self.eta_secs(&record, started_at, ctx.now()),
            },
            Some((JobCondition::Completed, _)) => {
                self.publish_if_needed(&id.0, ctx);
                JobState::Completed {
                    result: self.lake_prefix.join(&record.output_rel),
                    size: record.output_bytes,
                }
            }
            Some((JobCondition::Failed, message)) => JobState::Failed { error: message },
        };
        let data = Data::new(interest.name, state.to_text().into_bytes())
            .with_freshness(self.config.status_freshness)
            .sign_digest();
        self.reply(ctx, data);
    }

    /// Predicted seconds until a running job completes (§VII): the trained
    /// predictor's estimate when it has history for this application,
    /// otherwise the planning-time cost-model expectation; either way minus
    /// the time already spent executing.
    fn eta_secs(
        &self,
        record: &JobRecord,
        started_at: Option<lidc_simcore::time::SimTime>,
        now: lidc_simcore::time::SimTime,
    ) -> Option<u64> {
        let features = JobFeatures {
            input_bytes: record.input_bytes,
            cpu_cores: record.request.cpu_cores,
            mem_gib: record.request.mem_gib,
        };
        let total_secs = self
            .predictor
            .read()
            .predict(&record.request.app, features)
            .unwrap_or_else(|| record.expected.as_secs_f64());
        let elapsed = started_at
            .map(|t| now.since(t).as_secs_f64())
            .unwrap_or(0.0);
        Some((total_secs - elapsed).max(0.0).round() as u64)
    }

    /// Publish the result object and train the predictor, once.
    fn publish_if_needed(&mut self, job_id: &str, ctx: &mut Ctx<'_>) {
        let Some(record) = self.jobs.get(job_id) else {
            return;
        };
        if record.published {
            return;
        }
        let Some(job) = self.cluster.job(&record.k8s_key) else {
            return;
        };
        if job.status.condition != JobCondition::Completed {
            return;
        }
        let record = self.jobs.get_mut(job_id).expect("present");
        record.published = true;
        let full = self.lake_prefix.join(&record.output_rel);
        let seed = fnv(full.to_uri().as_bytes());
        self.repo
            .put(&full, Content::synthetic(record.output_bytes, seed));
        self.stats.results_published += 1;
        ctx.metrics().incr("gateway.results_published", 1);
        self.cluster.api.write().record_event(
            ctx.now(),
            "ResultPublished",
            full.to_uri(),
            format!("{} bytes", record.output_bytes),
        );
        // Train the predictor on the observed runtime (§VII).
        if let Some(actual) = job.run_time() {
            let features = JobFeatures {
                input_bytes: record.input_bytes,
                cpu_cores: record.request.cpu_cores,
                mem_gib: record.request.mem_gib,
            };
            self.predictor
                .write()
                .observe(&record.request.app, features, actual.as_secs_f64());
        }
        // Record in the result cache.
        if self.cache.enabled() {
            let key = record.request.canonical_key();
            let cached = CachedResult {
                result: full,
                size: record.output_bytes,
                job_id: job_id.to_owned(),
            };
            self.cache.insert(key, cached);
        }
    }

    fn on_check_job(&mut self, job_id: String, ctx: &mut Ctx<'_>) {
        let Some(record) = self.jobs.get(&job_id) else {
            return;
        };
        match self.cluster.job_condition(&record.k8s_key) {
            Some(JobCondition::Completed) => self.publish_if_needed(&job_id, ctx),
            Some(JobCondition::Failed) | None => {}
            Some(JobCondition::Pending) | Some(JobCondition::Running) => {
                // Still queued or executing (cluster may be saturated);
                // check again later.
                let delay = (record.expected / 4).max(SimDuration::from_secs(10));
                ctx.schedule_self(delay, CheckJob { job_id });
            }
        }
    }
}

/// Result of planning (internal).
struct PlannedJob {
    duration: SimDuration,
    output_bytes: u64,
    output_rel: Name,
    input_bytes: u64,
}

/// FNV-1a hash (content seeds, request digests).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Actor for Gateway {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                if let Packet::Interest(interest) = rx.packet {
                    match classify(&interest.name) {
                        RequestKind::Compute(request) => self.on_compute(interest, request, ctx),
                        RequestKind::Status(id) => self.on_status(interest, id, ctx),
                        RequestKind::MalformedCompute(e) => {
                            self.stats.unknown_requests += 1;
                            self.reply_nack(ctx, interest.name, format!("malformed-request: {e}"));
                        }
                        RequestKind::Data(_) | RequestKind::Unknown => {
                            // Data Interests are routed to the data-lake NFD,
                            // not here; answer defensively.
                            self.stats.unknown_requests += 1;
                            self.reply_nack(ctx, interest.name, "not-a-gateway-name".to_owned());
                        }
                    }
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(check) = msg.downcast::<CheckJob>() {
            self.on_check_job(check.job_id, ctx);
        }
    }
}
