//! The LIDC gateway: the per-cluster decision-maker (paper Fig. 4).
//!
//! "The Gateway acts as a decision-maker, determining how to process the
//! incoming Interest. If the Interest relates to computational tasks, the
//! Gateway parses the Interest to understand details such as the specific
//! application to be activated, the target dataset, and other application
//! parameters like memory capacity and CPU needs. Once these details are
//! clear, the Gateway initiates a Kubernetes job to run the desired
//! computation task." (§III-C)
//!
//! The gateway is an NDN producer on the cluster's gateway NFD. It:
//!
//! 1. classifies Interests by the LIDC name grammar;
//! 2. runs application-specific validation;
//! 3. consults the result cache (future-work §VII, implemented);
//! 4. plans the job through the genomics cost model and creates a
//!    Kubernetes Job;
//! 5. answers `/ndn/k8s/status/<cluster>/<job>` checks against the API
//!    server;
//! 6. publishes completed results back into the data lake and feeds the
//!    completion-time predictor.
//!
//! # Batched dispatch
//!
//! The gateway is the fan-in point for every compute Interest a cluster
//! receives, so it overrides [`Actor::on_batch`]: a same-instant burst is
//! drained and classified in one pass, compute planning runs grouped
//! (sorted) by application, and the per-Interest work is amortized across
//! the burst — one cluster-API read-lock for the node admission snapshot,
//! one memoized plan per canonical request key, one predictor read-lock for
//! all status ETAs, and one scheduler [`Nudge`] per batch instead of one
//! per job. The contract relative to one-at-a-time delivery:
//!
//! * every Interest receives exactly the reply it would have received
//!   sequentially: the burst is segmented into maximal runs of same-kind
//!   requests processed in arrival order (so cross-kind side effects —
//!   result publishes, cache fills — land in sequence), planning within a
//!   run is grouped by application, and job creation (and so job-id
//!   assignment) runs in arrival order;
//! * replies are emitted per run in arrival order, all at the same
//!   virtual instant;
//! * [`GatewayStats`] and the `gateway.*` metrics counters advance exactly
//!   as under per-message delivery (`gateway.batch.*` counters additionally
//!   record burst sizes).
//!
//! Actors that never see bursts keep the default per-message path; the
//! engine only calls `on_batch` for runs of ≥ 2 same-instant messages.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use lidc_datalake::content::Content;
use lidc_datalake::repo::SharedRepo;
use lidc_genomics::blast::{plan_blast, BlastError};
use lidc_genomics::costmodel::CostModel;
use lidc_k8s::cluster::{Cluster, Nudge};
use lidc_k8s::job::JobCondition;
use lidc_k8s::meta::ObjectKey;
use lidc_k8s::pod::{ContainerSpec, PodSpec, WorkloadSpec};
use lidc_k8s::resources::Resources;
use lidc_ndn::app::Producer;
use lidc_ndn::forwarder::AppRx;
use lidc_ndn::name::Name;
use lidc_ndn::packet::{ContentType, Data, Interest, Packet};
use lidc_simcore::engine::{Actor, Ctx, Msg};
use lidc_simcore::time::SimDuration;

use crate::cache::{CachedResult, ResultCache};
use crate::naming::{classify, data_prefix, ComputeRequest, JobId, RequestKind};
use crate::predictor::{JobFeatures, RuntimePredictor};
use crate::status::{JobState, SubmitAck};
use crate::validation::ValidatorRegistry;

/// Shared handle to a predictor (placement strategies read it).
// lidc-lint: allow(actor-isolation, horizon-safety) reason="read-mostly model shared between the gateway (writer) and the placement strategy (reader) within one virtual instant, never held across engine events; horizon runs clamp the sharing groups to zero lookahead (see Overlay::add_cluster and docs/ENGINE.md)"
pub type SharedPredictor = Arc<RwLock<RuntimePredictor>>;

/// Gateway tuning knobs.
pub struct GatewayConfig {
    /// Cluster name (prefixed onto job ids).
    pub cluster_name: String,
    /// Result-cache capacity (0 = off; the base paper system runs without).
    pub result_cache_capacity: usize,
    /// Result-cache byte budget over the cached results' sizes (0 = no
    /// byte limit). Mirrors the Content Store's byte budget so a few huge
    /// BLAST results cannot squat on the whole cache.
    pub result_cache_budget_bytes: u64,
    /// Freshness of submit-ack Data. Zero means acks are never "fresh", so
    /// `MustBeFresh` compute Interests always reach the gateway; a long
    /// freshness lets the NDN Content Store answer identical requests (the
    /// network half of the caching ablation).
    pub ack_freshness: SimDuration,
    /// Freshness of status responses.
    pub status_freshness: SimDuration,
    /// Validators.
    pub validators: ValidatorRegistry,
    /// Cost model used for planning.
    pub model: CostModel,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            cluster_name: "cluster".to_owned(),
            result_cache_capacity: 0,
            result_cache_budget_bytes: 0,
            ack_freshness: SimDuration::ZERO,
            status_freshness: SimDuration::from_millis(100),
            validators: ValidatorRegistry::standard(),
            model: CostModel::paper_calibrated(),
        }
    }
}

/// Per-job bookkeeping.
#[derive(Debug, Clone)]
struct JobRecord {
    request: ComputeRequest,
    k8s_key: ObjectKey,
    /// Result name relative to the lake prefix.
    output_rel: Name,
    output_bytes: u64,
    input_bytes: u64,
    expected: SimDuration,
    published: bool,
}

/// Gateway statistics (diagnostics and experiment outputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Jobs admitted and created on Kubernetes.
    pub jobs_created: u64,
    /// Requests rejected by validation.
    pub validation_failures: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Status queries served.
    pub status_queries: u64,
    /// Results published to the lake.
    pub results_published: u64,
    /// Interests that did not parse as any LIDC request.
    pub unknown_requests: u64,
}

/// Internal timer: check whether a job finished (and publish its result).
#[derive(Debug)]
struct CheckJob {
    job_id: String,
}

/// How a byzantine gateway mangles its replies (fault injection: the
/// `FaultKind::ByzantineProducer` hook flips this on and off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Replies keep their name but carry garbage content and no signature:
    /// the first-hop forwarder's verification gate rejects them before
    /// they can satisfy a PIT entry or enter any Content Store.
    UnsignedGarbage,
    /// Replies are correctly digest-signed but carry a name nobody asked
    /// for: verification passes, so only PIT matching (the unsolicited-Data
    /// drop) stands between the packet and the cache.
    SignedWrongName,
}

/// Control message: put the gateway into (or take it out of) byzantine
/// mode. `None` restores honest behaviour.
#[derive(Debug)]
pub struct SetByzantine(pub Option<ByzantineMode>);

/// The gateway actor.
pub struct Gateway {
    producer: Option<Producer>,
    config: GatewayConfig,
    cluster: Cluster,
    repo: SharedRepo,
    lake_prefix: Name,
    cache: ResultCache,
    predictor: SharedPredictor,
    jobs: HashMap<String, JobRecord>,
    next_job: u64,
    /// Active byzantine fault, if any (see [`SetByzantine`]).
    byzantine: Option<ByzantineMode>,
    /// Statistics.
    pub stats: GatewayStats,
}

impl Gateway {
    /// Build a gateway for `cluster`, publishing results into `repo`.
    pub fn new(config: GatewayConfig, cluster: Cluster, repo: SharedRepo) -> Self {
        let cache = ResultCache::with_budget(
            config.result_cache_capacity,
            config.result_cache_budget_bytes,
        );
        Gateway {
            producer: None,
            config,
            cluster,
            repo,
            lake_prefix: data_prefix(),
            cache,
            predictor: Arc::new(RwLock::new(RuntimePredictor::new())), // lidc-lint: allow(actor-isolation) reason="constructor for the SharedPredictor handle justified on the alias"
            jobs: HashMap::new(),
            next_job: 0,
            byzantine: None,
            stats: GatewayStats::default(),
        }
    }

    /// Set the producer after the face is attached (done by the deployer).
    pub fn set_producer(&mut self, producer: Producer) {
        self.producer = Some(producer);
    }

    /// The shared completion-time predictor.
    pub fn predictor(&self) -> SharedPredictor {
        self.predictor.clone()
    }

    /// Replace the predictor with a shared one (the overlay injects its
    /// network-wide predictor so every gateway's observations train the
    /// same model — the §VII "intelligence in the network").
    pub fn set_predictor(&mut self, predictor: SharedPredictor) {
        self.predictor = predictor;
    }

    /// Result-cache statistics.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    fn reply(&self, ctx: &mut Ctx<'_>, data: Data) {
        // Single egress chokepoint: every Data this gateway emits passes
        // through here, so an active byzantine fault corrupts all of them.
        let data = match self.byzantine {
            None => data,
            Some(mode) => {
                ctx.metrics().incr("gateway.byzantine_replies", 1);
                Self::sabotage(mode, data)
            }
        };
        // lidc-lint: allow(panic-path) reason="deploy() installs the producer before the gateway id escapes, so no Interest can arrive while it is None"
        self.producer.expect("gateway deployed").reply(ctx, data);
    }

    /// Mangle an honest reply per the active [`ByzantineMode`]. Pure and
    /// deterministic in the input (garbage bytes are an FNV keystream over
    /// the name), so byzantine runs fingerprint-stably.
    fn sabotage(mode: ByzantineMode, data: Data) -> Data {
        match mode {
            ByzantineMode::UnsignedGarbage => {
                let seed = fnv(data.name.to_uri().as_bytes());
                let garbage: Vec<u8> = (0..data.content.len().max(16))
                    .map(|i| (seed.rotate_left((i % 57) as u32) ^ i as u64) as u8)
                    .collect();
                // No signing step: the signature stays empty, which
                // `Data::verify` rejects at the first verifying forwarder.
                let mut bad = Data::new(data.name, garbage).with_content_type(data.content_type);
                bad.freshness = data.freshness;
                bad
            }
            ByzantineMode::SignedWrongName => {
                // A perfectly valid signature over a name nobody asked
                // for: PIT matching (the unsolicited-Data drop) is the
                // only remaining defense, and it must hold.
                let wrong = data.name.child_str("byzantine");
                let mut bad = Data::new(wrong, data.content).with_content_type(data.content_type);
                bad.freshness = data.freshness;
                bad.sign_digest()
            }
        }
    }

    fn reply_nack(&mut self, ctx: &mut Ctx<'_>, name: Name, message: String) {
        let data = Data::new(name, message.into_bytes())
            .with_content_type(ContentType::Nack)
            .with_freshness(SimDuration::from_millis(100))
            .sign_digest();
        self.reply(ctx, data);
    }

    /// Ready-node allocatable-capacity snapshot: one cluster-API read-lock,
    /// shared by every admission check in a burst.
    fn node_snapshot(&self) -> Vec<Resources> {
        let api = self.cluster.api.read();
        api.nodes
            .values()
            .filter(|n| n.ready)
            .map(|n| n.allocatable)
            .collect()
    }

    /// Handle one compute Interest against a prepared admission snapshot
    /// and (in a burst) a per-batch plan memo. Returns `true` when a
    /// Kubernetes job was created (the caller owes the cluster a [`Nudge`]).
    fn on_compute(
        &mut self,
        interest: Interest,
        request: ComputeRequest,
        nodes: &[Resources],
        plan_cache: Option<&mut HashMap<String, Result<PlannedJob, String>>>,
        ctx: &mut Ctx<'_>,
    ) -> bool {
        // 1. Application-specific validation (§IV-B).
        if let Err(e) = self.config.validators.validate(&request) {
            self.stats.validation_failures += 1;
            ctx.metrics().incr("gateway.validation_failures", 1);
            self.reply_nack(ctx, interest.name, format!("validation-error: {e}"));
            return false;
        }
        // 2. Result cache (§VII future work, implemented).
        let cache_key = request.canonical_key();
        if self.cache.enabled() {
            if let Some(cached) = self.cache.get(&cache_key) {
                self.stats.cache_hits += 1;
                ctx.metrics().incr("gateway.cache_hits", 1);
                let ack = SubmitAck {
                    job_id: cached.job_id.clone(),
                    cluster: self.config.cluster_name.clone(),
                    state: "Completed".to_owned(),
                };
                let data = Data::new(interest.name, ack.to_text().into_bytes())
                    .with_freshness(self.config.ack_freshness)
                    .sign_digest();
                self.reply(ctx, data);
                return false;
            }
        }
        // 3. Plan the job (memoized per canonical key within a burst:
        // planning is deterministic in the request).
        let planned = match plan_cache {
            Some(memo) => match memo.get(&cache_key) {
                Some(hit) => hit.clone(),
                None => {
                    let fresh = self.plan(&request, nodes);
                    memo.insert(cache_key, fresh.clone());
                    fresh
                }
            },
            None => self.plan(&request, nodes),
        };
        let plan = match planned {
            Ok(p) => p,
            Err(message) => {
                self.stats.validation_failures += 1;
                self.reply_nack(ctx, interest.name, message);
                return false;
            }
        };
        // 4. Create the Kubernetes job.
        let seq = self.next_job;
        self.next_job += 1;
        let job_id = format!("{}/job-{seq}", self.config.cluster_name);
        let k8s_name = format!("job-{seq}");
        let template = PodSpec::single(ContainerSpec {
            name: request.app.to_lowercase(),
            image: format!("lidc/{}:latest", request.app.to_lowercase()),
            requests: Resources::new(request.cpu_cores, request.mem_gib),
            workload: WorkloadSpec::Run {
                duration: plan.duration,
                output: Some((plan.output_rel.to_uri(), plan.output_bytes)),
            },
        });
        let created = {
            let now = ctx.now();
            let job = lidc_k8s::job::Job::new(
                lidc_k8s::meta::ObjectMeta::named(&k8s_name),
                template,
                2,
            );
            self.cluster.api.write().create_job(job, now)
        };
        let key = match created {
            Ok(key) => key,
            Err(e) => {
                self.reply_nack(ctx, interest.name, format!("job-create-failed: {e}"));
                return false;
            }
        };
        self.jobs.insert(job_id.clone(), JobRecord {
            request: request.clone(),
            k8s_key: key,
            output_rel: plan.output_rel,
            output_bytes: plan.output_bytes,
            input_bytes: plan.input_bytes,
            expected: plan.duration,
            published: false,
        });
        self.stats.jobs_created += 1;
        ctx.metrics().incr("gateway.jobs_created", 1);
        // Check for completion a little after the expected finish (covers
        // the pod-start latency; re-arms itself while the job is queued).
        ctx.schedule_self(
            plan.duration + SimDuration::from_secs(2),
            CheckJob {
                job_id: job_id.clone(),
            },
        );
        // 5. Acknowledge with the job id (§IV-A).
        let ack = SubmitAck {
            job_id,
            cluster: self.config.cluster_name.clone(),
            state: "Pending".to_owned(),
        };
        let data = Data::new(interest.name, ack.to_text().into_bytes())
            .with_freshness(self.config.ack_freshness)
            .sign_digest();
        self.reply(ctx, data);
        true
    }

    /// Process a burst of compute Interests: one admission snapshot, plans
    /// grouped (stable-sorted) by application and memoized per canonical
    /// key, one scheduler nudge for however many jobs were created.
    fn on_compute_batch(
        &mut self,
        computes: Vec<(Interest, ComputeRequest)>,
        ctx: &mut Ctx<'_>,
    ) {
        if computes.is_empty() {
            return;
        }
        let nodes = self.node_snapshot();
        // Planning pass, sorted by application so per-app model state stays
        // hot and duplicate requests plan once. Planning is pure in the
        // request and the snapshot, so precomputing for requests the
        // creation pass will reject (validation, result cache) changes no
        // outcome.
        let mut order: Vec<usize> = (0..computes.len()).collect();
        // lidc-lint: allow(panic-path) reason="order holds indexes 0..computes.len() built on the line above, and computes is not mutated during the sort"
        order.sort_by(|&a, &b| computes[a].1.app.cmp(&computes[b].1.app));
        let mut plan_cache: HashMap<String, Result<PlannedJob, String>> = HashMap::new();
        for &i in &order {
            // lidc-lint: allow(panic-path) reason="i comes from order, a permutation of 0..computes.len() over the unchanged computes vec"
            let request = &computes[i].1;
            let key = request.canonical_key();
            plan_cache
                .entry(key)
                .or_insert_with(|| self.plan(request, &nodes));
        }
        // Creation pass, in arrival order, consuming the memoized plans —
        // job-id assignment (and therefore every reply) is identical to
        // one-at-a-time delivery.
        let mut created = false;
        for (interest, request) in computes {
            created |= self.on_compute(interest, request, &nodes, Some(&mut plan_cache), ctx);
        }
        if created {
            ctx.send(self.cluster.actor, Nudge);
        }
    }

    fn plan(&self, request: &ComputeRequest, nodes: &[Resources]) -> Result<PlannedJob, String> {
        // A cluster with zero ready nodes (outage, mass node failure) must
        // degrade gracefully: NACK with a retry hint so the client backs
        // off and resubmits (reaching a healthy cluster via the anycast
        // prefix) instead of parking the request in a PIT entry that can
        // only time out.
        if nodes.is_empty() {
            return Err("cluster-unavailable retry-after=30s: no ready nodes".to_owned());
        }
        // Admission: the job's pod must fit on at least one ready node even
        // when empty — otherwise it would sit Pending forever and the
        // client would poll indefinitely. NACK now instead (the overlay
        // then lets the client try a bigger cluster).
        let wanted = Resources::new(request.cpu_cores, request.mem_gib);
        let feasible = nodes.iter().any(|n| wanted.fits_in(n));
        if !feasible {
            return Err(format!(
                "infeasible: cpu={} mem={}GiB exceeds every node on this cluster",
                request.cpu_cores, request.mem_gib
            ));
        }
        if request.app == "BLAST" {
            let srr = request.param("srr").ok_or("missing srr")?;
            let reference = request.param("ref").ok_or("missing ref")?;
            let plan = plan_blast(
                &self.config.model,
                srr,
                reference,
                request.cpu_cores,
                request.mem_gib,
            )
            .map_err(|e: BlastError| format!("plan-error: {e}"))?;
            // The input must actually be in the lake (loaded per §V-B).
            let input_full = self.lake_prefix.join(&plan.input_name);
            if !self.repo.contains(&input_full) {
                return Err(format!("input-not-in-lake: {input_full}"));
            }
            // Results carry the cluster segment so retrieval routes here.
            let output_rel = Name::root()
                .child_str("results")
                .child_str(&self.config.cluster_name)
                .child_str(&format!("{srr}-vs-{}", reference.to_uppercase()));
            Ok(PlannedJob {
                duration: plan.duration,
                output_bytes: plan.output_bytes,
                output_rel,
                input_bytes: plan.input_bytes,
            })
        } else {
            // Generic app: input size from `input=` (lake object) or `size=`.
            let input_bytes = if let Some(input) = request.param("input") {
                let name = Name::parse(input).map_err(|e| format!("bad input name: {e}"))?;
                let full = self.lake_prefix.join(&name);
                match self.repo.get(&full) {
                    Some(c) => c.len(),
                    None => return Err(format!("input-not-in-lake: {full}")),
                }
            } else if let Some(size) = request.param("size") {
                size.parse::<u64>().map_err(|_| "bad size parameter".to_owned())?
            } else {
                1_000_000_000
            };
            let est = self.config.model.estimate(
                &request.app,
                None,
                input_bytes,
                request.cpu_cores,
                request.mem_gib,
            );
            let output_rel = Name::root()
                .child_str("results")
                .child_str(&self.config.cluster_name)
                .child_str(&format!(
                    "{}-{:x}",
                    request.app.to_lowercase(),
                    fnv(request.canonical_key().as_bytes())
                ));
            Ok(PlannedJob {
                duration: est.duration,
                output_bytes: est.output_bytes,
                output_rel,
                input_bytes,
            })
        }
    }

    /// Process a burst of status Interests (a single query is the burst of
    /// one — the sequential path routes through here too). "The client can
    /// inquire about the status of a job by asking the gateway, which then
    /// checks with the Kubernetes service." (§IV) The batch amortizes the
    /// checking: one API-server read-lock resolves every queried job's
    /// condition, and one predictor read-lock serves every running job's
    /// ETA. Replies go out in arrival order.
    fn on_status_batch(&mut self, statuses: Vec<(Interest, JobId)>, ctx: &mut Ctx<'_>) {
        if statuses.is_empty() {
            return;
        }
        // Phase 1: resolve conditions under one API-server read-lock.
        let mut probes: Vec<StatusProbe> = Vec::with_capacity(statuses.len());
        {
            let api = self.cluster.api.read();
            for (interest, id) in statuses {
                self.stats.status_queries += 1;
                ctx.metrics().incr("gateway.status_queries", 1);
                let outcome = match self.jobs.get(&id.0) {
                    None => StatusOutcome::UnknownJob(id),
                    Some(record) => {
                        let job = api.jobs.get(&record.k8s_key);
                        StatusOutcome::Known {
                            job_id: id.0,
                            record: Box::new(record.clone()),
                            condition: job.map(|j| (j.status.condition, j.status.message.clone())),
                            started_at: job.and_then(|j| j.status.started_at),
                        }
                    }
                };
                probes.push(StatusProbe { interest, outcome });
            }
        }
        // Phase 2: walk the probes in arrival order. Running ETAs share one
        // lazily-acquired predictor read-lock; a Completed job releases it
        // before publishing (publish takes the predictor *write* lock to
        // train on the observed runtime), so a later Running ETA sees
        // exactly the predictor state sequential delivery would — pure
        // status-polling bursts, the hot case, still acquire once.
        let predictor = self.predictor.clone();
        let mut guard: Option<std::sync::RwLockReadGuard<'_, RuntimePredictor>> = None;
        for probe in probes {
            match probe.outcome {
                StatusOutcome::UnknownJob(id) => {
                    self.reply_nack(ctx, probe.interest.name, format!("unknown-job: {id}"));
                }
                StatusOutcome::Known {
                    job_id,
                    record,
                    condition,
                    started_at,
                } => {
                    let state = match condition {
                        None | Some((JobCondition::Pending, _)) => JobState::Pending,
                        Some((JobCondition::Running, _)) => {
                            let g = guard.get_or_insert_with(|| predictor.read());
                            JobState::Running {
                                eta_secs: self.eta_secs(g, &record, started_at, ctx.now()),
                            }
                        }
                        Some((JobCondition::Completed, _)) => {
                            guard = None;
                            self.publish_if_needed(&job_id, ctx);
                            JobState::Completed {
                                result: self.lake_prefix.join(&record.output_rel),
                                size: record.output_bytes,
                            }
                        }
                        Some((JobCondition::Failed, message)) => {
                            JobState::Failed { error: message }
                        }
                    };
                    let data = Data::new(probe.interest.name, state.to_text().into_bytes())
                        .with_freshness(self.config.status_freshness)
                        .sign_digest();
                    self.reply(ctx, data);
                }
            }
        }
    }

    /// Predicted seconds until a running job completes (§VII): the trained
    /// predictor's estimate when it has history for this application,
    /// otherwise the planning-time cost-model expectation; either way minus
    /// the time already spent executing. The caller holds the predictor
    /// read-lock (shared across a status burst).
    fn eta_secs(
        &self,
        predictor: &RuntimePredictor,
        record: &JobRecord,
        started_at: Option<lidc_simcore::time::SimTime>,
        now: lidc_simcore::time::SimTime,
    ) -> Option<u64> {
        let features = JobFeatures {
            input_bytes: record.input_bytes,
            cpu_cores: record.request.cpu_cores,
            mem_gib: record.request.mem_gib,
        };
        let total_secs = predictor
            .predict(&record.request.app, features)
            .unwrap_or_else(|| record.expected.as_secs_f64());
        let elapsed = started_at
            .map(|t| now.since(t).as_secs_f64())
            .unwrap_or(0.0);
        Some((total_secs - elapsed).max(0.0).round() as u64)
    }

    /// Publish the result object and train the predictor, once.
    fn publish_if_needed(&mut self, job_id: &str, ctx: &mut Ctx<'_>) {
        let Some(record) = self.jobs.get(job_id) else {
            return;
        };
        if record.published {
            return;
        }
        let Some(job) = self.cluster.job(&record.k8s_key) else {
            return;
        };
        if job.status.condition != JobCondition::Completed {
            return;
        }
        // lidc-lint: allow(panic-path) reason="the caller resolved job_id in self.jobs to read the status checked above, and the map is untouched in between"
        let record = self.jobs.get_mut(job_id).expect("present");
        record.published = true;
        let full = self.lake_prefix.join(&record.output_rel);
        let seed = fnv(full.to_uri().as_bytes());
        self.repo
            .put(&full, Content::synthetic(record.output_bytes, seed));
        self.stats.results_published += 1;
        ctx.metrics().incr("gateway.results_published", 1);
        self.cluster.api.write().record_event(
            ctx.now(),
            "ResultPublished",
            full.to_uri(),
            format!("{} bytes", record.output_bytes),
        );
        // Train the predictor on the observed runtime (§VII).
        if let Some(actual) = job.run_time() {
            let features = JobFeatures {
                input_bytes: record.input_bytes,
                cpu_cores: record.request.cpu_cores,
                mem_gib: record.request.mem_gib,
            };
            self.predictor
                .write()
                .observe(&record.request.app, features, actual.as_secs_f64());
        }
        // Record in the result cache.
        if self.cache.enabled() {
            let key = record.request.canonical_key();
            let cached = CachedResult {
                result: full,
                size: record.output_bytes,
                job_id: job_id.to_owned(),
            };
            self.cache.insert(key, cached);
        }
    }

    fn on_check_job(&mut self, job_id: String, ctx: &mut Ctx<'_>) {
        let Some(record) = self.jobs.get(&job_id) else {
            return;
        };
        match self.cluster.job_condition(&record.k8s_key) {
            Some(JobCondition::Completed) => self.publish_if_needed(&job_id, ctx),
            Some(JobCondition::Failed) | None => {}
            Some(JobCondition::Pending) | Some(JobCondition::Running) => {
                // Still queued or executing (cluster may be saturated);
                // check again later.
                let delay = (record.expected / 4).max(SimDuration::from_secs(10));
                ctx.schedule_self(delay, CheckJob { job_id });
            }
        }
    }
}

/// Result of planning (internal). `Clone` is O(1)-ish (name refcount bump)
/// so burst plan memoization is cheap.
#[derive(Clone)]
struct PlannedJob {
    duration: SimDuration,
    output_bytes: u64,
    output_rel: Name,
    input_bytes: u64,
}

/// One status query resolved under the batch's API read-lock.
struct StatusProbe {
    interest: Interest,
    outcome: StatusOutcome,
}

enum StatusOutcome {
    /// No record of this job on this gateway.
    UnknownJob(JobId),
    /// Job known; condition snapshot from the API server (boxed: the
    /// record dwarfs the unknown-job variant).
    Known {
        job_id: String,
        record: Box<JobRecord>,
        condition: Option<(JobCondition, String)>,
        started_at: Option<lidc_simcore::time::SimTime>,
    },
}

/// FNV-1a hash (content seeds, request digests).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Actor for Gateway {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                if let Packet::Interest(interest) = rx.packet {
                    match classify(&interest.name) {
                        RequestKind::Compute(request) => {
                            let nodes = self.node_snapshot();
                            if self.on_compute(interest, request, &nodes, None, ctx) {
                                ctx.send(self.cluster.actor, Nudge);
                            }
                        }
                        RequestKind::Status(id) => {
                            self.on_status_batch(vec![(interest, id)], ctx);
                        }
                        RequestKind::MalformedCompute(e) => {
                            self.stats.unknown_requests += 1;
                            self.reply_nack(ctx, interest.name, format!("malformed-request: {e}"));
                        }
                        RequestKind::Data(_) | RequestKind::Unknown => {
                            // Data Interests are routed to the data-lake NFD,
                            // not here; answer defensively.
                            self.stats.unknown_requests += 1;
                            self.reply_nack(ctx, interest.name, "not-a-gateway-name".to_owned());
                        }
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SetByzantine>() {
            Ok(set) => {
                self.byzantine = set.0;
                return;
            }
            Err(m) => m,
        };
        if let Ok(check) = msg.downcast::<CheckJob>() {
            self.on_check_job(check.job_id, ctx);
        }
    }

    /// Batched delivery (see the module docs): classify the burst in one
    /// pass, accumulating maximal *runs* of same-kind requests and flushing
    /// each run through its amortized batch path when the kind changes (or
    /// a [`CheckJob`] timer — which publishes results — interleaves).
    /// Run segmentation keeps every side effect in arrival order, so a
    /// status query observing a just-published result, or a compute request
    /// hitting the result cache a same-instant status populated, behaves
    /// exactly as under one-at-a-time delivery. A homogeneous burst — the
    /// fan-in hot case — is a single run and amortizes fully.
    fn on_batch(&mut self, msgs: &mut Vec<Msg>, ctx: &mut Ctx<'_>) {
        let mut computes: Vec<(Interest, ComputeRequest)> = Vec::new();
        let mut statuses: Vec<(Interest, JobId)> = Vec::new();
        let mut requests = 0u64;
        for msg in msgs.drain(..) {
            let msg = match msg.downcast::<AppRx>() {
                Ok(rx) => {
                    if let Packet::Interest(interest) = rx.packet {
                        match classify(&interest.name) {
                            RequestKind::Compute(request) => {
                                if !statuses.is_empty() {
                                    let run = std::mem::take(&mut statuses);
                                    self.on_status_batch(run, ctx);
                                }
                                computes.push((interest, request));
                                requests += 1;
                            }
                            RequestKind::Status(id) => {
                                if !computes.is_empty() {
                                    let run = std::mem::take(&mut computes);
                                    self.on_compute_batch(run, ctx);
                                }
                                statuses.push((interest, id));
                                requests += 1;
                            }
                            // Nack replies have no cross-request side
                            // effects, so they don't end the open run.
                            RequestKind::MalformedCompute(e) => {
                                self.stats.unknown_requests += 1;
                                self.reply_nack(
                                    ctx,
                                    interest.name,
                                    format!("malformed-request: {e}"),
                                );
                            }
                            RequestKind::Data(_) | RequestKind::Unknown => {
                                self.stats.unknown_requests += 1;
                                self.reply_nack(ctx, interest.name, "not-a-gateway-name".to_owned());
                            }
                        }
                    }
                    continue;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<SetByzantine>() {
                Ok(set) => {
                    // Changes how every later reply is built; flush the
                    // open runs so earlier requests get the behaviour in
                    // force when they arrived.
                    if !computes.is_empty() {
                        let run = std::mem::take(&mut computes);
                        self.on_compute_batch(run, ctx);
                    }
                    if !statuses.is_empty() {
                        let run = std::mem::take(&mut statuses);
                        self.on_status_batch(run, ctx);
                    }
                    self.byzantine = set.0;
                    continue;
                }
                Err(m) => m,
            };
            if let Ok(check) = msg.downcast::<CheckJob>() {
                // CheckJob publishes results; keep it in sequence.
                if !computes.is_empty() {
                    let run = std::mem::take(&mut computes);
                    self.on_compute_batch(run, ctx);
                }
                if !statuses.is_empty() {
                    let run = std::mem::take(&mut statuses);
                    self.on_status_batch(run, ctx);
                }
                self.on_check_job(check.job_id, ctx);
            }
        }
        // At most one run is still open (accumulation flushes the other).
        self.on_compute_batch(computes, ctx);
        self.on_status_batch(statuses, ctx);
        if requests > 1 {
            ctx.metrics().incr("gateway.batch.bursts", 1);
            ctx.metrics().incr("gateway.batch.requests", requests);
        }
    }
}
