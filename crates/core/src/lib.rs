//! # lidc-core — Location Independent Data and Compute
//!
//! The paper's primary contribution (DESIGN.md §3): a decentralized control
//! plane that places computations on geographically dispersed Kubernetes
//! clusters using semantic names.
//!
//! * [`naming`] — the `/ndn/k8s/{compute,data,status}` name grammar (plus
//!   the HTTP-URL extension of §II).
//! * [`status`] — the Pending/Running/Completed/Failed status protocol.
//! * [`validation`] — modular per-application request validators (§IV-B).
//! * [`gateway`] — the per-cluster decision-maker mapping named requests to
//!   Kubernetes jobs (Fig. 4).
//! * [`http`] — the HTTP(S) front-end translating web requests onto the
//!   same semantic names (§II's "HTTP(s)-based naming" claim).
//! * [`cluster`] — full LIDC cluster assembly (gateway NFD + data-lake NFD +
//!   K8s + PVC/NFS data lake, §IV).
//! * [`overlay`] — the multi-cluster compute overlay with join/fail/leave.
//! * [`placement`] — nearest / round-robin / adaptive / least-loaded /
//!   learned placement policies (§VII implemented).
//! * [`cache`] — gateway result caching (§VII implemented).
//! * [`predictor`] — online completion-time prediction (§VII implemented).
//! * [`client`] — the science-user client driving the Fig. 5 workflow.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod gateway;
pub mod http;
pub mod naming;
pub mod overlay;
pub mod placement;
pub mod predictor;
pub mod status;
pub mod validation;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cache::{CachedResult, ResultCache};
    pub use crate::client::{ClientConfig, JobRun, ScienceClient, Submit};
    pub use crate::cluster::{LidcCluster, LidcClusterConfig};
    pub use crate::gateway::{Gateway, GatewayConfig, GatewayStats, SharedPredictor};
    pub use crate::http::{HttpBridge, HttpCall, HttpReply, HttpRequest, HttpResponse};
    pub use crate::naming::{
        classify, compute_prefix, data_prefix, status_prefix, ComputeRequest, JobId, NamingError,
        RequestKind,
    };
    pub use crate::overlay::{ClusterSpec, Overlay, OverlayConfig};
    pub use crate::placement::{
        strategy_for, LoadBoard, PlacementPolicy, spawn_load_reporter,
    };
    pub use crate::predictor::{JobFeatures, RuntimePredictor};
    pub use crate::status::{JobState, SubmitAck};
    pub use crate::validation::{
        BlastValidator, CompressValidator, UnknownAppPolicy, ValidationError, Validator,
        ValidatorRegistry,
    };
}
