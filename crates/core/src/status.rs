//! The job-status protocol (`/ndn/k8s/status/<job-id>`).
//!
//! Responses carry one of the paper's four states (§IV-A): Completed (with
//! a pointer for retrieving results from the data lake), Failed (with an
//! error message), Running, or Pending. The wire form is a small line
//! format inside the Data content.

use lidc_ndn::name::Name;

/// A status response state.
// The `Completed` variant carries the (large, inline) result `Name`; status
// values are per-poll payloads, not hot-path state, so the size gap is fine.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// The application is starting.
    Pending,
    /// The application is running.
    Running {
        /// Predicted seconds until completion, when the gateway has a model
        /// for the application (paper §VII: "leveraging machine learning
        /// algorithms to predict completion times"). `None` for gateways
        /// without enough history.
        eta_secs: Option<u64>,
    },
    /// The application completed; results live at `result` in the lake.
    Completed {
        /// Data-lake name of the result object.
        result: Name,
        /// Result size in bytes.
        size: u64,
    },
    /// The application errored.
    Failed {
        /// Error message.
        error: String,
    },
}

impl JobState {
    /// Serialise to the wire text.
    pub fn to_text(&self) -> String {
        match self {
            JobState::Pending => "state=Pending".to_owned(),
            JobState::Running { eta_secs: None } => "state=Running".to_owned(),
            JobState::Running {
                eta_secs: Some(eta),
            } => format!("state=Running\neta-secs={eta}"),
            JobState::Completed { result, size } => {
                format!("state=Completed\nresult={}\nsize={size}", result.to_uri())
            }
            JobState::Failed { error } => {
                // Newlines in errors would corrupt the line format.
                format!("state=Failed\nerror={}", error.replace('\n', " "))
            }
        }
    }

    /// Parse the wire text.
    pub fn from_text(text: &str) -> Option<JobState> {
        let mut state = None;
        let mut result = None;
        let mut size = None;
        let mut error = None;
        let mut eta_secs = None;
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("state=") {
                state = Some(v.to_owned());
            } else if let Some(v) = line.strip_prefix("result=") {
                result = Name::parse(v).ok();
            } else if let Some(v) = line.strip_prefix("size=") {
                size = v.parse().ok();
            } else if let Some(v) = line.strip_prefix("error=") {
                error = Some(v.to_owned());
            } else if let Some(v) = line.strip_prefix("eta-secs=") {
                eta_secs = v.parse().ok();
            }
        }
        match state?.as_str() {
            "Pending" => Some(JobState::Pending),
            "Running" => Some(JobState::Running { eta_secs }),
            "Completed" => Some(JobState::Completed {
                result: result?,
                size: size?,
            }),
            "Failed" => Some(JobState::Failed { error: error? }),
            _ => None,
        }
    }

    /// True for Completed/Failed.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Completed { .. } | JobState::Failed { .. })
    }
}

/// The submission acknowledgement returned for a compute Interest: the job
/// id the client needs for `/ndn/k8s/status` checks (paper §IV-A: "Clients
/// need a job id from their initial /ndn/k8s/compute request").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitAck {
    /// Assigned job id.
    pub job_id: String,
    /// Cluster that accepted the job.
    pub cluster: String,
    /// Initial state (Pending unless served from a result cache).
    pub state: String,
}

impl SubmitAck {
    /// Serialise.
    pub fn to_text(&self) -> String {
        format!(
            "job-id={}\ncluster={}\nstate={}",
            self.job_id, self.cluster, self.state
        )
    }

    /// Parse.
    pub fn from_text(text: &str) -> Option<SubmitAck> {
        let mut job_id = None;
        let mut cluster = None;
        let mut state = None;
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("job-id=") {
                job_id = Some(v.to_owned());
            } else if let Some(v) = line.strip_prefix("cluster=") {
                cluster = Some(v.to_owned());
            } else if let Some(v) = line.strip_prefix("state=") {
                state = Some(v.to_owned());
            }
        }
        Some(SubmitAck {
            job_id: job_id?,
            cluster: cluster?,
            state: state?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_ndn::name;

    #[test]
    fn all_states_round_trip() {
        let states = [
            JobState::Pending,
            JobState::Running { eta_secs: None },
            JobState::Running {
                eta_secs: Some(29_390),
            },
            JobState::Completed {
                result: name!("/ndn/k8s/data/results/SRR2931415-vs-HUMAN"),
                size: 941_000_000,
            },
            JobState::Failed {
                error: "invalid SRR id".into(),
            },
        ];
        for s in states {
            let text = s.to_text();
            assert_eq!(JobState::from_text(&text), Some(s.clone()), "{text}");
        }
    }

    #[test]
    fn terminal_classification() {
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running { eta_secs: None }.is_terminal());
        assert!(JobState::Completed {
            result: name!("/r"),
            size: 1
        }
        .is_terminal());
        assert!(JobState::Failed { error: "e".into() }.is_terminal());
    }

    #[test]
    fn malformed_status_rejected() {
        assert_eq!(JobState::from_text(""), None);
        assert_eq!(JobState::from_text("state=Bogus"), None);
        assert_eq!(JobState::from_text("state=Completed"), None, "missing result");
        assert_eq!(JobState::from_text("state=Failed"), None, "missing error");
    }

    #[test]
    fn error_newlines_flattened() {
        let s = JobState::Failed {
            error: "line1\nline2".into(),
        };
        let parsed = JobState::from_text(&s.to_text()).unwrap();
        assert_eq!(
            parsed,
            JobState::Failed {
                error: "line1 line2".into()
            }
        );
    }

    #[test]
    fn submit_ack_round_trip() {
        let ack = SubmitAck {
            job_id: "edge-a-job-3".into(),
            cluster: "edge-a".into(),
            state: "Pending".into(),
        };
        assert_eq!(SubmitAck::from_text(&ack.to_text()), Some(ack));
        assert_eq!(SubmitAck::from_text("nope"), None);
    }
}
