//! LIDC cluster assembly: one deployable unit of the framework.
//!
//! Mirrors the paper's §IV deployment: "LIDC configures the following
//! components: (a) a gateway, in which a single NFD pod acts as the gateway
//! to the services running on this cluster, and (b) a Kubernetes PVC …
//! mounted to an NFS server, which functions like a remote data lake."
//!
//! Concretely, [`LidcCluster::deploy`] stands up:
//!
//! * a simulated Kubernetes cluster with nodes, the `gateway-nfd` NodePort
//!   service, the `dl-nfd` ClusterIP service (paper Fig. 3), and in-cluster
//!   deployments backing them;
//! * an NFS export bound through PV/PVC, wrapped as the data-lake repo;
//! * two NDN forwarders (gateway NFD and data-lake NFD) wired together;
//! * the [`Gateway`] application and the data-lake [`FileServer`];
//! * prefix registrations: `/ndn/k8s/compute` and `/ndn/k8s/status` to the
//!   gateway app, `/ndn/k8s/data` to the data-lake NFD (paper §IV).

use lidc_datalake::fileserver::FileServer;
use lidc_datalake::loader::DataLoader;
use lidc_datalake::repo::{NfsRepo, SharedRepo};
use lidc_genomics::blast::{HUMAN_REFERENCE, HUMAN_REFERENCE_BYTES};
use lidc_genomics::sra::{kidney_series, paper_runs, rice_series};
use lidc_k8s::cluster::{Cluster, ClusterConfig};
use lidc_k8s::deployment::Deployment;
use lidc_k8s::node::Node;
use lidc_k8s::pod::{ContainerSpec, PodSpec, WorkloadSpec};
use lidc_k8s::resources::{Memory, Resources};
use lidc_k8s::service::Service;
use lidc_k8s::storage::{NfsExport, PersistentVolume, PersistentVolumeClaim};
use lidc_datalake::loader::DatasetSpec;
use lidc_ndn::face::{FaceId, FaceIdAlloc, LinkProps};
use lidc_ndn::forwarder::{Forwarder, ForwarderConfig};
use lidc_ndn::name::Name;
use lidc_ndn::net::{attach_app, connect};
use lidc_simcore::engine::{ActorId, Sim};
use lidc_simcore::time::SimDuration;

use crate::gateway::{Gateway, GatewayConfig, GatewayStats, SharedPredictor};
use crate::naming::{compute_prefix, data_prefix, status_prefix};

/// Deployment parameters for one LIDC cluster.
#[derive(Debug, Clone)]
pub struct LidcClusterConfig {
    /// Cluster name (also the status-routing segment).
    pub name: String,
    /// Worker node count. The paper's testbed is a single-node MicroK8s VM;
    /// multi-node clusters are supported.
    pub nodes: u32,
    /// Cores per node.
    pub node_cpu_cores: u64,
    /// Memory per node (GiB).
    pub node_mem_gib: u64,
    /// Gateway result-cache capacity (0 = off, the base system).
    pub result_cache_capacity: usize,
    /// Gateway result-cache byte budget (0 = no byte limit).
    pub result_cache_budget_bytes: u64,
    /// Content Store byte budget for the cluster's two NFDs (0 = no byte
    /// limit; the default derives from the default CS capacity, one 1 MiB
    /// segment per entry slot).
    pub cs_budget_bytes: u64,
    /// PIT/CS/DNL shard count for the cluster's two NFDs (1 = single-shard
    /// tables and serial ingress; see
    /// [`lidc_ndn::forwarder::ForwarderConfig::shards`]).
    pub forwarder_shards: usize,
    /// Submit-ack freshness (see [`GatewayConfig::ack_freshness`]).
    pub ack_freshness: SimDuration,
    /// Whether to run the data-loading tool at deploy time (paper §V-B).
    pub load_datasets: bool,
    /// Gateway-NFD ↔ data-lake-NFD link latency.
    pub internal_latency: SimDuration,
}

impl Default for LidcClusterConfig {
    fn default() -> Self {
        LidcClusterConfig {
            name: "cluster".to_owned(),
            nodes: 1,
            node_cpu_cores: 16,
            node_mem_gib: 64,
            result_cache_capacity: 0,
            result_cache_budget_bytes: 0,
            cs_budget_bytes: ForwarderConfig::default().cs_budget_bytes,
            forwarder_shards: 1,
            ack_freshness: SimDuration::ZERO,
            load_datasets: true,
            internal_latency: SimDuration::from_micros(200),
        }
    }
}

impl LidcClusterConfig {
    /// A config named `name` with defaults elsewhere.
    pub fn named(name: impl Into<String>) -> Self {
        LidcClusterConfig {
            name: name.into(),
            ..Default::default()
        }
    }
}

/// A deployed LIDC cluster.
#[derive(Clone)]
pub struct LidcCluster {
    /// Cluster name.
    pub name: String,
    /// The gateway NFD (externally exposed through NodePort; WAN links
    /// attach here).
    pub gateway_fwd: ActorId,
    /// The data-lake NFD.
    pub dl_fwd: ActorId,
    /// The gateway application actor.
    pub gateway_app: ActorId,
    /// The data-lake file-server actor.
    pub fileserver: ActorId,
    /// The Kubernetes cluster.
    pub k8s: Cluster,
    /// The data-lake repository (PVC/NFS-backed).
    pub repo: SharedRepo,
    /// The raw NFS export behind the repo.
    pub export: NfsExport,
}

impl LidcCluster {
    /// Deploy a cluster into the simulation.
    pub fn deploy(sim: &mut Sim, alloc: &FaceIdAlloc, config: LidcClusterConfig) -> LidcCluster {
        let name = config.name.clone();
        // --- Kubernetes cluster and nodes ---
        let k8s = Cluster::spawn(sim, ClusterConfig::named(&name));
        for i in 0..config.nodes.max(1) {
            k8s.add_node(
                sim,
                Node::new(
                    format!("{name}-node-{i}"),
                    Resources::new(config.node_cpu_cores, config.node_mem_gib),
                ),
            );
        }
        // --- Storage: NFS export bound via PV/PVC (paper §IV) ---
        let export = NfsExport::new();
        k8s.add_pv(
            sim,
            PersistentVolume::new(format!("{name}-nfs-pv"), Memory::gib(1024), export.clone()),
        );
        k8s.create_pvc(sim, PersistentVolumeClaim::new("datalake", Memory::gib(512)));
        let repo: SharedRepo = NfsRepo::shared(export.clone());
        // --- Services (paper Fig. 3): NodePort gateway, ClusterIP dl-nfd ---
        k8s.create_service(sim, Service::node_port("gateway-nfd", "gateway-nfd", 6363));
        k8s.create_service(sim, Service::cluster_ip("dl-nfd", "dl-nfd", 6363));
        // Long-running pods backing the two services.
        let daemon = |app: &str| {
            PodSpec::single(ContainerSpec {
                name: app.to_owned(),
                image: format!("lidc/{app}:latest"),
                requests: Resources {
                    cpu: lidc_k8s::resources::Cpu::millis(500),
                    memory: Memory::mib(512),
                },
                workload: WorkloadSpec::Forever,
            })
        };
        k8s.create_deployment(
            sim,
            Deployment::new("gateway-nfd", "gateway-nfd", 1, daemon("gateway-nfd")),
        );
        k8s.create_deployment(sim, Deployment::new("dl-nfd", "dl-nfd", 1, daemon("dl-nfd")));
        // --- NDN forwarders ---
        let nfd_config = ForwarderConfig {
            cs_budget_bytes: config.cs_budget_bytes,
            shards: config.forwarder_shards.max(1),
            ..Default::default()
        };
        let gateway_fwd = sim.spawn(
            format!("{name}-gw-nfd"),
            Forwarder::new(format!("{name}-gw-nfd"), nfd_config.clone()),
        );
        let dl_fwd = sim.spawn(
            format!("{name}-dl-nfd"),
            Forwarder::new(format!("{name}-dl-nfd"), nfd_config),
        );
        let (gw_to_dl, _dl_to_gw) = connect(
            sim,
            gateway_fwd,
            dl_fwd,
            alloc,
            LinkProps::with_latency(config.internal_latency),
        );
        // --- Data-lake file server on the dl NFD ---
        let fileserver = FileServer::new(data_prefix(), repo.clone()).deploy(
            sim,
            dl_fwd,
            alloc,
            format!("{name}-fileserver"),
        );
        // --- Gateway application on the gateway NFD ---
        let gateway_config = GatewayConfig {
            cluster_name: name.clone(),
            result_cache_capacity: config.result_cache_capacity,
            result_cache_budget_bytes: config.result_cache_budget_bytes,
            ack_freshness: config.ack_freshness,
            ..Default::default()
        };
        let gateway = Gateway::new(gateway_config, k8s.clone(), repo.clone());
        let gateway_app = sim.spawn(format!("{name}-gateway"), gateway);
        let gw_face = attach_app(sim, gateway_fwd, gateway_app, alloc);
        sim.actor_mut::<Gateway>(gateway_app)
            .unwrap()
            .set_producer(lidc_ndn::app::Producer::new(gateway_fwd, gw_face));
        // --- Prefix registrations (paper §IV) ---
        {
            let fwd = sim.actor_mut::<Forwarder>(gateway_fwd).unwrap();
            fwd.register_prefix(compute_prefix(), gw_face, 0);
            fwd.register_prefix(status_prefix(), gw_face, 0);
            fwd.register_prefix(data_prefix(), gw_to_dl, 0);
        }
        let cluster = LidcCluster {
            name,
            gateway_fwd,
            dl_fwd,
            gateway_app,
            fileserver,
            k8s,
            repo,
            export,
        };
        if config.load_datasets {
            cluster.load_datasets();
        }
        cluster
    }

    /// Run the data-loading tool (paper §V-B): the human reference database
    /// plus the two Table I samples and the full rice/kidney series.
    pub fn load_datasets(&self) -> lidc_datalake::loader::LoadStats {
        let mut loader = DataLoader::new().add(DatasetSpec::new(
            Name::root().child_str("ref").child_str(HUMAN_REFERENCE),
            HUMAN_REFERENCE_BYTES,
            0xFEED,
            "human reference database",
        ));
        for run in paper_runs().into_iter().chain(rice_series()).chain(kidney_series()) {
            loader = loader.add(run.dataset_spec());
        }
        loader.load_into(self.repo.as_ref(), &data_prefix())
    }

    /// Gateway statistics snapshot.
    pub fn gateway_stats(&self, sim: &Sim) -> GatewayStats {
        sim.actor::<Gateway>(self.gateway_app)
            .expect("gateway alive")
            .stats
    }

    /// The gateway's shared completion-time predictor.
    pub fn predictor(&self, sim: &Sim) -> SharedPredictor {
        sim.actor::<Gateway>(self.gateway_app)
            .expect("gateway alive")
            .predictor()
    }

    /// Register this cluster's prefixes on an upstream router face (the
    /// face on `router` that leads to this cluster's gateway NFD).
    ///
    /// `/ndn/k8s/compute` and `/ndn/k8s/data` are anycast (every cluster
    /// serves them); `/ndn/k8s/status/<name>` and
    /// `/ndn/k8s/data/results/<name>` route exactly here.
    pub fn register_on(&self, sim: &mut Sim, router: ActorId, face: FaceId, cost: u32) {
        let fwd = sim.actor_mut::<Forwarder>(router).expect("router");
        fwd.register_prefix(compute_prefix(), face, cost);
        fwd.register_prefix(data_prefix(), face, cost);
        fwd.register_prefix(status_prefix().child_str(&self.name), face, cost);
        fwd.register_prefix(
            data_prefix().child_str("results").child_str(&self.name),
            face,
            cost,
        );
    }

    /// Unregister this cluster's prefixes from a router face.
    pub fn unregister_from(&self, sim: &mut Sim, router: ActorId, face: FaceId) {
        let fwd = sim.actor_mut::<Forwarder>(router).expect("router");
        fwd.unregister_prefix(&compute_prefix(), face);
        fwd.unregister_prefix(&data_prefix(), face);
        fwd.unregister_prefix(&status_prefix().child_str(&self.name), face);
        fwd.unregister_prefix(
            &data_prefix().child_str("results").child_str(&self.name),
            face,
        );
    }
}
