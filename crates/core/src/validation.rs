//! Application-specific request validation (paper §IV-B).
//!
//! "LIDC allows for application-specific validations. These validations are
//! built into the system in a modular manner and can be managed separately
//! for each application." — [`Validator`] is the module interface and
//! [`ValidatorRegistry`] the per-application management.

use std::collections::HashMap;
use std::fmt;

use crate::naming::ComputeRequest;
use lidc_genomics::sra::SraAccession;

/// A validation failure, returned to the client in a NACK response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Which check failed.
    pub check: String,
    /// Human-readable reason.
    pub reason: String,
}

impl ValidationError {
    /// Construct an error.
    pub fn new(check: impl Into<String>, reason: impl Into<String>) -> Self {
        ValidationError {
            check: check.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.check, self.reason)
    }
}

/// A per-application validation module.
pub trait Validator: Send + Sync {
    /// The application this validator governs.
    fn app(&self) -> &str;
    /// Check a request.
    fn validate(&self, request: &ComputeRequest) -> Result<(), ValidationError>;
}

/// Magic-BLAST validation: the request must carry a syntactically valid
/// `srr=` accession and a `ref=` database (the paper's §IV-B example:
/// "a specific check might be confirming correct SRR IDs").
#[derive(Debug, Default)]
pub struct BlastValidator;

impl Validator for BlastValidator {
    fn app(&self) -> &str {
        "BLAST"
    }

    fn validate(&self, request: &ComputeRequest) -> Result<(), ValidationError> {
        let srr = request
            .param("srr")
            .ok_or_else(|| ValidationError::new("srr-present", "BLAST requires srr=<id>"))?;
        SraAccession::parse(srr)
            .map_err(|e| ValidationError::new("srr-syntax", format!("{srr}: {e}")))?;
        if request.param("ref").is_none() {
            return Err(ValidationError::new(
                "ref-present",
                "BLAST requires ref=<database>",
            ));
        }
        Ok(())
    }
}

/// Compression-tool validation: needs an `input=` object but, per the paper,
/// "might not need SRR IDs and could have its own checks".
#[derive(Debug, Default)]
pub struct CompressValidator;

impl Validator for CompressValidator {
    fn app(&self) -> &str {
        "COMPRESS"
    }

    fn validate(&self, request: &ComputeRequest) -> Result<(), ValidationError> {
        match request.param("input") {
            Some(input) if input.starts_with('/') => Ok(()),
            Some(input) => Err(ValidationError::new(
                "input-syntax",
                format!("input must be an absolute lake name, got {input}"),
            )),
            None => Err(ValidationError::new(
                "input-present",
                "COMPRESS requires input=<lake-name>",
            )),
        }
    }
}

/// Policy for applications with no registered validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownAppPolicy {
    /// Admit them (resource sanity checks still apply).
    #[default]
    Allow,
    /// Reject them.
    Deny,
}

/// The per-application validator registry.
pub struct ValidatorRegistry {
    validators: HashMap<String, Box<dyn Validator>>,
    policy: UnknownAppPolicy,
    /// Upper bound on requested cores (resource sanity check).
    pub max_cpu_cores: u64,
    /// Upper bound on requested memory (GiB).
    pub max_mem_gib: u64,
}

impl Default for ValidatorRegistry {
    fn default() -> Self {
        ValidatorRegistry::new(UnknownAppPolicy::Allow)
    }
}

impl ValidatorRegistry {
    /// An empty registry with the given unknown-app policy.
    pub fn new(policy: UnknownAppPolicy) -> Self {
        ValidatorRegistry {
            validators: HashMap::new(),
            policy,
            max_cpu_cores: 128,
            max_mem_gib: 1024,
        }
    }

    /// The registry LIDC deploys by default (BLAST + COMPRESS modules).
    pub fn standard() -> Self {
        let mut r = ValidatorRegistry::default();
        r.register(Box::new(BlastValidator));
        r.register(Box::new(CompressValidator));
        r
    }

    /// Install (or replace) a validator for its application.
    pub fn register(&mut self, validator: Box<dyn Validator>) {
        self.validators
            .insert(validator.app().to_owned(), validator);
    }

    /// Remove an application's validator; true if one existed.
    pub fn unregister(&mut self, app: &str) -> bool {
        self.validators.remove(app).is_some()
    }

    /// Validate a request: generic resource sanity first, then the
    /// app-specific module.
    pub fn validate(&self, request: &ComputeRequest) -> Result<(), ValidationError> {
        if request.cpu_cores == 0 || request.cpu_cores > self.max_cpu_cores {
            return Err(ValidationError::new(
                "cpu-range",
                format!("cpu={} outside 1..={}", request.cpu_cores, self.max_cpu_cores),
            ));
        }
        if request.mem_gib == 0 || request.mem_gib > self.max_mem_gib {
            return Err(ValidationError::new(
                "mem-range",
                format!("mem={} outside 1..={}", request.mem_gib, self.max_mem_gib),
            ));
        }
        match self.validators.get(&request.app) {
            Some(v) => v.validate(request),
            None => match self.policy {
                UnknownAppPolicy::Allow => Ok(()),
                UnknownAppPolicy::Deny => Err(ValidationError::new(
                    "app-known",
                    format!("no validator registered for app {}", request.app),
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blast_request() -> ComputeRequest {
        ComputeRequest::new("BLAST", 2, 4)
            .with_param("srr", "SRR2931415")
            .with_param("ref", "HUMAN")
    }

    #[test]
    fn valid_blast_passes() {
        let r = ValidatorRegistry::standard();
        assert_eq!(r.validate(&blast_request()), Ok(()));
    }

    #[test]
    fn blast_srr_checks() {
        let r = ValidatorRegistry::standard();
        let missing = ComputeRequest::new("BLAST", 2, 4).with_param("ref", "HUMAN");
        assert_eq!(r.validate(&missing).unwrap_err().check, "srr-present");
        let bad = blast_request().with_param("srr", "NOT-AN-SRR");
        assert_eq!(r.validate(&bad).unwrap_err().check, "srr-syntax");
        let no_ref = ComputeRequest::new("BLAST", 2, 4).with_param("srr", "SRR2931415");
        assert_eq!(r.validate(&no_ref).unwrap_err().check, "ref-present");
    }

    #[test]
    fn compress_has_its_own_checks_not_srr() {
        // Per the paper: the compression tool "might not need SRR_IDs and
        // could have its own checks".
        let r = ValidatorRegistry::standard();
        let ok = ComputeRequest::new("COMPRESS", 1, 1).with_param("input", "/sra/SRR2931415");
        assert_eq!(r.validate(&ok), Ok(()));
        let missing = ComputeRequest::new("COMPRESS", 1, 1);
        assert_eq!(r.validate(&missing).unwrap_err().check, "input-present");
        let relative = ComputeRequest::new("COMPRESS", 1, 1).with_param("input", "relative");
        assert_eq!(r.validate(&relative).unwrap_err().check, "input-syntax");
    }

    #[test]
    fn resource_sanity_bounds() {
        let r = ValidatorRegistry::standard();
        let zero_cpu = ComputeRequest::new("X", 0, 4);
        assert_eq!(r.validate(&zero_cpu).unwrap_err().check, "cpu-range");
        let huge_mem = ComputeRequest::new("X", 1, 4096);
        assert_eq!(r.validate(&huge_mem).unwrap_err().check, "mem-range");
    }

    #[test]
    fn unknown_app_policy() {
        let allow = ValidatorRegistry::new(UnknownAppPolicy::Allow);
        assert_eq!(allow.validate(&ComputeRequest::new("NOVEL", 1, 1)), Ok(()));
        let deny = ValidatorRegistry::new(UnknownAppPolicy::Deny);
        assert_eq!(
            deny.validate(&ComputeRequest::new("NOVEL", 1, 1))
                .unwrap_err()
                .check,
            "app-known"
        );
    }

    #[test]
    fn validators_managed_separately_per_app() {
        // Modular management: removing BLAST's validator leaves COMPRESS's.
        let mut r = ValidatorRegistry::standard();
        assert!(r.unregister("BLAST"));
        assert!(!r.unregister("BLAST"));
        let blast_no_srr = ComputeRequest::new("BLAST", 2, 4);
        assert_eq!(r.validate(&blast_no_srr), Ok(()), "no validator now");
        let bad_compress = ComputeRequest::new("COMPRESS", 1, 1);
        assert!(r.validate(&bad_compress).is_err(), "COMPRESS still checked");
    }

    #[test]
    fn custom_validator_registration() {
        struct FoldValidator;
        impl Validator for FoldValidator {
            fn app(&self) -> &str {
                "FOLD"
            }
            fn validate(&self, request: &ComputeRequest) -> Result<(), ValidationError> {
                if request.param("pdb").is_some() {
                    Ok(())
                } else {
                    Err(ValidationError::new("pdb-present", "FOLD requires pdb="))
                }
            }
        }
        let mut r = ValidatorRegistry::standard();
        r.register(Box::new(FoldValidator));
        assert!(r.validate(&ComputeRequest::new("FOLD", 1, 1)).is_err());
        assert_eq!(
            r.validate(&ComputeRequest::new("FOLD", 1, 1).with_param("pdb", "1abc")),
            Ok(())
        );
    }
}
