//! The LIDC semantic naming grammar.
//!
//! The paper's §III-B/C: computations, data, and status checks are all
//! expressed as names under three prefixes —
//!
//! * `/ndn/k8s/compute/<params>` where `<params>` is one component like
//!   `mem=4&cpu=6&app=BLAST&srr=SRR2931415&ref=HUMAN`;
//! * `/ndn/k8s/data/<object...>` for the data lake;
//! * `/ndn/k8s/status/<job-id>` for job status checks.
//!
//! §II also claims "HTTP(s)-based naming of computational jobs can also
//! match them to appropriate endpoints" — [`ComputeRequest::from_http_url`]
//! parses `https://…/compute?mem=4&cpu=6&app=BLAST` into the same request,
//! implementing that extension.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

use lidc_ndn::name::Name;
use lidc_ndn::name;

/// The compute prefix. Parsed once per process; this returns an O(1)
/// refcounted clone, so prefix checks on the request path never allocate.
pub fn compute_prefix() -> Name {
    static PREFIX: OnceLock<Name> = OnceLock::new();
    PREFIX.get_or_init(|| name!("/ndn/k8s/compute")).clone()
}

/// The data prefix (cached; O(1) clone).
pub fn data_prefix() -> Name {
    static PREFIX: OnceLock<Name> = OnceLock::new();
    PREFIX.get_or_init(|| name!("/ndn/k8s/data")).clone()
}

/// The status prefix (cached; O(1) clone).
pub fn status_prefix() -> Name {
    static PREFIX: OnceLock<Name> = OnceLock::new();
    PREFIX.get_or_init(|| name!("/ndn/k8s/status")).clone()
}

/// A semantic compute request: application, resources, and free-form
/// parameters (dataset ids, reference database, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeRequest {
    /// Application name (`BLAST`, `COMPRESS`, …).
    pub app: String,
    /// Requested CPU cores.
    pub cpu_cores: u64,
    /// Requested memory in GiB.
    pub mem_gib: u64,
    /// Remaining parameters, sorted by key.
    pub params: BTreeMap<String, String>,
}

impl ComputeRequest {
    /// A request for `app` with the paper's default shape.
    pub fn new(app: impl Into<String>, cpu_cores: u64, mem_gib: u64) -> Self {
        ComputeRequest {
            app: app.into(),
            cpu_cores,
            mem_gib,
            params: BTreeMap::new(),
        }
    }

    /// Builder: add a parameter.
    pub fn with_param(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.params.insert(k.into(), v.into());
        self
    }

    /// Get a parameter.
    pub fn param(&self, k: &str) -> Option<&str> {
        self.params.get(k).map(String::as_str)
    }

    /// Parse the `&`-separated parameter component
    /// (`mem=4&cpu=6&app=BLAST&srr=…`).
    pub fn from_param_component(component: &str) -> Result<ComputeRequest, NamingError> {
        let mut app = None;
        let mut cpu = None;
        let mut mem = None;
        let mut params = BTreeMap::new();
        for pair in component.split('&') {
            if pair.is_empty() {
                continue;
            }
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| NamingError::MalformedPair(pair.to_owned()))?;
            match k {
                "app" => app = Some(v.to_owned()),
                "cpu" => {
                    cpu = Some(v.parse().map_err(|_| NamingError::BadNumber("cpu"))?);
                }
                "mem" => {
                    mem = Some(v.parse().map_err(|_| NamingError::BadNumber("mem"))?);
                }
                _ => {
                    params.insert(k.to_owned(), v.to_owned());
                }
            }
        }
        Ok(ComputeRequest {
            app: app.ok_or(NamingError::MissingApp)?,
            cpu_cores: cpu.unwrap_or(1),
            mem_gib: mem.unwrap_or(1),
            params,
        })
    }

    /// Render the parameter component in canonical order
    /// (`mem`, `cpu`, `app`, then sorted params) — the paper's example order.
    pub fn to_param_component(&self) -> String {
        use std::fmt::Write as _;
        let extra: usize = self
            .params
            .iter()
            .map(|(k, v)| k.len() + v.len() + 2)
            .sum();
        let mut out = String::with_capacity(16 + self.app.len() + extra);
        let _ = write!(out, "mem={}&cpu={}&app={}", self.mem_gib, self.cpu_cores, self.app);
        for (k, v) in &self.params {
            out.push('&');
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }

    /// The full compute Interest name
    /// (`/ndn/k8s/compute/mem=4&cpu=6&app=BLAST…`).
    pub fn to_name(&self) -> Name {
        compute_prefix().child_str(&self.to_param_component())
    }

    /// Parse a full compute name.
    pub fn from_name(name: &Name) -> Result<ComputeRequest, NamingError> {
        let prefix = compute_prefix();
        if !prefix.is_prefix_of(name) || name.len() != prefix.len() + 1 {
            return Err(NamingError::NotAComputeName(Box::new(name.clone())));
        }
        let component = name
            .get(prefix.len())
            .and_then(|c| c.as_str())
            .ok_or_else(|| NamingError::NotAComputeName(Box::new(name.clone())))?;
        ComputeRequest::from_param_component(component)
    }

    /// Parse an HTTP(S) URL form (`https://host/compute?mem=4&cpu=6&app=X`).
    pub fn from_http_url(url: &str) -> Result<ComputeRequest, NamingError> {
        let rest = url
            .strip_prefix("https://")
            .or_else(|| url.strip_prefix("http://"))
            .ok_or(NamingError::NotHttp)?;
        let (_, path_q) = rest.split_once('/').ok_or(NamingError::NotHttp)?;
        let (path, query) = path_q.split_once('?').unwrap_or((path_q, ""));
        if path.trim_end_matches('/') != "compute" {
            return Err(NamingError::NotHttp);
        }
        ComputeRequest::from_param_component(query)
    }

    /// Canonical cache key: identical requests (regardless of original
    /// parameter order) share one key.
    pub fn canonical_key(&self) -> String {
        self.to_param_component()
    }
}

impl fmt::Display for ComputeRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_param_component())
    }
}

/// A job identifier minted by a gateway. The canonical form is
/// `<cluster>/job-<n>` — the leading cluster segment makes status Interests
/// routable to the owning cluster (`/ndn/k8s/status/<cluster>` is a routed
/// prefix in the overlay).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub String);

impl JobId {
    /// The status Interest name for this job
    /// (`/ndn/k8s/status/<cluster>/job-<n>`).
    pub fn status_name(&self) -> Name {
        let mut name = status_prefix();
        for segment in self.0.split('/').filter(|s| !s.is_empty()) {
            name.push(lidc_ndn::name::NameComponent::from_str_generic(segment));
        }
        name
    }

    /// Parse a status name back into a job id.
    pub fn from_status_name(name: &Name) -> Option<JobId> {
        let prefix = status_prefix();
        if !prefix.is_prefix_of(name) || name.len() <= prefix.len() {
            return None;
        }
        let segments: Option<Vec<&str>> = name.components()[prefix.len()..]
            .iter()
            .map(|c| c.as_str())
            .collect();
        Some(JobId(segments?.join("/")))
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What an incoming Interest is asking for.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// A compute placement request.
    Compute(ComputeRequest),
    /// A data-lake retrieval.
    Data(Name),
    /// A job status check.
    Status(JobId),
    /// A compute-name parse failure (malformed parameters).
    MalformedCompute(NamingError),
    /// None of the LIDC prefixes.
    Unknown,
}

/// Classify an Interest name against the LIDC grammar.
pub fn classify(interest_name: &Name) -> RequestKind {
    if compute_prefix().is_prefix_of(interest_name) {
        return match ComputeRequest::from_name(interest_name) {
            Ok(req) => RequestKind::Compute(req),
            Err(e) => RequestKind::MalformedCompute(e),
        };
    }
    if status_prefix().is_prefix_of(interest_name) {
        return match JobId::from_status_name(interest_name) {
            Some(id) => RequestKind::Status(id),
            None => RequestKind::Unknown,
        };
    }
    if data_prefix().is_prefix_of(interest_name) {
        return RequestKind::Data(interest_name.clone());
    }
    RequestKind::Unknown
}

/// Naming errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamingError {
    /// A `k=v` pair had no `=`.
    MalformedPair(String),
    /// `cpu=` / `mem=` value was not a number.
    BadNumber(&'static str),
    /// No `app=` parameter.
    MissingApp,
    /// The name is not under `/ndn/k8s/compute` with one parameter component.
    /// Boxed: `Name` is a large inline struct, and errors are the cold path.
    NotAComputeName(Box<Name>),
    /// Not an `http(s)://…/compute?…` URL.
    NotHttp,
}

impl fmt::Display for NamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamingError::MalformedPair(p) => write!(f, "malformed parameter pair: {p}"),
            NamingError::BadNumber(k) => write!(f, "non-numeric value for {k}"),
            NamingError::MissingApp => write!(f, "missing app= parameter"),
            NamingError::NotAComputeName(n) => write!(f, "not a compute name: {n}"),
            NamingError::NotHttp => write!(f, "not an HTTP compute URL"),
        }
    }
}

impl std::error::Error for NamingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_round_trip() {
        // The exact example from §III-C / Fig. 2.
        let uri = "/ndn/k8s/compute/mem=4&cpu=6&app=BLAST";
        let n = Name::parse(uri).unwrap();
        let req = ComputeRequest::from_name(&n).unwrap();
        assert_eq!(req.app, "BLAST");
        assert_eq!(req.cpu_cores, 6);
        assert_eq!(req.mem_gib, 4);
        assert_eq!(req.to_name().to_uri(), uri);
    }

    #[test]
    fn extra_params_preserved_sorted() {
        let req = ComputeRequest::new("BLAST", 2, 4)
            .with_param("srr", "SRR2931415")
            .with_param("ref", "HUMAN");
        let component = req.to_param_component();
        assert_eq!(component, "mem=4&cpu=2&app=BLAST&ref=HUMAN&srr=SRR2931415");
        let parsed = ComputeRequest::from_param_component(&component).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn canonical_key_order_independent() {
        let a = ComputeRequest::from_param_component("app=X&cpu=1&mem=2&b=2&a=1").unwrap();
        let b = ComputeRequest::from_param_component("a=1&b=2&mem=2&cpu=1&app=X").unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn defaults_and_errors() {
        let req = ComputeRequest::from_param_component("app=X").unwrap();
        assert_eq!((req.cpu_cores, req.mem_gib), (1, 1), "defaults");
        assert_eq!(
            ComputeRequest::from_param_component("cpu=2"),
            Err(NamingError::MissingApp)
        );
        assert_eq!(
            ComputeRequest::from_param_component("app=X&cpu=abc"),
            Err(NamingError::BadNumber("cpu"))
        );
        assert_eq!(
            ComputeRequest::from_param_component("app=X&junk"),
            Err(NamingError::MalformedPair("junk".into()))
        );
    }

    #[test]
    fn http_url_extension() {
        let req =
            ComputeRequest::from_http_url("https://cluster.example/compute?mem=4&cpu=6&app=BLAST")
                .unwrap();
        assert_eq!(req, ComputeRequest::new("BLAST", 6, 4));
        assert!(ComputeRequest::from_http_url("ftp://x/compute?app=X").is_err());
        assert!(ComputeRequest::from_http_url("https://x/other?app=X").is_err());
    }

    #[test]
    fn status_name_round_trip() {
        let id = JobId("edge-a/job-7".into());
        let n = id.status_name();
        assert_eq!(n.to_uri(), "/ndn/k8s/status/edge-a/job-7");
        assert_eq!(JobId::from_status_name(&n), Some(id));
        assert_eq!(JobId::from_status_name(&name!("/ndn/k8s/status")), None);
        // Single-segment ids still work.
        let simple = JobId("job-1".into());
        assert_eq!(
            JobId::from_status_name(&simple.status_name()),
            Some(simple)
        );
    }

    #[test]
    fn classification() {
        assert!(matches!(
            classify(&name!("/ndn/k8s/compute/mem=4&cpu=2&app=BLAST")),
            RequestKind::Compute(_)
        ));
        assert!(matches!(
            classify(&name!("/ndn/k8s/compute/garbage-without-app")),
            RequestKind::MalformedCompute(_)
        ));
        assert!(matches!(
            classify(&name!("/ndn/k8s/data/sra/SRR1/seg=0")),
            RequestKind::Data(_)
        ));
        assert!(matches!(
            classify(&name!("/ndn/k8s/status/job-1")),
            RequestKind::Status(_)
        ));
        assert!(matches!(classify(&name!("/other/x")), RequestKind::Unknown));
    }
}
